//! End-to-end algorithm quality: the Borg MOEA must actually solve the
//! paper's workloads, serially and in (virtual-time) parallel.

use borg_obs::NoopRecorder;
use borg_repro::core::algorithm::{run_serial, BorgConfig};
use borg_repro::metrics::relative::RelativeHypervolume;
use borg_repro::models::dist::Dist;
use borg_repro::parallel::virtual_exec::{run_virtual_async, TaMode, VirtualConfig};
use borg_repro::problems::dtlz::{Dtlz, DtlzVariant};
use borg_repro::problems::refsets::{dtlz2_front, zdt_front};
use borg_repro::problems::uf::uf11;
use borg_repro::problems::zdt::{Zdt, ZdtVariant};

#[test]
fn serial_borg_solves_zdt1_to_high_quality() {
    let problem = Zdt::with_variables(ZdtVariant::Zdt1, 15);
    let engine = run_serial(&problem, BorgConfig::new(2, 0.01), 3, 15_000, |_| {});
    let reference = zdt_front(&problem, 500);
    let metric = RelativeHypervolume::exact(&reference);
    let hv = metric.ratio(&engine.archive().objective_vectors());
    assert!(hv > 0.9, "ZDT1 hypervolume ratio only {hv}");
}

#[test]
fn serial_borg_makes_progress_on_dtlz2_5d() {
    let problem = Dtlz::dtlz2_5();
    let metric = RelativeHypervolume::monte_carlo(&dtlz2_front(5, 6), 20_000, 5);
    let mut mid_hv = 0.0;
    let engine = run_serial(&problem, BorgConfig::new(5, 0.1), 4, 20_000, |e| {
        if e.nfe() == 2_000 {
            mid_hv = 0.0; // placeholder until we can compute outside
        }
    });
    let final_hv = metric.ratio(&engine.archive().objective_vectors());
    assert!(final_hv > 0.5, "DTLZ2-5D hypervolume ratio only {final_hv}");
}

#[test]
fn hypervolume_improves_with_budget_on_uf11() {
    let problem = uf11();
    let metric =
        RelativeHypervolume::monte_carlo(&borg_repro::problems::refsets::uf11_front(6), 20_000, 6);
    let cheap = run_serial(&problem, paper_cfg(), 7, 2_000, |_| {});
    let rich = run_serial(&problem, paper_cfg(), 7, 20_000, |_| {});
    let hv_cheap = metric.ratio(&cheap.archive().objective_vectors());
    let hv_rich = metric.ratio(&rich.archive().objective_vectors());
    assert!(
        hv_rich > hv_cheap,
        "more evaluations must help: {hv_cheap} → {hv_rich}"
    );
    assert!(hv_rich > 0.3, "UF11 final hv ratio only {hv_rich}");
}

fn paper_cfg() -> BorgConfig {
    let mut cfg = BorgConfig::new(5, 0.1);
    cfg.epsilons = vec![0.1, 0.2, 0.3, 0.4, 0.5];
    cfg
}

#[test]
fn dtlz2_is_easier_than_uf11_at_equal_budget() {
    // The paper's premise: UF11's rotation makes it harder for MOEAs.
    let nfe = 15_000;
    let d_metric = RelativeHypervolume::monte_carlo(&dtlz2_front(5, 6), 20_000, 8);
    let u_metric =
        RelativeHypervolume::monte_carlo(&borg_repro::problems::refsets::uf11_front(6), 20_000, 8);
    let d = run_serial(&Dtlz::dtlz2_5(), BorgConfig::new(5, 0.1), 9, nfe, |_| {});
    let u = run_serial(&uf11(), paper_cfg(), 9, nfe, |_| {});
    let d_hv = d_metric.ratio(&d.archive().objective_vectors());
    let u_hv = u_metric.ratio(&u.archive().objective_vectors());
    assert!(
        d_hv > u_hv,
        "expected DTLZ2 ({d_hv}) to outpace UF11 ({u_hv}) at {nfe} NFE"
    );
}

#[test]
fn parallel_execution_preserves_search_quality() {
    // Asynchronous parallelization changes evaluation ordering, not
    // solution quality in any systematic way.
    let problem = Dtlz::new(DtlzVariant::Dtlz2, 3);
    let metric = RelativeHypervolume::exact(&dtlz2_front(3, 12));
    let nfe = 10_000;

    let serial = run_serial(&problem, BorgConfig::new(3, 0.05), 11, nfe, |_| {});
    let serial_hv = metric.ratio(&serial.archive().objective_vectors());

    let vcfg = VirtualConfig {
        processors: 64,
        max_nfe: nfe,
        t_f: Dist::normal_cv(0.01, 0.1),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
        seed: 11,
    };
    let parallel = run_virtual_async(
        &problem,
        BorgConfig::new(3, 0.05),
        &vcfg,
        &NoopRecorder,
        |_, _| {},
    );
    let parallel_hv = metric.ratio(&parallel.engine.archive().objective_vectors());

    assert!(serial_hv > 0.8, "serial hv {serial_hv}");
    assert!(
        (serial_hv - parallel_hv).abs() < 0.15,
        "parallel quality diverged: serial {serial_hv} vs parallel {parallel_hv}"
    );
}

#[test]
fn dtlz34_and_uf_problems_are_solvable_end_to_end() {
    // Broad smoke across the suites: Borg must not crash and must build a
    // non-trivial archive on every problem family.
    use borg_repro::problems::uf::{Uf, UfVariant};
    use borg_repro::problems::wfg::{Wfg, WfgVariant};
    let problems: Vec<(Box<dyn borg_repro::core::problem::Problem>, usize)> = vec![
        (Box::new(Dtlz::new(DtlzVariant::Dtlz1, 3)), 3),
        (Box::new(Dtlz::new(DtlzVariant::Dtlz3, 3)), 3),
        (Box::new(Dtlz::new(DtlzVariant::Dtlz7, 3)), 3),
        (Box::new(Uf::new(UfVariant::Uf1)), 2),
        (Box::new(Uf::new(UfVariant::Uf8)), 3),
        (Box::new(Zdt::new(ZdtVariant::Zdt4)), 2),
        (Box::new(Wfg::new(WfgVariant::Wfg2, 3, 4, 6)), 3),
        (Box::new(Wfg::new(WfgVariant::Wfg5, 3, 4, 6)), 3),
        (Box::new(Wfg::new(WfgVariant::Wfg9, 3, 4, 6)), 3),
    ];
    for (problem, m) in problems {
        let engine = run_serial(
            problem.as_ref(),
            BorgConfig::new(m, 0.05),
            13,
            3_000,
            |_| {},
        );
        assert!(
            engine.archive().len() >= 3,
            "{}: archive only {}",
            problem.name(),
            engine.archive().len()
        );
        engine.archive().check_invariants().unwrap();
    }
}
