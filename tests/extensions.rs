//! Integration tests for the extension components: the NSGA-II baseline,
//! the island topology, and solution-set I/O.

use borg_repro::core::algorithm::{run_serial, BorgConfig};
use borg_repro::core::io::{solutions_from_csv, solutions_to_csv};
use borg_repro::core::nsga2::{run_nsga2_serial, Nsga2Config};
use borg_repro::metrics::relative::RelativeHypervolume;
use borg_repro::models::dist::Dist;
use borg_repro::parallel::islands::{run_islands, IslandConfig};
use borg_repro::parallel::virtual_exec::TaMode;
use borg_repro::problems::dtlz::Dtlz;
use borg_repro::problems::refsets::{dtlz2_front, zdt_front};
use borg_repro::problems::zdt::{Zdt, ZdtVariant};

#[test]
fn nsga2_and_borg_agree_on_biobjective_quality() {
    // On bi-objective ZDT2 both algorithms should reach a high-quality
    // front; neither should be wildly ahead.
    let problem = Zdt::with_variables(ZdtVariant::Zdt2, 12);
    let reference = zdt_front(&problem, 400);
    let metric = RelativeHypervolume::exact(&reference);
    let nfe = 12_000;

    let borg = run_serial(&problem, BorgConfig::new(2, 0.01), 5, nfe, |_| {});
    let borg_hv = metric.ratio(&borg.archive().objective_vectors());

    let nsga = run_nsga2_serial(&problem, Nsga2Config::default(), 5, nfe, |_| {});
    let front: Vec<Vec<f64>> = nsga
        .front()
        .iter()
        .map(|s| s.objectives().to_vec())
        .collect();
    let nsga_hv = metric.ratio(&front);

    assert!(borg_hv > 0.85, "Borg hv {borg_hv}");
    assert!(nsga_hv > 0.85, "NSGA-II hv {nsga_hv}");
}

#[test]
fn nsga2_collapses_on_many_objectives_where_borg_does_not() {
    // The many-objective failure mode that motivated ε-dominance methods:
    // with 5 objectives nearly everything is Pareto-nondominated, so
    // NSGA-II's rank-based selection degenerates to random walk while
    // Borg's ε-archive + adaptive operators keep converging.
    let problem = Dtlz::dtlz2_5();
    let metric = RelativeHypervolume::monte_carlo(&dtlz2_front(5, 6), 20_000, 17);
    let nfe = 10_000;

    let borg = run_serial(&problem, BorgConfig::new(5, 0.1), 6, nfe, |_| {});
    let borg_hv = metric.ratio(&borg.archive().objective_vectors());

    let nsga = run_nsga2_serial(&problem, Nsga2Config::default(), 6, nfe, |_| {});
    let front: Vec<Vec<f64>> = nsga
        .front()
        .iter()
        .map(|s| s.objectives().to_vec())
        .collect();
    let nsga_hv = metric.ratio(&front);

    assert!(borg_hv > 0.5, "Borg hv {borg_hv}");
    assert!(
        borg_hv > 3.0 * nsga_hv.max(1e-6),
        "expected a decisive gap: Borg {borg_hv} vs NSGA-II {nsga_hv}"
    );
}

#[test]
fn island_topology_scales_throughput_with_master_count() {
    let problem = Dtlz::dtlz2_5();
    let nfe = 8_000;
    let elapsed_for = |islands: usize, workers: usize| {
        let cfg = IslandConfig {
            islands,
            workers_per_island: workers,
            max_nfe: nfe,
            t_f: Dist::Constant(0.0002), // deep saturation for one master
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
            migration_interval: 500,
            migration_size: 4,
            seed: 77,
        };
        run_islands(&problem, BorgConfig::new(5, 0.1), &cfg).elapsed
    };
    let one = elapsed_for(1, 128);
    let four = elapsed_for(4, 32);
    // Saturated throughput ∝ master count: expect close to 4× (allow 2.5×).
    assert!(
        four < one / 2.5,
        "4 masters should give ≳2.5× throughput: {one} vs {four}"
    );
}

#[test]
fn island_archives_roundtrip_through_csv() {
    let problem = Dtlz::dtlz2_5();
    let cfg = IslandConfig {
        islands: 2,
        workers_per_island: 4,
        max_nfe: 2_000,
        t_f: Dist::Constant(0.001),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
        migration_interval: 500,
        migration_size: 2,
        seed: 9,
    };
    let result = run_islands(&problem, BorgConfig::new(5, 0.1), &cfg);
    let solutions = result.engines[0].archive().solutions().to_vec();
    assert!(!solutions.is_empty());
    let csv = solutions_to_csv(&solutions);
    let back = solutions_from_csv(&csv).unwrap();
    assert_eq!(solutions.len(), back.len());
    for (a, b) in solutions.iter().zip(&back) {
        assert_eq!(a.objectives(), b.objectives());
        assert_eq!(a.variables(), b.variables());
    }
}

#[test]
fn serial_archive_roundtrips_through_csv() {
    let problem = Zdt::with_variables(ZdtVariant::Zdt1, 8);
    let engine = run_serial(&problem, BorgConfig::new(2, 0.02), 3, 3_000, |_| {});
    let csv = solutions_to_csv(engine.archive().solutions());
    let back = solutions_from_csv(&csv).unwrap();
    assert_eq!(back.len(), engine.archive().len());
    // Re-inserting the loaded set into a fresh archive reproduces it.
    let mut archive = borg_repro::core::archive::EpsilonArchive::uniform(2, 0.02);
    for s in back {
        archive.add(s);
    }
    assert_eq!(archive.len(), engine.archive().len());
    archive.check_invariants().unwrap();
}
