//! Cross-crate validation of the paper's models against the full-algorithm
//! virtual executor — the reproduction-scale analogue of Table II's
//! model-vs-experiment comparison.

use borg_obs::NoopRecorder;
use borg_repro::core::algorithm::BorgConfig;
use borg_repro::models::analytical::{
    async_parallel_time, processor_upper_bound, relative_error, TimingParams,
};
use borg_repro::models::dist::Dist;
use borg_repro::models::distfit::best_fit;
use borg_repro::models::perfsim::{simulate_async, PerfSimConfig, TimingModel};
use borg_repro::parallel::virtual_exec::{run_virtual_async, TaMode, VirtualConfig};
use borg_repro::problems::dtlz::Dtlz;

struct Cell {
    elapsed: f64,
    mean_ta: f64,
    ta_samples: Vec<f64>,
}

fn run_cell(p: u32, nfe: u64, tf: f64) -> Cell {
    let problem = Dtlz::dtlz2_5();
    let cfg = VirtualConfig {
        processors: p,
        max_nfe: nfe,
        t_f: Dist::normal_cv(tf, 0.1),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Measured,
        seed: 1234,
    };
    let result = run_virtual_async(
        &problem,
        BorgConfig::new(5, 0.1),
        &cfg,
        &NoopRecorder,
        |_, _| {},
    );
    let mean_ta = result.ta_samples.iter().sum::<f64>() / result.ta_samples.len() as f64;
    Cell {
        elapsed: result.outcome.elapsed,
        mean_ta,
        ta_samples: result.ta_samples,
    }
}

#[test]
fn analytical_model_is_accurate_below_saturation() {
    // Large T_F, small P: Eq. (2) should be within a few percent of the
    // full-algorithm execution — the paper's low-error cells.
    let (p, nfe, tf) = (16, 5_000, 0.1);
    let cell = run_cell(p, nfe, tf);
    let eq2 = async_parallel_time(nfe, p, TimingParams::new(tf, 0.000_006, cell.mean_ta));
    let err = relative_error(cell.elapsed, eq2);
    assert!(
        err < 0.05,
        "analytical error {err} too large below saturation"
    );
}

#[test]
fn analytical_model_fails_and_simulation_model_holds_past_saturation() {
    // Small T_F, large P: the paper's high-error cells. The simulation
    // model — parameterized by distributions *fitted from the measured
    // samples* (the §IV-B pipeline) — must stay far closer than Eq. (2).
    let (p, nfe, tf) = (512, 10_000, 0.001);
    let cell = run_cell(p, nfe, tf);
    let timing = TimingParams::new(tf, 0.000_006, cell.mean_ta);

    // Confirm this configuration is genuinely past the saturation bound.
    assert!(
        f64::from(p) > processor_upper_bound(timing),
        "test premise broken: P not past P_UB"
    );

    let eq2 = async_parallel_time(nfe, p, timing);
    let analytic_err = relative_error(cell.elapsed, eq2);
    assert!(
        analytic_err > 0.5,
        "expected large analytical error, got {analytic_err}"
    );

    let ta_fit = best_fit(&cell.ta_samples);
    let sim = simulate_async(&PerfSimConfig {
        processors: p,
        evaluations: nfe,
        timing: TimingModel {
            t_f: Dist::normal_cv(tf, 0.1),
            t_c: Dist::Constant(0.000_006),
            t_a: ta_fit,
        },
        seed: 99,
    });
    let sim_err = relative_error(cell.elapsed, sim.parallel_time);
    assert!(
        sim_err < analytic_err / 3.0,
        "simulation error {sim_err} not clearly better than analytical {analytic_err}"
    );
    assert!(sim_err < 0.35, "simulation error {sim_err} too large");
}

#[test]
fn elapsed_time_bottoms_out_at_saturation() {
    // Table II, T_F = 1 ms: elapsed time falls with P pre-saturation, then
    // flattens at the master-throughput floor `N (2 T_C + T_A)` — adding
    // processors past P_UB buys nothing.
    let nfe = 6_000;
    let times: Vec<f64> = [16u32, 256, 1024]
        .iter()
        .map(|&p| run_cell(p, nfe, 0.001).elapsed)
        .collect();
    assert!(times[1] < times[0], "more workers must help pre-saturation");
    assert!(
        times[2] > times[1] * 0.7,
        "saturated time should flatten, not keep dropping: {times:?}"
    );
}

#[test]
fn measured_ta_is_microseconds_and_grows_with_problem_complexity() {
    use borg_repro::problems::uf::uf11;
    let nfe = 4_000;
    let run_ta = |problem: &dyn borg_repro::core::problem::Problem, eps: Vec<f64>| {
        let mut borg = BorgConfig::new(5, 0.1);
        borg.epsilons = eps;
        let cfg = VirtualConfig {
            processors: 16,
            max_nfe: nfe,
            t_f: Dist::Constant(0.01),
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Measured,
            seed: 7,
        };
        let r = run_virtual_async(problem, borg, &cfg, &NoopRecorder, |_, _| {});
        r.ta_samples.iter().sum::<f64>() / r.ta_samples.len() as f64
    };
    let dtlz2 = Dtlz::dtlz2_5();
    let ta_dtlz2 = run_ta(&dtlz2, vec![0.1; 5]);
    let u = uf11();
    let ta_uf11 = run_ta(&u, vec![0.1, 0.2, 0.3, 0.4, 0.5]);
    // Microsecond scale, like the paper's 23–78 µs (machine-dependent).
    assert!(ta_dtlz2 > 1e-7 && ta_dtlz2 < 5e-3, "T_A = {ta_dtlz2}");
    assert!(ta_uf11 > 1e-7 && ta_uf11 < 5e-3, "T_A = {ta_uf11}");
}

#[test]
fn perfsim_and_full_executor_agree_when_fed_the_same_distributions() {
    // With *sampled* (not measured) T_A the full-algorithm executor and
    // the lightweight performance model share the same queueing dynamics,
    // so their elapsed times must track each other closely at any P.
    let nfe = 8_000;
    let tf = 0.005;
    let ta = 0.000_04;
    for p in [16u32, 128, 1024] {
        let problem = Dtlz::dtlz2_5();
        let vcfg = VirtualConfig {
            processors: p,
            max_nfe: nfe,
            t_f: Dist::normal_cv(tf, 0.1),
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Sampled(Dist::Constant(ta)),
            seed: 31,
        };
        let full = run_virtual_async(
            &problem,
            BorgConfig::new(5, 0.1),
            &vcfg,
            &NoopRecorder,
            |_, _| {},
        );
        let sim = simulate_async(&PerfSimConfig {
            processors: p,
            evaluations: nfe,
            timing: TimingModel::controlled_delay(tf, 0.1, 0.000_006, ta),
            seed: 77,
        });
        let err = relative_error(full.outcome.elapsed, sim.parallel_time);
        assert!(
            err < 0.05,
            "P={p}: full {} vs perfsim {} (err {err})",
            full.outcome.elapsed,
            sim.parallel_time
        );
    }
}
