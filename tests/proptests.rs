//! Property-based tests over the core data structures and invariants.

use borg_repro::core::archive::EpsilonArchive;
use borg_repro::core::dominance::{
    epsilon_box_dominance, nondominated_indices, pareto_dominance_objectives, BoxDominance,
    Dominance,
};
use borg_repro::core::io::{solutions_from_csv, solutions_to_csv};
use borg_repro::core::nsga2::{crowding_distances, fast_nondominated_sort};
use borg_repro::core::operators::standard_borg_operators;
use borg_repro::core::problem::Bounds;
use borg_repro::core::solution::Solution;
use borg_repro::desim::fault::{FaultConfig, FaultPlan};
use borg_repro::desim::EventQueue;
use borg_repro::metrics::hypervolume::hypervolume;
use borg_repro::metrics::nds::nondominated_filter;
use borg_repro::models::dist::Dist;
use borg_repro::models::queueing::{
    run_async, run_async_faulty, run_sync, FaultTolerantHooks, MasterSlaveHooks, RecoveryPolicy,
};
use proptest::prelude::*;

/// Constant-time hooks for the queueing property tests.
struct ConstHooks {
    t_f: f64,
    t_c: f64,
    t_a: f64,
}

impl MasterSlaveHooks for ConstHooks {
    fn produce(&mut self, _w: usize, _now: f64) -> f64 {
        0.0
    }
    fn evaluation_time(&mut self, _w: usize) -> f64 {
        self.t_f
    }
    fn consume(&mut self, _w: usize, _now: f64) -> f64 {
        self.t_a
    }
    fn comm_time(&mut self) -> f64 {
        self.t_c
    }
}

/// Constant-time fault-tolerant hooks: every interaction has a fixed cost,
/// so only the fault plan perturbs the schedule.
struct ConstFaultHooks {
    t_f: f64,
    t_c: f64,
    t_a: f64,
}

impl FaultTolerantHooks for ConstFaultHooks {
    fn produce(&mut self, _w: usize, _eval_id: u64, _now: f64) -> f64 {
        self.t_a
    }
    fn evaluation_time(&mut self, _w: usize, _eval_id: u64) -> f64 {
        self.t_f
    }
    fn consume(&mut self, _w: usize, _eval_id: u64, _now: f64) -> f64 {
        self.t_a
    }
    fn comm_time(&mut self) -> f64 {
        self.t_c
    }
}

fn objective_vec(m: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..2.0, m)
}

/// One step of the stateful ε-archive test: mirror the three things the
/// algorithm does to its archive over a run — insert candidates, empty it
/// at a restart, and rebuild it under a different ε resolution (re-adding
/// the surviving members, as `restart` does).
#[derive(Debug, Clone)]
enum ArchiveOp {
    Add(Vec<f64>),
    Truncate,
    EpsilonRescale(f64),
}

fn archive_op(m: usize) -> impl Strategy<Value = ArchiveOp> {
    prop_oneof![
        8 => objective_vec(m).prop_map(ArchiveOp::Add),
        1 => Just(ArchiveOp::Truncate),
        2 => (0.5f64..3.0).prop_map(ArchiveOp::EpsilonRescale),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -----------------------------------------------------------------
    // Dominance
    // -----------------------------------------------------------------

    #[test]
    fn pareto_dominance_is_antisymmetric(a in objective_vec(4), b in objective_vec(4)) {
        let ab = pareto_dominance_objectives(&a, &b);
        let ba = pareto_dominance_objectives(&b, &a);
        prop_assert_eq!(ab, ba.flip());
    }

    #[test]
    fn pareto_dominance_is_irreflexive(a in objective_vec(5)) {
        prop_assert_eq!(pareto_dominance_objectives(&a, &a), Dominance::NonDominated);
    }

    #[test]
    fn epsilon_dominance_is_implied_by_strong_pareto_dominance(
        a in objective_vec(3),
        shift in prop::collection::vec(0.3f64..1.0, 3),
    ) {
        // b = a + shift with every shift ≥ 0.3 > ε = 0.25 guarantees a's
        // box dominates b's box.
        let b: Vec<f64> = a.iter().zip(&shift).map(|(x, s)| x + s).collect();
        let eps = vec![0.25; 3];
        prop_assert_eq!(epsilon_box_dominance(&a, &b, &eps), BoxDominance::Dominates);
    }

    #[test]
    fn nondominated_filter_is_idempotent(pts in prop::collection::vec(objective_vec(3), 1..40)) {
        let once = nondominated_filter(pts);
        let twice = nondominated_filter(once.clone());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn nondominated_subset_is_mutually_nondominated(
        pts in prop::collection::vec(objective_vec(3), 1..40),
    ) {
        let idx = nondominated_indices(&pts);
        for (i, &a) in idx.iter().enumerate() {
            for &b in &idx[i + 1..] {
                prop_assert_eq!(
                    pareto_dominance_objectives(&pts[a], &pts[b]),
                    Dominance::NonDominated
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // ε-archive
    // -----------------------------------------------------------------

    #[test]
    fn archive_invariants_hold_under_random_insertion(
        pts in prop::collection::vec(objective_vec(4), 1..150),
        eps in 0.05f64..0.5,
    ) {
        let mut archive = EpsilonArchive::uniform(4, eps);
        for p in pts {
            archive.add(Solution::from_parts(vec![], p, vec![]));
        }
        prop_assert!(archive.check_invariants().is_ok());
        prop_assert!(!archive.is_empty());
    }

    #[test]
    fn archive_size_is_bounded_by_box_lattice(
        pts in prop::collection::vec(objective_vec(2), 1..200),
    ) {
        // Objectives live in [0,2): with ε = 0.5 there are 4 boxes per
        // dimension; a 2-D nondominated box set has at most 4 + 4 − 1
        // staircase cells… conservatively ≤ 8.
        let mut archive = EpsilonArchive::uniform(2, 0.5);
        for p in pts {
            archive.add(Solution::from_parts(vec![], p, vec![]));
        }
        prop_assert!(archive.len() <= 8, "archive grew to {}", archive.len());
    }

    #[test]
    fn archive_members_are_never_pareto_dominated_by_later_rejects(
        pts in prop::collection::vec(objective_vec(3), 2..80),
    ) {
        // Feed everything; afterwards no member may dominate another.
        let mut archive = EpsilonArchive::uniform(3, 0.1);
        for p in &pts {
            archive.add(Solution::from_parts(vec![], p.clone(), vec![]));
        }
        let members = archive.objective_vectors();
        for (i, a) in members.iter().enumerate() {
            for b in members.iter().skip(i + 1) {
                // Same-box replacement keeps a single representative; the
                // representatives may weakly dominate only across distinct
                // boxes — strong mutual domination must never occur.
                prop_assert_ne!(pareto_dominance_objectives(a, b), Dominance::Dominates);
                prop_assert_ne!(pareto_dominance_objectives(b, a), Dominance::Dominates);
            }
        }
    }

    #[test]
    fn archive_invariants_hold_under_op_sequences(
        ops in prop::collection::vec(archive_op(3), 1..120),
        eps0 in 0.05f64..0.4,
    ) {
        // Stateful check: after EVERY step of a random add / truncate /
        // ε-rescale sequence the archive must satisfy its full invariant
        // set (mutual ε-box nondominance, box↔solution correspondence,
        // counter consistency) — not just at the end of a pure-insert run.
        let mut archive = EpsilonArchive::uniform(3, eps0);
        let mut epsilons = vec![eps0; 3];
        for op in ops {
            let op_desc = format!("{op:?}");
            match op {
                ArchiveOp::Add(p) => {
                    archive.add(Solution::from_parts(vec![], p, vec![]));
                }
                ArchiveOp::Truncate => archive.clear_solutions(),
                ArchiveOp::EpsilonRescale(factor) => {
                    // ε never shrinks below a floor so the box lattice stays
                    // finite over long sequences.
                    for e in &mut epsilons {
                        *e = (*e * factor).max(1e-3);
                    }
                    let survivors = archive.solutions().to_vec();
                    archive = EpsilonArchive::new(epsilons.clone());
                    for s in survivors {
                        archive.add(s);
                    }
                }
            }
            if let Err(broken) = archive.check_invariants() {
                prop_assert!(false, "invariant broken after {op_desc}: {broken}");
            }
        }
    }

    // -----------------------------------------------------------------
    // Hypervolume
    // -----------------------------------------------------------------

    #[test]
    fn hypervolume_is_monotone_in_set_growth(
        pts in prop::collection::vec(objective_vec(3), 1..12),
        extra in objective_vec(3),
    ) {
        let r = vec![2.0; 3];
        let base = hypervolume(&pts, &r);
        let mut grown = pts;
        grown.push(extra);
        let bigger = hypervolume(&grown, &r);
        prop_assert!(bigger >= base - 1e-12, "HV shrank: {base} → {bigger}");
    }

    #[test]
    fn hypervolume_is_bounded_by_the_box(pts in prop::collection::vec(objective_vec(4), 1..10)) {
        let r = vec![2.0; 4];
        let hv = hypervolume(&pts, &r);
        prop_assert!(hv >= 0.0);
        prop_assert!(hv <= 2.0f64.powi(4) + 1e-9);
    }

    #[test]
    fn dominated_points_do_not_change_hypervolume(
        pts in prop::collection::vec(objective_vec(3), 1..10),
        idx in 0usize..10,
        bump in prop::collection::vec(0.0f64..0.5, 3),
    ) {
        let r = vec![3.0; 3];
        let base = hypervolume(&pts, &r);
        let src = &pts[idx % pts.len()];
        let dominated: Vec<f64> = src.iter().zip(&bump).map(|(x, b)| x + b).collect();
        let mut grown = pts.clone();
        grown.push(dominated);
        let after = hypervolume(&grown, &r);
        prop_assert!((after - base).abs() < 1e-9, "{base} vs {after}");
    }

    // -----------------------------------------------------------------
    // Operators
    // -----------------------------------------------------------------

    #[test]
    fn all_operators_stay_in_bounds_on_random_parents(
        seed in 0u64..1_000,
        l in 1usize..12,
    ) {
        use rand::{Rng, SeedableRng};
        let bounds: Vec<Bounds> = (0..l).map(|_| Bounds::new(-1.5, 2.5)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for op in standard_borg_operators(l) {
            let parents: Vec<Vec<f64>> = (0..op.arity())
                .map(|_| (0..l).map(|i| rng.gen_range(bounds[i].lower..bounds[i].upper)).collect())
                .collect();
            let refs: Vec<&[f64]> = parents.iter().map(|p| p.as_slice()).collect();
            let child = op.evolve(&refs, &bounds, &mut rng);
            prop_assert_eq!(child.len(), l);
            for (c, b) in child.iter().zip(&bounds) {
                prop_assert!(c.is_finite() && b.contains(*c), "{} out of bounds: {}", op.name(), c);
            }
        }
    }

    // -----------------------------------------------------------------
    // Master-slave queueing engine
    // -----------------------------------------------------------------

    #[test]
    fn async_elapsed_respects_physical_bounds(
        workers in 1usize..64,
        n in 10u64..500,
        t_f in 1e-5f64..0.1,
        t_c in 1e-7f64..1e-4,
        t_a in 1e-7f64..1e-3,
    ) {
        let mut hooks = ConstHooks { t_f, t_c, t_a };
        let out = run_async(
            &mut hooks,
            workers,
            n,
            &borg_obs::NoopRecorder,
        );
        prop_assert_eq!(out.completed, n);
        // Work conservation: W workers cannot evaluate faster than W-way.
        let work_bound = n as f64 * t_f / workers as f64;
        prop_assert!(out.elapsed >= work_bound - 1e-12, "below work bound");
        // Master throughput floor (minus the final send we do not charge).
        let master_bound = n as f64 * (2.0 * t_c + t_a) - t_c;
        prop_assert!(out.elapsed >= master_bound - 1e-12, "below master bound");
        // Never slower than fully-serial execution through one worker plus
        // the pipeline fill.
        let serial_bound =
            n as f64 * (t_f + 2.0 * t_c + t_a) + workers as f64 * (t_a + t_c) + t_f;
        prop_assert!(out.elapsed <= serial_bound + 1e-9, "above serial bound");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&out.master_utilization));
        prop_assert!(out.mean_wait >= 0.0 && out.max_wait >= out.mean_wait);
    }

    #[test]
    fn duplicate_suppression_never_double_counts_nfe(
        workers in 2usize..24,
        n in 20u64..400,
        duplicate_rate in 0.0f64..0.5,
        drop_rate in 0.0f64..0.3,
        seed in 0u64..1_000,
    ) {
        // Arbitrary duplication and loss on the result path: the master
        // must consume exactly N results — a duplicated result must never
        // advance the NFE counter twice, and a dropped one must be
        // reissued, not forgotten.
        let (t_f, t_c, t_a) = (0.01, 0.000_006, 0.000_03);
        let plan = FaultPlan::new(
            FaultConfig { duplicate_rate, drop_rate, ..FaultConfig::default() },
            workers,
            n,
            seed,
        );
        let mut hooks = ConstFaultHooks { t_f, t_c, t_a };
        let run = run_async_faulty(
            &mut hooks,
            workers,
            n,
            &plan,
            RecoveryPolicy::from_expected_eval_time(t_f, 4.0),
            &borg_obs::NoopRecorder,
        );
        prop_assert_eq!(run.outcome.completed, n, "budget not exactly met");
        // Ledger consistency: every detected fault recovered, and each
        // suppressed duplicate / dropped result is accounted as waste.
        prop_assert!(run.fault_log.all_recovered());
        let dupes = run.fault_log.duplicates_suppressed;
        let drops = run.fault_log.injected_of(
            borg_repro::desim::fault::FaultKind::MessageDrop) as u64;
        prop_assert!(run.fault_log.wasted_nfe >= dupes.max(drops),
            "waste accounting lost events: wasted {} dupes {} drops {}",
            run.fault_log.wasted_nfe, dupes, drops);
    }

    #[test]
    fn sync_is_never_faster_than_async_with_constant_times(
        workers in 1usize..32,
        gens in 2u64..20,
        t_f in 1e-4f64..0.05,
    ) {
        let (t_c, t_a) = (0.000_006, 0.000_03);
        let n = gens * (workers as u64 + 1);
        let a = run_async(
            &mut ConstHooks { t_f, t_c, t_a },
            workers,
            n,
            &borg_obs::NoopRecorder,
        );
        let s = run_sync(
            &mut ConstHooks { t_f, t_c, t_a },
            workers,
            n,
            &borg_obs::NoopRecorder,
        );
        // The sync topology has one more evaluator (the master) but pays
        // the barrier + P·T_A per generation; with constant times and the
        // master's own T_F in the critical path it can never beat async by
        // more than the one-extra-evaluator advantage.
        prop_assert!(
            s.elapsed >= a.elapsed * (workers as f64) / (workers as f64 + 1.0) - t_f,
            "sync {} vs async {}",
            s.elapsed,
            a.elapsed
        );
    }

    // -----------------------------------------------------------------
    // NSGA-II machinery
    // -----------------------------------------------------------------

    #[test]
    fn nondominated_sort_ranks_are_consistent_with_dominance(
        pts in prop::collection::vec(objective_vec(3), 1..40),
    ) {
        let sols: Vec<Solution> = pts
            .iter()
            .map(|p| Solution::from_parts(vec![], p.clone(), vec![]))
            .collect();
        let ranks = fast_nondominated_sort(&sols);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if pareto_dominance_objectives(&pts[i], &pts[j]) == Dominance::Dominates {
                    prop_assert!(
                        ranks[i] < ranks[j],
                        "dominating point must have strictly lower rank"
                    );
                }
            }
        }
        // Rank 0 must be exactly the nondominated set.
        let nd: std::collections::HashSet<usize> =
            nondominated_indices(&pts).into_iter().collect();
        for (i, &r) in ranks.iter().enumerate() {
            // nondominated_indices drops exact duplicates; a duplicate of a
            // rank-0 point is still rank 0, so only check one direction
            // plus membership for uniques.
            if nd.contains(&i) {
                prop_assert_eq!(r, 0);
            }
        }
    }

    #[test]
    fn crowding_distances_are_nonnegative(
        pts in prop::collection::vec(objective_vec(3), 1..40),
    ) {
        let sols: Vec<Solution> = pts
            .iter()
            .map(|p| Solution::from_parts(vec![], p.clone(), vec![]))
            .collect();
        let ranks = fast_nondominated_sort(&sols);
        let c = crowding_distances(&sols, &ranks);
        prop_assert_eq!(c.len(), sols.len());
        prop_assert!(c.iter().all(|&x| x >= 0.0));
    }

    // -----------------------------------------------------------------
    // Solution-set CSV I/O
    // -----------------------------------------------------------------

    #[test]
    fn solution_csv_roundtrips(
        rows in prop::collection::vec(
            (prop::collection::vec(-5.0f64..5.0, 3),
             prop::collection::vec(0.0f64..10.0, 2)),
            1..20,
        ),
    ) {
        let set: Vec<Solution> = rows
            .into_iter()
            .map(|(vars, objs)| Solution::from_parts(vars, objs, vec![]))
            .collect();
        let back = solutions_from_csv(&solutions_to_csv(&set)).unwrap();
        prop_assert_eq!(set, back);
    }

    // -----------------------------------------------------------------
    // Event queue & distributions
    // -----------------------------------------------------------------

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn distributions_sample_within_support(seed in 0u64..500, mean in 0.0001f64..1.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for d in [
            Dist::Constant(mean),
            Dist::normal_cv(mean, 0.1),
            Dist::Exponential { rate: 1.0 / mean },
            Dist::Gamma { shape: 2.0, scale: mean / 2.0 },
            Dist::Weibull { shape: 1.5, scale: mean },
            Dist::LogNormal { mu: mean.ln(), sigma: 0.2 },
        ] {
            for _ in 0..16 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{d:?} sampled {x}");
            }
        }
    }
}
