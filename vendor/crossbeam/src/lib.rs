//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the multi-producer multi-consumer channel subset the workspace
//! uses (`channel::unbounded`, `channel::bounded`, cloneable senders *and*
//! receivers, disconnect-on-drop semantics), implemented over
//! `std::sync::{Mutex, Condvar}`. Throughput is far below real crossbeam's
//! lock-free queues, but the master-slave executor ships tens of items per
//! millisecond at most, so correctness — not raw channel speed — is what
//! matters here.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC channels with crossbeam-compatible signatures.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message, like crossbeam's.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        // Like crossbeam: no T: Debug bound, the payload is elided.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => {
                    write!(f, "timed out waiting on an empty channel")
                }
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signals receivers that an item arrived or all senders left.
        recv_ready: Condvar,
        /// Signals bounded senders that capacity freed or all receivers left.
        send_ready: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages; sends
    /// block while full. `cap` of zero is bumped to one (this stand-in has
    /// no rendezvous mode; the workspace only uses `bounded(1)`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    fn lock_ignore_poison<'a, T>(
        m: &'a Mutex<VecDeque<T>>,
    ) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        // A panicking thread cannot leave the VecDeque in a torn state
        // (push/pop are the only mutations), so poisoning is ignored.
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let inner = &*self.inner;
            let mut queue = lock_ignore_poison(&inner.queue);
            loop {
                if inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match inner.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = match inner.send_ready.wait(queue) {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            inner.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty. Fails
        /// only when the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let inner = &*self.inner;
            let mut queue = lock_ignore_poison(&inner.queue);
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    inner.send_ready.notify_one();
                    return Ok(msg);
                }
                if inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = match inner.recv_ready.wait(queue) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Receives a message, blocking at most `timeout` while the
        /// channel is empty. Disconnect (all senders gone) is reported in
        /// preference to timeout, like crossbeam.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let inner = &*self.inner;
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = lock_ignore_poison(&inner.queue);
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    inner.send_ready.notify_one();
                    return Ok(msg);
                }
                if inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = match inner.recv_ready.wait_timeout(queue, remaining) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                // Loop re-checks the queue and deadline; a spurious or
                // timed-out wake is handled identically.
                queue = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let inner = &*self.inner;
            let mut queue = lock_ignore_poison(&inner.queue);
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                inner.send_ready.notify_one();
                return Ok(msg);
            }
            if inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock_ignore_poison(&self.inner.queue).len()
        }

        /// Whether the channel is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake every blocked receiver so it can
                // observe the disconnect.
                let _guard = lock_ignore_poison(&self.inner.queue);
                self.inner.recv_ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = lock_ignore_poison(&self.inner.queue);
                self.inner.send_ready.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn recv_timeout_times_out_then_delivers_then_disconnects() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).expect("receiver alive");
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_wakes_on_cross_thread_send() {
            let (tx, rx) = unbounded::<u32>();
            std::thread::scope(|s| {
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(10));
                    tx.send(42).expect("receiver alive");
                });
                assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            });
        }

        #[test]
        fn unbounded_roundtrip_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).expect("receiver alive");
            }
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).expect("receiver alive");
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn cloned_receivers_share_the_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).expect("receivers alive");
            tx.send(2).expect("receivers alive");
            let a = rx1.recv().expect("item queued");
            let b = rx2.recv().expect("item queued");
            let mut got = [a, b];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }

        #[test]
        fn bounded_send_blocks_until_capacity_frees() {
            let (tx, rx) = bounded(1);
            tx.send(1).expect("receiver alive");
            let handle = std::thread::spawn(move || {
                tx.send(2).expect("receiver alive");
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            handle.join().expect("sender thread");
        }

        #[test]
        fn mpmc_stress_delivers_every_item_once() {
            let (tx, rx) = unbounded::<u64>();
            let producers = 4;
            let consumers = 4;
            let per_producer = 1_000u64;
            let total: u64 = producers * per_producer;
            std::thread::scope(|scope| {
                for p in 0..producers {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in 0..per_producer {
                            tx.send(p * per_producer + i).expect("receivers alive");
                        }
                    });
                }
                drop(tx);
                let handles: Vec<_> = (0..consumers)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = rx.recv() {
                                got.push(v);
                            }
                            got
                        })
                    })
                    .collect();
                let mut all: Vec<u64> = handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("consumer thread"))
                    .collect();
                all.sort_unstable();
                assert_eq!(all.len() as u64, total);
                all.dedup();
                assert_eq!(all.len() as u64, total, "duplicate delivery");
            });
        }
    }
}
