//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` returns a guard directly, no `Result`). The adaptive-spin
//! fast path of real parking_lot is absent; the workspace takes these
//! locks on millisecond-scale evaluation boundaries where lock overhead
//! is invisible.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning from a
    /// panicked holder is ignored (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
