//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro (including `#![proptest_config(..)]`), range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`Strategy::prop_shuffle`], and the `prop_assert*`
//! macros — with deterministic case generation and **no shrinking**: a
//! failing case reports its test name, case index, and generated inputs
//! (via the assertion message) but is not minimized. Case streams are a
//! pure function of the test name and case index, so failures reproduce
//! exactly across runs and machines.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test execution configuration and failure plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a test case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: String) -> Self {
            Self(message)
        }

        /// The failure message.
        pub fn message(&self) -> &str {
            &self.0
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Derives the deterministic generator for one test case. Distinct
    /// test names and case indices get independent streams (FNV-1a of the
    /// name, mixed with the case index).
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Randomly permutes generated collections (proptest's
        /// `prop_shuffle`); only usable when `Self::Value` is a `Vec`.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { source: self }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_shuffle`].
    #[derive(Debug, Clone)]
    pub struct Shuffle<S> {
        source: S,
    }

    impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut StdRng) -> Vec<T> {
            let mut items = self.source.generate(rng);
            // Fisher–Yates on the generated vector.
            for i in (1..items.len()).rev() {
                let j = rng.gen_range(0..=i);
                items.swap(i, j);
            }
            items
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Weighted choice among strategies producing a common value type;
    /// built by the [`prop_oneof!`](crate::prop_oneof) macro.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// A union with no arms yet (generating panics until one is added).
        pub fn empty() -> Self {
            Self { arms: Vec::new() }
        }

        /// Adds an arm drawn with probability `weight / total_weight`.
        pub fn arm<S>(mut self, weight: u32, strategy: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
        {
            assert!(weight > 0, "prop_oneof arm weight must be positive");
            self.arms.push((weight, Box::new(strategy)));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
            assert!(total > 0, "prop_oneof requires at least one arm");
            let mut r = rng.gen_range(0..total);
            for (w, s) in &self.arms {
                if r < *w {
                    return s.generate(rng);
                }
                r -= *w;
            }
            unreachable!("weighted draw exceeded total weight")
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Admissible element counts for [`vec`]: an exact size or a
    /// half-open range, mirroring proptest's `SizeRange` conversions.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            Self { lo, hi: hi + 1 }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed list of options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Generates values drawn uniformly from `options` (proptest's
    /// `prop::sample::select`).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Namespace mirror of proptest's `prop::` path (e.g.
/// `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! The conventional glob import.

    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`weight => strategy`) or uniform (`strategy, ...`) choice
/// among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.arm($weight, $strategy))+
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.arm(1, $strategy))+
    };
}

/// Declares deterministic property tests.
///
/// Each `#[test] fn name(binding in strategy, ...) { body }` item expands
/// to a test running `config.cases` generated cases. The body may use
/// [`prop_assert!`]-family macros; a failure aborts that test with the
/// case index (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::test_runner::case_rng(stringify!($name), case);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::__proptest_case! {
                        rng = __proptest_rng;
                        args = ($($args)*);
                        body = $body
                    };
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e.message(),
                    );
                }
            }
        }
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (rng = $rng:ident; args = ($pat:pat in $strat:expr, $($rest:tt)*); body = $body:block) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_case! { rng = $rng; args = ($($rest)*); body = $body }
    }};
    (rng = $rng:ident; args = ($pat:pat in $strat:expr); body = $body:block) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_case! { rng = $rng; args = (); body = $body }
    }};
    (rng = $rng:ident; args = (); body = $body:block) => {{
        #[allow(unused_mut)]
        let mut __proptest_body =
            || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                ::core::result::Result::Ok(())
            };
        __proptest_body()
    }};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // `match` instead of `if !cond` so comparisons on partially ordered
        // operands don't trip clippy::neg_cmp_op_on_partial_ord at use
        // sites (negating `>` is not the same as `<=` under NaN).
        match $cond {
            true => {}
            false => {
                return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                    format!($($fmt)+),
                ));
            }
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::case_rng("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::test_runner::case_rng("vec", 0);
        let s = prop::collection::vec(0.0f64..1.0, 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn select_draws_only_listed_options() {
        let mut rng = crate::test_runner::case_rng("select", 0);
        let s = crate::sample::select(vec![2u32, 5, 11]);
        for _ in 0..100 {
            assert!([2, 5, 11].contains(&s.generate(&mut rng)));
        }
    }

    #[test]
    fn shuffle_permutes_without_losing_elements() {
        let mut rng = crate::test_runner::case_rng("shuffle", 0);
        let s = Just((0..16u32).collect::<Vec<u32>>()).prop_shuffle();
        let mut saw_permutation = false;
        for _ in 0..20 {
            let mut v = s.generate(&mut rng);
            if v != (0..16).collect::<Vec<u32>>() {
                saw_permutation = true;
            }
            v.sort_unstable();
            assert_eq!(v, (0..16).collect::<Vec<u32>>());
        }
        assert!(
            saw_permutation,
            "20 shuffles of 16 elements never moved one"
        );
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = crate::test_runner::case_rng("vec-exact", 0);
        let s = prop::collection::vec(0u64..10, 5usize);
        assert_eq!(s.generate(&mut rng).len(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_in_range(x in 0.5f64..1.5, n in 1usize..4) {
            prop_assert!((0.5..1.5).contains(&x), "x out of range: {x}");
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in prop::collection::vec((0.0f64..1.0, 0u64..9), 1..10),
        ) {
            prop_assert!(!pairs.is_empty());
            for (f, u) in &pairs {
                prop_assert!((0.0..1.0).contains(f));
                prop_assert!(*u < 9);
            }
        }
    }

    #[test]
    fn failing_case_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0.0f64..1.0) {
                    prop_assert!(x > 2.0, "x was {x}");
                }
            }
            always_fails();
        });
        let err = result.expect_err("test must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "message: {msg}");
        assert!(msg.contains("case 1/4"), "message: {msg}");
    }
}
