//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the *subset* of the `rand 0.8` API it actually
//! uses, implemented locally. The sampling core is xoshiro256++ (Blackman &
//! Vigna), seeded through SplitMix64 — deterministic, platform-independent,
//! and identical across runs for a fixed seed, which is the property the
//! reproduction's determinism gate (`cargo xtask check --determinism`)
//! relies on. The value *streams* differ from upstream `rand`'s ChaCha12
//! `StdRng`, but no test or experiment in this repository depends on the
//! upstream streams — only on seed-reproducibility.
//!
//! Provided surface: [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`,
//! `gen_range`, `gen_bool`), [`rngs::StdRng`], [`seq::SliceRandom`]
//! (`shuffle`/`choose`), and [`seq::index::sample`].

#![forbid(unsafe_code)]

/// The core of a random number generator: raw integer output.
///
/// Object-safe, mirroring upstream `rand`: `&mut dyn RngCore` is a valid
/// sampling source everywhere in the workspace.
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator by expanding a 64-bit state through SplitMix64
    /// (the canonical seed-expansion function for xoshiro-family PRNGs).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that [`Rng::gen`] can produce with a standard distribution:
/// uniform over the full integer range, uniform in `[0, 1)` for floats,
/// and a fair coin for `bool`.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Types usable as `gen_range` endpoints.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`; `high` itself may be returned
    /// only when `inclusive` is set (integer types).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (high as u128).wrapping_sub(low as u128).wrapping_add(1)
                } else {
                    (high as u128).wrapping_sub(low as u128)
                };
                if span == 0 {
                    // Inclusive full-range wrap: any value is in range.
                    return Standard::sample_standard(rng);
                }
                // Rejection-free multiply-shift reduction (Lemire). The
                // modulo bias for spans ≪ 2^64 is far below anything the
                // stochastic tests can resolve, and determinism — not
                // stream quality — is the contract here.
                let v = rng.next_u64() as u128;
                low.wrapping_add(((v * span) >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit: $t = Standard::sample_standard(rng);
                let v = low + (high - low) * unit;
                // Guard against rounding `low + span` past `high`.
                if v >= high {
                    // Largest representable value below `high`.
                    <$t>::from_bits(high.to_bits() - 1).max(low)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from empty range");
        T::sample_range(rng, low, high, true)
    }
}

/// Convenience sampling methods, available on every [`RngCore`] —
/// including trait objects, via the blanket impl below.
pub trait Rng: RngCore {
    /// Samples a value with the standard distribution for its type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]: {p}");
        let unit: f64 = f64::sample_standard(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Upstream `rand`'s `StdRng` is ChaCha12; this stand-in keeps the name
    /// (so call sites compile unchanged) but uses xoshiro256++, which is
    /// equally platform-independent and reproducible, the only properties
    /// the workspace relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro256++ must not start from the all-zero state.
                let mut state = 0x9E37_79B9_7F4A_7C15u64;
                for w in &mut s {
                    *w = super::splitmix64(&mut state);
                }
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffles and index sampling.

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    pub mod index {
        //! Sampling of index sets without replacement.

        use super::super::{Rng, RngCore};

        /// A sampled set of indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the sample into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates).
        ///
        /// # Panics
        /// If `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_int_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            match rng.gen_range(2..=4u64) {
                2 => lo = true,
                4 => hi = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn dyn_rngcore_supports_rng_methods() {
        let mut rng = StdRng::seed_from_u64(8);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(10);
        let idx = super::seq::index::sample(&mut rng, 100, 10).into_vec();
        assert_eq!(idx.len(), 10);
        let mut uniq = idx.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn from_seed_all_zero_is_escaped() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
