//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!`) with a simple
//! N-sample timing loop instead of criterion's statistical machinery.
//! Results print as `<group>/<name> ... <mean> per iter (median <m>)`;
//! there is no outlier analysis, no HTML report, and no regression
//! tracking. Good enough to keep the bench targets compiling and runnable
//! offline.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! finished benchmark additionally appends one JSON line there —
//! `{"id":…,"group":…,"iters":…,"median_ns":…,"mean_ns":…}` — which is
//! how `cargo xtask bench` harvests medians into `BENCH_runner.json`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark (after one warm-up call).
/// Deliberately tiny: the paper-regeneration benches do minutes of work
/// per iteration under real criterion settings.
const TIMED_ITERS: u32 = 10;

/// Opaque value barrier. `std::hint::black_box` took over this job from
/// criterion's asm-based implementation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a parameterized benchmark, e.g. `hv/P=64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: std::fmt::Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: std::fmt::Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; reports print as benchmarks run).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording each timed call's duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed window.
        black_box(routine());
        self.samples.clear();
        for _ in 0..TIMED_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Mean and median of the recorded samples (lower-middle median for even
/// counts — a real sample, never an interpolated value).
fn summarize(samples: &[Duration]) -> (Duration, Duration) {
    if samples.is_empty() {
        return (Duration::ZERO, Duration::ZERO);
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let mut sorted = samples.to_vec();
    sorted.sort();
    (mean, sorted[sorted.len() / 2])
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let (mean, median) = summarize(&bencher.samples);
    println!("bench: {label:<50} {mean:>12.3?} per iter (median {median:.3?})");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            append_jsonl(&path, label, bencher.samples.len(), median, mean);
        }
    }
}

/// Appends one sample line to the `CRITERION_JSON` file. Labels are
/// identifier/parameter text (no quotes or backslashes), so no escaping.
fn append_jsonl(path: &str, label: &str, iters: usize, median: Duration, mean: Duration) {
    use std::io::Write as _;
    let group = label.split('/').next().unwrap_or(label);
    let line = format!(
        "{{\"id\":\"{label}\",\"group\":\"{group}\",\"iters\":{iters},\
         \"median_ns\":{},\"mean_ns\":{}}}\n",
        median.as_nanos(),
        mean.as_nanos()
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = file.write_all(line.as_bytes());
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, u64::from(TIMED_ITERS) + 1);
        assert_eq!(b.samples.len(), TIMED_ITERS as usize);
    }

    #[test]
    fn summarize_reports_mean_and_lower_middle_median() {
        let samples: Vec<Duration> = [4u64, 1, 3, 2]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        let (mean, median) = summarize(&samples);
        assert_eq!(mean, Duration::from_nanos(2)); // 10 / 4 truncates
        assert_eq!(median, Duration::from_nanos(3)); // sorted[2] of 1,2,3,4
        assert_eq!(summarize(&[]), (Duration::ZERO, Duration::ZERO));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("hv", 64).to_string(), "hv/64");
        assert_eq!(BenchmarkId::from_parameter("P=8").to_string(), "P=8");
    }
}
