#!/usr/bin/env bash
# Full correctness gate for the workspace — what CI runs, runnable locally.
# See the "Correctness & static analysis" section of README.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> cargo xtask check --determinism"
cargo xtask check --determinism

echo "==> cargo xtask mc --smoke (schedule-space model checker)"
cargo xtask mc --smoke

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --release

echo "==> cargo xtask bench --compare (perf-trajectory regression gate)"
cargo xtask bench --compare BENCH_runner.json --max-regress 10

echo "==> borg-exp faults --smoke"
./target/release/borg-exp faults --smoke --out target/ci-results

echo "==> borg-exp table2 --smoke --jobs 2 (work-stealing runner)"
./target/release/borg-exp table2 --smoke --jobs 2 --out target/ci-results-jobs2

echo "==> borg-exp table2 --smoke with trace + metrics export"
./target/release/borg-exp table2 --smoke --out target/ci-results \
  --trace-out target/ci-results/trace_smoke.json \
  --metrics-out target/ci-results/metrics_smoke.jsonl
test -s target/ci-results/trace_smoke.json
test -s target/ci-results/metrics_smoke.jsonl
grep -q '"ph":"X"' target/ci-results/trace_smoke.json
grep -q 't_f_seconds' target/ci-results/metrics_smoke.jsonl

echo "==> borg-exp serve/worker loopback smoke (tracing + flight + live tap)"
NET_SOCK="target/ci-net.sock"
TAP_SOCK="target/ci-tap.sock"
rm -f "$NET_SOCK" "$TAP_SOCK"
./target/release/borg-exp worker --connect "unix:$NET_SOCK" \
  --trace-shard target/ci-results/net_shard_w1.jsonl &
NET_W1=$!
./target/release/borg-exp worker --connect "unix:$NET_SOCK" \
  --trace-shard target/ci-results/net_shard_w2.jsonl &
NET_W2=$!
./target/release/borg-exp tail --connect "unix:$TAP_SOCK" --ticks 3 \
  > target/ci-results/net_tail.txt &
NET_TAIL=$!
./target/release/borg-exp serve --listen "unix:$NET_SOCK" --workers 2 \
  --nfe 300 --seed 7 --eval-delay-us 8000 \
  --live "unix:$TAP_SOCK" \
  --flight-out target/ci-results/net_flight.jsonl \
  --trace-shard target/ci-results/net_shard_master.jsonl \
  --metrics-out target/ci-results/net_metrics.jsonl
wait "$NET_W1" "$NET_W2" "$NET_TAIL"
test -s target/ci-results/net_metrics.jsonl
grep -q 'net\.frames_sent' target/ci-results/net_metrics.jsonl
grep -q '"flight":"borg-flight/v1"' target/ci-results/net_flight.jsonl
grep -Eq '^ *[0-9]+ ' target/ci-results/net_tail.txt

echo "==> borg-exp trace-merge (cross-process causal trace)"
./target/release/borg-exp trace-merge \
  target/ci-results/net_shard_master.jsonl \
  target/ci-results/net_shard_w1.jsonl \
  target/ci-results/net_shard_w2.jsonl \
  --out target/ci-results/net_trace_merged.json
grep -q '"ph":"X"' target/ci-results/net_trace_merged.json
grep -q 't_c_out' target/ci-results/net_trace_merged.json

echo "==> borg-exp serve/worker loopback smoke (chaos arm)"
NET_CHAOS_SOCK="target/ci-net-chaos.sock"
rm -f "$NET_CHAOS_SOCK" "$NET_CHAOS_SOCK.master"
./target/release/borg-exp worker --connect "unix:$NET_CHAOS_SOCK" &
NET_W3=$!
./target/release/borg-exp worker --connect "unix:$NET_CHAOS_SOCK" &
NET_W4=$!
./target/release/borg-exp worker --connect "unix:$NET_CHAOS_SOCK" &
NET_W5=$!
./target/release/borg-exp serve --chaos --listen "unix:$NET_CHAOS_SOCK" --workers 3 \
  --nfe 400 --seed 7 --metrics-out target/ci-results/net_chaos_metrics.jsonl \
  --flight-out target/ci-results/net_chaos_flight.jsonl
wait "$NET_W3" "$NET_W4" "$NET_W5"
test -s target/ci-results/net_chaos_metrics.jsonl
grep -q 'net\.chaos_injections' target/ci-results/net_chaos_metrics.jsonl
grep -q '"flight":"borg-flight/v1"' target/ci-results/net_chaos_flight.jsonl
grep -q '"code":"net.work_sent"' target/ci-results/net_chaos_flight.jsonl

echo "ci.sh: all gates passed"
