//! Workspace root crate for the Borg MOEA scalability reproduction.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. All functionality lives in the
//! member crates; this crate simply re-exports them under one roof so the
//! examples can write `use borg_repro::prelude::*;`.

#![forbid(unsafe_code)]
pub use borg_core as core;
pub use borg_desim as desim;
pub use borg_experiments as experiments;
pub use borg_metrics as metrics;
pub use borg_models as models;
pub use borg_obs as obs;
pub use borg_parallel as parallel;
pub use borg_problems as problems;

/// Convenience re-exports used by the examples.
pub mod prelude {
    pub use borg_core::prelude::*;
    pub use borg_metrics::prelude::*;
    pub use borg_models::prelude::*;
    pub use borg_parallel::prelude::*;
    pub use borg_problems::prelude::*;
}
