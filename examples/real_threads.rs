//! Wall-clock master-slave execution on real threads, with the paper's
//! §IV-B measurement pipeline: run, measure `T_A`/`T_F`/`T_C`, fit
//! distributions, rank by log-likelihood.
//!
//! ```sh
//! cargo run --release --example real_threads
//! ```

use borg_repro::models::dist::Dist;
use borg_repro::models::distfit::{fit_all, Family, SampleStats};
use borg_repro::parallel::threads::{estimate_comm_time, run_threaded, ThreadedConfig};
use borg_repro::prelude::*;
use std::time::Instant;

fn main() {
    let problem = Dtlz::new(DtlzVariant::Dtlz2, 3);
    let t_f = 0.002; // 2 ms injected evaluation delay (CV 0.1)
    let nfe = 1_500;

    // Serial wall-clock baseline.
    let delayed = DelayedProblem::paper_delay(Dtlz::new(DtlzVariant::Dtlz2, 3), t_f, 99);
    let t0 = Instant::now();
    let serial = run_serial(&delayed, BorgConfig::new(3, 0.05), 1, nfe, |_| {});
    let serial_elapsed = t0.elapsed().as_secs_f64();
    println!(
        "serial:   {nfe} evaluations in {serial_elapsed:.2}s  (archive {})",
        serial.archive().len()
    );

    // Parallel run with 4 workers.
    let workers = 4;
    let result = run_threaded(
        &problem,
        BorgConfig::new(3, 0.05),
        &ThreadedConfig::new(workers, nfe, Some(Dist::normal_cv(t_f, 0.1)), 2),
    )
    .expect("worker pool stays alive");
    println!(
        "parallel: {nfe} evaluations in {:.2}s with {workers} workers  (archive {})",
        result.elapsed,
        result.engine.archive().len()
    );
    println!(
        "wall-clock speedup: {:.2}x (ideal {workers}x)",
        serial_elapsed / result.elapsed
    );

    // The measurement pipeline.
    let ta = SampleStats::of(&result.ta_samples);
    let tf = SampleStats::of(&result.tf_samples);
    let tc = estimate_comm_time(500).expect("echo thread stays alive");
    println!("\nmeasured timing on this machine:");
    println!("  T_A: mean {:.1}us, cv {:.2}", ta.mean * 1e6, ta.cv());
    println!("  T_F: mean {:.2}ms, cv {:.2}", tf.mean * 1e3, tf.cv());
    println!("  T_C: ~{:.1}us (thread ping-pong / 2)", tc * 1e6);

    println!("\nT_F distribution fits ranked by log-likelihood (the R step of §IV-B):");
    for fit in fit_all(&result.tf_samples, &Family::all())
        .into_iter()
        .take(4)
    {
        println!(
            "  {:<12} {:?}  ll = {:.1}",
            format!("{:?}", fit.family),
            fit.dist,
            fit.log_likelihood
        );
    }
}
