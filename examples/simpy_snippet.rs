//! The paper's SimPy snippet (§IV-B), transliterated onto `borg-desim`.
//!
//! The paper models a worker's interaction with the master as:
//!
//! ```text
//! yield request, self, master
//! yield hold, self, sampleTc() + sampleTa() + sampleTc()
//! yield release, self, master
//! activate(worker, worker.evaluate())
//! ```
//!
//! This example reproduces that structure literally with
//! [`borg_desim::CallbackSim`] and [`borg_desim::Resource`], then prints a
//! timeline — the smallest possible version of the paper's simulation
//! model.
//!
//! ```sh
//! cargo run --release --example simpy_snippet
//! ```

use borg_repro::desim::{CallbackSim, Resource};

const WORKERS: usize = 3;
const T_C: f64 = 0.5;
const T_A: f64 = 1.0;
const T_F: f64 = 6.0;
const TARGET: u64 = 12;

struct State {
    master: Resource<usize>,
    completed: u64,
    log: Vec<String>,
}

fn evaluate(worker: usize) -> impl FnOnce(&mut CallbackSim<State>) + 'static {
    move |sim| {
        let t = sim.now();
        sim.state
            .log
            .push(format!("t={t:>5.1}  worker{worker} finished evaluating"));
        // `yield request, self, master`
        if let Some(w) = sim.state.master.request(worker) {
            hold(w)(sim);
        } // else: queued; a future release re-activates us.
    }
}

fn hold(worker: usize) -> impl FnOnce(&mut CallbackSim<State>) + 'static {
    move |sim| {
        let t = sim.now();
        sim.state
            .log
            .push(format!("t={t:>5.1}  master serving worker{worker}"));
        // `yield hold, self, sampleTc() + sampleTa() + sampleTc()`
        sim.schedule(T_C + T_A + T_C, move |sim| {
            sim.state.completed += 1;
            // `yield release, self, master`
            if let Some(next) = sim.state.master.release() {
                hold(next)(sim);
            }
            // `activate(worker, worker.evaluate())`
            if sim.state.completed + (WORKERS as u64) <= TARGET {
                sim.schedule(T_F, evaluate(worker));
            }
        });
    }
}

fn main() {
    let mut sim = CallbackSim::new(State {
        master: Resource::new(),
        completed: 0,
        log: Vec::new(),
    });

    // Seed: all workers start evaluating at t = 0 (the paper's diagram
    // staggers them by the initial sends; the steady state is identical).
    for w in 0..WORKERS {
        sim.schedule(T_F, evaluate(w));
    }
    let end = sim.run();

    for line in &sim.state.log {
        println!("{line}");
    }
    println!(
        "\n{} evaluations processed in {end:.1} time units",
        sim.state.completed
    );
    println!(
        "analytical Eq. 2 for comparison: N/(P-1) (T_F + 2 T_C + T_A) = {:.1}",
        TARGET as f64 / WORKERS as f64 * (T_F + 2.0 * T_C + T_A)
    );
    println!(
        "master max queue observed: {} (contention appears when T_F shrinks)",
        sim.state.master.max_queue_len()
    );
}
