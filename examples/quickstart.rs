//! Quickstart: solve a multiobjective problem with the serial Borg MOEA.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use borg_repro::prelude::*;

fn main() {
    // The 3-objective DTLZ2 benchmark: minimize three conflicting
    // objectives whose Pareto front is the positive octant of the unit
    // sphere.
    let problem = Dtlz::new(DtlzVariant::Dtlz2, 3);

    // ε = 0.05 controls the archive resolution: smaller ε keeps more,
    // finer-grained solutions.
    let config = BorgConfig::new(3, 0.05);

    // Run 20,000 function evaluations with a fixed seed.
    let engine = run_serial(&problem, config, 42, 20_000, |engine| {
        if engine.nfe() % 5_000 == 0 {
            println!(
                "nfe {:>6}: archive {:>4} solutions, {} restarts",
                engine.nfe(),
                engine.archive().len(),
                engine.stats().restarts
            );
        }
    });

    // Measure quality against the analytic Pareto front.
    let reference = dtlz2_front(3, 20);
    let metric = RelativeHypervolume::exact(&reference);
    let ratio = metric.ratio(&engine.archive().objective_vectors());
    println!("\nfinal archive: {} solutions", engine.archive().len());
    println!("hypervolume ratio vs true front: {ratio:.3} (1.0 = ideal)");

    println!("\noperator selection probabilities after adaptation:");
    for (name, p) in engine
        .operator_names()
        .iter()
        .zip(engine.operator_probabilities())
    {
        println!("  {name:<7} {:>5.1}%", p * 100.0);
    }

    println!("\nfirst five archive members (objectives):");
    for s in engine.archive().solutions().iter().take(5) {
        let objs: Vec<String> = s.objectives().iter().map(|o| format!("{o:.3}")).collect();
        println!("  [{}]", objs.join(", "));
    }

    assert!(ratio > 0.5, "search failed to approach the front");
}
