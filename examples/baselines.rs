//! Borg vs the classic baselines (NSGA-II, MOEA/D) at 2 and 5 objectives —
//! the algorithm-level comparison behind the paper's §II claims.
//!
//! ```sh
//! cargo run --release --example baselines
//! ```

use borg_repro::core::moead::{run_moead_serial, MoeadConfig};
use borg_repro::core::nsga2::{run_nsga2_serial, Nsga2Config};
use borg_repro::prelude::*;

fn main() {
    let nfe = 15_000;
    println!("hypervolume ratio after {nfe} evaluations (1.0 = true front)\n");
    println!(
        "{:<22} {:>4}  {:>6}  {:>8}  {:>7}",
        "problem", "M", "Borg", "NSGA-II", "MOEA/D"
    );

    // Bi-objective: everything works.
    {
        let problem = Zdt::with_variables(ZdtVariant::Zdt1, 15);
        let metric = RelativeHypervolume::exact(&zdt_front(&problem, 500));
        let borg = run_serial(&problem, BorgConfig::new(2, 0.01), 1, nfe, |_| {});
        let nsga = run_nsga2_serial(&problem, Nsga2Config::default(), 1, nfe, |_| {});
        let moead = run_moead_serial(
            &problem,
            MoeadConfig {
                divisions: 99,
                ..MoeadConfig::default()
            },
            1,
            nfe,
        );
        let nsga_front: Vec<Vec<f64>> = nsga
            .front()
            .iter()
            .map(|s| s.objectives().to_vec())
            .collect();
        println!(
            "{:<22} {:>4}  {:>6.3}  {:>8.3}  {:>7.3}",
            "ZDT1",
            2,
            metric.ratio(&borg.archive().objective_vectors()),
            metric.ratio(&nsga_front),
            metric.ratio(&moead.front()),
        );
    }

    // 5 objectives: NSGA-II's Pareto-rank selection degenerates.
    for (name, problem, borg_cfg) in [
        (
            "DTLZ2 (separable)",
            Box::new(Dtlz::dtlz2_5()) as Box<dyn Problem>,
            BorgConfig::new(5, 0.1),
        ),
        (
            "UF11 (rotated DTLZ2)",
            Box::new(uf11()) as Box<dyn Problem>,
            BorgConfig::new(5, 0.1),
        ),
    ] {
        let reference = if name.starts_with("DTLZ2") {
            dtlz2_front(5, 6)
        } else {
            uf11_front(6)
        };
        let metric = RelativeHypervolume::monte_carlo(&reference, 20_000, 7);
        let borg = run_serial(problem.as_ref(), borg_cfg, 1, nfe, |_| {});
        let nsga = run_nsga2_serial(problem.as_ref(), Nsga2Config::default(), 1, nfe, |_| {});
        let moead = run_moead_serial(
            problem.as_ref(),
            MoeadConfig {
                divisions: 6, // C(10, 4) = 210 subproblems
                ..MoeadConfig::default()
            },
            1,
            nfe,
        );
        let nsga_front: Vec<Vec<f64>> = nsga
            .front()
            .iter()
            .map(|s| s.objectives().to_vec())
            .collect();
        println!(
            "{:<22} {:>4}  {:>6.3}  {:>8.3}  {:>7.3}",
            name,
            5,
            metric.ratio(&borg.archive().objective_vectors()),
            metric.ratio(&nsga_front),
            metric.ratio(&moead.front()),
        );
    }

    println!(
        "\nWith two objectives every algorithm solves the problem. With five,\n\
         NSGA-II's rank-based selection collapses (nearly all solutions are\n\
         mutually nondominated), decomposition (MOEA/D) survives, and Borg's\n\
         ε-archive + adaptive operator ensemble wins — most clearly on the\n\
         rotated, non-separable UF11."
    );
}
