//! Virtual-time parallel scaling: a miniature Table II on your laptop.
//!
//! Runs the real Borg MOEA on the 5-objective DTLZ2 inside the
//! deterministic virtual-time master-slave executor at processor counts up
//! to 1024 — no cluster required — and compares the measured elapsed
//! (virtual) time against the paper's analytical model (Eq. 2).
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use borg_obs::NoopRecorder;
use borg_repro::models::analytical::{async_parallel_time, serial_time, TimingParams};
use borg_repro::models::dist::Dist;
use borg_repro::parallel::virtual_exec::{run_virtual_async, TaMode, VirtualConfig};
use borg_repro::prelude::*;

fn main() {
    let problem = Dtlz::dtlz2_5();
    let borg = BorgConfig::new(5, 0.1);
    let nfe = 10_000;
    let t_f = 0.001; // 1 ms simulated evaluations — small enough to saturate
    let t_c = 0.000_006;

    println!("DTLZ2-5D, N = {nfe}, T_F = {t_f}s (CV 0.1), T_C = {t_c}s\n");
    println!(
        "{:>5}  {:>10}  {:>10}  {:>8}  {:>8}  {:>6}",
        "P", "time (s)", "Eq.2 (s)", "err", "eff", "util"
    );

    for p in [4u32, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let vcfg = VirtualConfig {
            processors: p,
            max_nfe: nfe,
            t_f: Dist::normal_cv(t_f, 0.1),
            t_c: Dist::Constant(t_c),
            t_a: TaMode::Measured,
            seed: 7 + u64::from(p),
        };
        let result = run_virtual_async(&problem, borg.clone(), &vcfg, &NoopRecorder, |_, _| {});
        let mean_ta = result.ta_samples.iter().sum::<f64>() / result.ta_samples.len() as f64;
        let t = TimingParams::new(t_f, t_c, mean_ta);
        let eq2 = async_parallel_time(nfe, p, t);
        let t_s = serial_time(nfe, t);
        let elapsed = result.outcome.elapsed;
        println!(
            "{:>5}  {:>10.3}  {:>10.3}  {:>7.0}%  {:>8.2}  {:>6.2}",
            p,
            elapsed,
            eq2,
            (elapsed - eq2).abs() / elapsed * 100.0,
            t_s / (p as f64 * elapsed),
            result.outcome.master_utilization,
        );
    }

    println!(
        "\nNote how elapsed time stops improving once the master saturates\n\
         (Eq. 3: P_UB = T_F / (2 T_C + T_A)) while Eq. 2 keeps predicting\n\
         speedup — the analytical model's failure mode the paper quantifies."
    );
}
