//! The island-model topology (the paper's §VII future work): split one
//! saturated master into several cooperating master-slave instances.
//!
//! ```sh
//! cargo run --release --example island_topology
//! ```

use borg_repro::models::dist::Dist;
use borg_repro::parallel::islands::{run_islands, IslandConfig};
use borg_repro::parallel::virtual_exec::TaMode;
use borg_repro::prelude::*;

fn main() {
    let problem = Dtlz::dtlz2_5();
    let total_processors = 128u32;
    let nfe = 10_000;
    let t_f = 0.0005; // small enough that one master saturates badly

    let metric = RelativeHypervolume::monte_carlo(&dtlz2_front(5, 6), 20_000, 42);

    println!("DTLZ2-5D, {total_processors} total processors, N = {nfe}, T_F = {t_f}s\n");
    println!(
        "{:>8}  {:>14}  {:>9}  {:>9}  {:>11}",
        "islands", "workers/island", "time (s)", "hv ratio", "migrations"
    );

    for k in [1usize, 2, 4, 8] {
        let mut cfg =
            IslandConfig::split_processors(total_processors, k, nfe, Dist::normal_cv(t_f, 0.1));
        cfg.migration_interval = 500;
        cfg.migration_size = 4;
        cfg.t_a = TaMode::Sampled(Dist::Constant(0.000_03));
        cfg.seed = 7 + k as u64;
        let result = run_islands(&problem, BorgConfig::new(5, 0.1), &cfg);
        let hv = metric.ratio(&result.merged_archive());
        println!(
            "{:>8}  {:>14}  {:>9.3}  {:>9.3}  {:>11}",
            k, cfg.workers_per_island, result.elapsed, hv, result.migrations
        );
    }

    println!(
        "\nOne master saturates at P_UB = T_F/(2 T_C + T_A) ≈ {:.0} workers;\n\
         K masters push that wall out by a factor of K, trading a little\n\
         hypervolume (partitioned populations) for much better efficiency —\n\
         the design question the paper leaves as future work.",
        t_f / (2.0 * 0.000_006 + 0.000_03)
    );
}
