//! Defining your own optimization problem — a constrained two-bar truss
//! sizing problem in the spirit of the engineering workloads that motivate
//! the paper (expensive evaluations, conflicting objectives, constraints).
//!
//! ```sh
//! cargo run --release --example custom_problem
//! ```

use borg_repro::prelude::*;

/// Two-bar truss design: choose cross-sectional areas `a1`, `a2` (cm²) and
/// the joint height `y` (m) to simultaneously minimize structural volume
/// and joint deflection, subject to stress limits in both members.
struct TwoBarTruss;

impl Problem for TwoBarTruss {
    fn name(&self) -> &str {
        "TwoBarTruss"
    }
    fn num_variables(&self) -> usize {
        3
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        2
    }
    fn bounds(&self, i: usize) -> Bounds {
        match i {
            0 | 1 => Bounds::new(0.1, 2.0), // areas (cm², scaled)
            _ => Bounds::new(0.5, 3.0),     // joint height (m)
        }
    }
    fn evaluate(&self, vars: &[f64], objs: &mut [f64], cons: &mut [f64]) {
        let (a1, a2, y) = (vars[0] * 1e-4, vars[1] * 1e-4, vars[2]);
        let load = 50_000.0; // 50 kN
        let (x1, x2) = (1.0, 1.0); // anchor offsets (m)
        let l1 = (x1 * x1 + y * y).sqrt();
        let l2 = (x2 * x2 + y * y).sqrt();
        // Member forces from static equilibrium (symmetric anchors).
        let f1 = load * l1 / (2.0 * y);
        let f2 = load * l2 / (2.0 * y);
        // Objectives: material volume (m³) and total member elongation (m)
        // — stiffer (bigger, shorter) members deflect less but weigh more.
        let e = 200e9; // steel
        objs[0] = a1 * l1 + a2 * l2;
        objs[1] = f1 * l1 / (e * a1) + f2 * l2 / (e * a2);
        // Constraints: member stresses under 400 MPa (≤ 0 feasible).
        let s_max = 400e6;
        cons[0] = f1 / a1 - s_max;
        cons[1] = f2 / a2 - s_max;
    }
}

fn main() {
    // Per-objective ε matched to each objective's magnitude (volume is
    // O(1e-4) m³, elongation O(1e-3) m).
    let mut config = BorgConfig::new(2, 1e-5);
    config.epsilons = vec![5e-6, 2e-5];
    let engine = run_serial(&TwoBarTruss, config, 11, 15_000, |_| {});

    println!(
        "archive: {} trade-off designs, all feasible",
        engine.archive().len()
    );
    println!(
        "{:>10}  {:>10}  {:>8}  {:>8}  {:>8}",
        "volume", "deflect", "a1(cm2)", "a2(cm2)", "y(m)"
    );
    let mut solutions: Vec<_> = engine.archive().solutions().to_vec();
    solutions.sort_by(|a, b| a.objectives()[0].partial_cmp(&b.objectives()[0]).unwrap());
    for s in solutions.iter().step_by((solutions.len() / 10).max(1)) {
        assert!(s.is_feasible());
        println!(
            "{:>10.5}  {:>10.6}  {:>8.2}  {:>8.2}  {:>8.2}",
            s.objectives()[0],
            s.objectives()[1],
            s.variables()[0],
            s.variables()[1],
            s.variables()[2]
        );
    }
    println!("\nSmaller volume trades against larger deflection along the front.");
}
