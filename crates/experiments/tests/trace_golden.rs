//! Golden-file test for the Chrome-trace exporter.
//!
//! Renders the trace of a small seeded constant-timing run of the
//! simulation model (the Figure 2 configuration) and demands the JSON be
//! byte-identical to the checked-in golden. This pins three things at
//! once: the DES event ordering, the span instrumentation points, and the
//! exporter's formatting — a change to any of them shows up as a diff
//! here instead of as a silently different timeline.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! BLESS=1 cargo test -p borg-experiments --test trace_golden
//! ```

use borg_models::analytical::TimingParams;
use borg_models::perfsim::{simulate_async_traced, PerfSimConfig, TimingModel};
use borg_obs::export::{chrome_trace_json, TraceGroup};
use borg_obs::InMemoryRecorder;
use std::path::PathBuf;

fn rendered_trace() -> String {
    let rec = InMemoryRecorder::new();
    simulate_async_traced(
        &PerfSimConfig {
            processors: 4,
            evaluations: 12,
            timing: TimingModel::constant(TimingParams::new(0.008, 0.001, 0.002)),
            seed: 7,
        },
        &rec,
    );
    chrome_trace_json(&[TraceGroup {
        name: "figure2-async".to_string(),
        trace: rec.span_trace(),
    }])
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/timeline_trace.json")
}

#[test]
fn chrome_trace_matches_golden() {
    let json = rendered_trace();
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &json).expect("bless golden trace");
        return;
    }
    let golden =
        std::fs::read_to_string(&path).expect("golden trace file missing; regenerate with BLESS=1");
    assert_eq!(
        json, golden,
        "Chrome-trace export diverged from the golden; if the change is \
         intentional, regenerate with BLESS=1 cargo test -p borg-experiments \
         --test trace_golden"
    );
}

#[test]
fn golden_trace_is_valid_and_complete() {
    // Shape checks independent of the byte-exact golden: every actor of
    // the P = 4 run appears, and all span categories are present.
    let json = rendered_trace();
    assert!(json.contains("{\"name\":\"master\"}"));
    for w in 0..3 {
        assert!(json.contains(&format!("{{\"name\":\"worker{w}\"}}")));
    }
    for activity in ["algorithm", "communication", "evaluation"] {
        assert!(
            json.contains(&format!("\"name\":\"{activity}\"")),
            "missing {activity} spans"
        );
    }
}
