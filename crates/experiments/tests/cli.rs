//! End-to-end tests of the `borg-exp` binary at smoke scale: every
//! subcommand must run, exit 0, and leave its CSV artifacts behind.

use std::path::{Path, PathBuf};
use std::process::Command;

fn run(args: &[&str], out: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_borg-exp"))
        .args(args)
        .arg("--out")
        .arg(out)
        .output()
        .expect("spawn borg-exp")
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("borg-exp-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn bounds_subcommand_writes_csv() {
    let out = temp_out("bounds");
    let result = run(&["bounds"], &out);
    assert!(
        result.status.success(),
        "{}",
        String::from_utf8_lossy(&result.stderr)
    );
    let csv = std::fs::read_to_string(out.join("bounds.csv")).unwrap();
    assert!(csv.lines().count() == 7); // header + 6 scenarios
    assert!(csv.contains("DTLZ2 T_F=10ms"));
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn timeline_subcommands_write_artifacts() {
    let out = temp_out("timeline");
    for cmd in ["fig1", "fig2"] {
        let result = run(&[cmd], &out);
        assert!(result.status.success());
        assert!(out.join(format!("{cmd}_timeline.csv")).exists());
        assert!(out.join(format!("{cmd}_timeline.txt")).exists());
        let stdout = String::from_utf8_lossy(&result.stdout);
        assert!(stdout.contains("master"), "missing Gantt output for {cmd}");
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn table2_smoke_writes_csv_with_all_cells() {
    let out = temp_out("table2");
    let result = run(&["table2", "--smoke"], &out);
    assert!(
        result.status.success(),
        "{}",
        String::from_utf8_lossy(&result.stderr)
    );
    let csv = std::fs::read_to_string(out.join("table2.csv")).unwrap();
    // Smoke config: 2 problems × 2 T_F × 2 P + header.
    assert_eq!(csv.lines().count(), 9);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn faults_smoke_writes_csv_and_completes_every_cell() {
    let out = temp_out("faults");
    let result = run(&["faults", "--smoke"], &out);
    assert!(
        result.status.success(),
        "{}",
        String::from_utf8_lossy(&result.stderr)
    );
    let csv = std::fs::read_to_string(out.join("faults.csv")).unwrap();
    // Smoke config: 2 failure rates × 2 P + header.
    assert_eq!(csv.lines().count(), 5);
    // Every cell must report the full smoke budget (2000 NFE) completed.
    for line in csv.lines().skip(1) {
        assert!(line.contains(",2000,"), "cell did not complete: {line}");
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn hv_speedup_smoke_writes_panels() {
    let out = temp_out("fig3");
    let result = run(&["fig3", "--smoke"], &out);
    assert!(
        result.status.success(),
        "{}",
        String::from_utf8_lossy(&result.stderr)
    );
    assert!(out.join("fig3_dtlz2_tf0.01.csv").exists());
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn fig5_smoke_writes_both_surfaces() {
    let out = temp_out("fig5");
    let result = run(&["fig5", "--smoke"], &out);
    assert!(result.status.success());
    for name in [
        "fig5_sync.csv",
        "fig5_async.csv",
        "fig5_sync_table2params.csv",
        "fig5_async_table2params.csv",
        "fig5.txt",
    ] {
        assert!(out.join(name).exists(), "missing {name}");
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn islands_and_dynamics_smoke() {
    let out = temp_out("ext");
    assert!(run(&["islands", "--smoke"], &out).status.success());
    assert!(out.join("islands.csv").exists());
    assert!(run(&["dynamics", "--smoke"], &out).status.success());
    assert!(out.join("dynamics_summary.csv").exists());
    assert!(out.join("dynamics_p8.csv").exists());
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = temp_out("bad");
    let result = run(&["frobnicate"], &out);
    assert!(!result.status.success());
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn flag_parsing_rejects_bad_values() {
    let result = Command::new(env!("CARGO_BIN_EXE_borg-exp"))
        .args(["table2", "--nfe", "not-a-number"])
        .output()
        .unwrap();
    assert!(!result.status.success());
    assert!(String::from_utf8_lossy(&result.stderr).contains("--nfe"));
}
