//! Process-level fault tolerance: SIGKILL a real worker process mid-run
//! and assert the networked master detects the death (connection EOF),
//! reissues the lost evaluation, and still completes the full budget on
//! the surviving worker.

#![cfg(unix)]

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NFE: u64 = 600;
/// Per-evaluation delay (µs) announced to workers: slows the run to
/// ~1.5 s so the kill reliably lands mid-flight.
const EVAL_DELAY_US: u64 = 5_000;

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_borg-exp")
}

fn spawn_worker(sock: &str) -> Child {
    Command::new(exe())
        .args(["worker", "--connect", sock])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn worker process")
}

/// Extracts `key=value` from the serve summary line.
fn field(summary: &str, key: &str) -> u64 {
    summary
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in summary: {summary}"))
        .parse()
        .unwrap_or_else(|e| panic!("bad {key} in summary ({e}): {summary}"))
}

#[test]
fn sigkilled_worker_is_detected_and_its_work_reissued() {
    let dir = std::env::temp_dir();
    let sock_path = dir.join(format!("borg-kill-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock_path);
    let sock = format!("unix:{}", sock_path.display());

    let flight_path = dir.join(format!(
        "borg-kill-test-{}.flight.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&flight_path);
    let mut serve = Command::new(exe())
        .args([
            "serve",
            "--listen",
            &sock,
            "--workers",
            "2",
            "--nfe",
            &NFE.to_string(),
            "--seed",
            "99",
            "--eval-delay-us",
            &EVAL_DELAY_US.to_string(),
            "--flight-out",
            &flight_path.display().to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve process");

    let mut victim = spawn_worker(&sock);
    let mut survivor = spawn_worker(&sock);

    // Let registration finish and the run get going, then SIGKILL one
    // worker mid-evaluation. At ~5 ms per evaluation the run lasts well
    // past this point, so the victim is holding an in-flight work item
    // with overwhelming probability.
    std::thread::sleep(Duration::from_millis(600));
    victim.kill().expect("SIGKILL the victim worker");
    victim.wait().expect("reap the victim");

    // The master must still finish the full budget on the survivor.
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        match serve.try_wait().expect("poll serve") {
            Some(status) => break status,
            None if Instant::now() > deadline => {
                let _ = serve.kill();
                let _ = survivor.kill();
                panic!("serve did not finish within 60s after the kill");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    };

    let mut stdout = String::new();
    serve
        .stdout
        .take()
        .expect("serve stdout piped")
        .read_to_string(&mut stdout)
        .expect("read serve stdout");
    let mut stderr = String::new();
    serve
        .stderr
        .take()
        .expect("serve stderr piped")
        .read_to_string(&mut stderr)
        .expect("read serve stderr");
    assert!(
        status.success(),
        "serve exited with {status}\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );

    let summary = stdout
        .lines()
        .find(|l| l.starts_with("serve summary:"))
        .unwrap_or_else(|| panic!("no serve summary in stdout:\n{stdout}"));

    assert_eq!(
        field(summary, "nfe"),
        NFE,
        "budget not completed: {summary}"
    );
    assert!(
        field(summary, "deaths_detected") >= 1,
        "the SIGKILLed worker was never detected: {summary}"
    );
    assert!(
        field(summary, "reissues") >= 1,
        "the lost in-flight evaluation was never reissued: {summary}"
    );
    assert!(field(summary, "archive") > 0, "empty archive: {summary}");

    let survivor_status = survivor.wait().expect("reap the survivor");
    assert!(
        survivor_status.success(),
        "surviving worker exited abnormally"
    );

    // The master's black-box flight recorder must have been dumped with
    // the worker-death trigger and contain the death event itself.
    let flight = std::fs::read_to_string(&flight_path)
        .unwrap_or_else(|e| panic!("flight dump {} missing: {e}", flight_path.display()));
    let header = flight.lines().next().expect("flight dump empty");
    assert!(
        header.contains("\"trigger\":\"worker_death\""),
        "flight dump not triggered by the death: {header}"
    );
    assert!(
        flight.contains("\"code\":\"net.worker_death\""),
        "flight dump is missing the net.worker_death event"
    );

    let _ = std::fs::remove_file(&sock_path);
    let _ = std::fs::remove_file(&flight_path);
}
