//! Figures 1 and 2: master/worker activity timelines.
//!
//! Reproduces the paper's Gantt-style diagrams of the synchronous (Fig. 1)
//! and asynchronous (Fig. 2) master-slave topologies with `P = 4` (one
//! master, three workers), rendering both CSV span data and an ASCII
//! chart. With constant times the asynchronous chart shows the workers in
//! perpetual evaluation and the master briefly busy per result — exactly
//! the reduced idle time the paper highlights.

use borg_models::analytical::TimingParams;
use borg_models::perfsim::{
    simulate_async_traced, simulate_sync_traced, PerfSimConfig, TimingModel,
};
use borg_obs::InMemoryRecorder;

/// Configuration for the timeline figures.
#[derive(Debug, Clone, Copy)]
pub struct TimelineConfig {
    /// Total processors (paper: 4).
    pub processors: u32,
    /// Evaluations to draw (enough for a few cycles).
    pub evaluations: u64,
    /// Timing constants, scaled for legibility (`T_F : T_A : T_C` roughly
    /// as in the paper's figures).
    pub timing: TimingParams,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        Self {
            processors: 4,
            evaluations: 12,
            timing: TimingParams::new(0.008, 0.001, 0.002),
        }
    }
}

/// A rendered timeline: span CSV + ASCII Gantt chart + summary line.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Span data (`actor,activity,start,end`).
    pub csv: String,
    /// ASCII chart (C = T_C, A = T_A, F = T_F, . = idle).
    pub ascii: String,
    /// Elapsed simulated time.
    pub elapsed: f64,
    /// Master utilization.
    pub master_utilization: f64,
}

fn config_to_perfsim(config: &TimelineConfig) -> PerfSimConfig {
    PerfSimConfig {
        processors: config.processors,
        evaluations: config.evaluations,
        timing: TimingModel::constant(config.timing),
        seed: 7,
    }
}

/// Figure 1: the synchronous, generational timeline.
pub fn figure1(config: &TimelineConfig) -> Timeline {
    let rec = InMemoryRecorder::new();
    let pred = simulate_sync_traced(&config_to_perfsim(config), &rec);
    let trace = rec.span_trace();
    Timeline {
        csv: trace.to_csv(),
        ascii: trace.to_ascii(96),
        elapsed: pred.parallel_time,
        master_utilization: pred.outcome.master_utilization,
    }
}

/// Figure 2: the asynchronous timeline.
pub fn figure2(config: &TimelineConfig) -> Timeline {
    let rec = InMemoryRecorder::new();
    let pred = simulate_async_traced(&config_to_perfsim(config), &rec);
    let trace = rec.span_trace();
    Timeline {
        csv: trace.to_csv(),
        ascii: trace.to_ascii(96),
        elapsed: pred.parallel_time,
        master_utilization: pred.outcome.master_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_figures_render() {
        let cfg = TimelineConfig::default();
        let f1 = figure1(&cfg);
        let f2 = figure2(&cfg);
        for t in [&f1, &f2] {
            assert!(t.csv.lines().count() > 4);
            assert!(t.ascii.contains("master"));
            assert!(t.ascii.contains("worker2"));
            assert!(t.elapsed > 0.0);
        }
    }

    #[test]
    fn async_finishes_sooner_than_sync() {
        // The figures' visual point: same work, less idle time.
        let cfg = TimelineConfig::default();
        let f1 = figure1(&cfg);
        let f2 = figure2(&cfg);
        assert!(
            f2.elapsed < f1.elapsed,
            "async {} should beat sync {}",
            f2.elapsed,
            f1.elapsed
        );
    }

    #[test]
    fn async_workers_show_less_idle() {
        let cfg = TimelineConfig::default();
        let f1 = figure1(&cfg);
        let f2 = figure2(&cfg);
        let idle_frac = |t: &Timeline| {
            let rows: Vec<&str> = t
                .ascii
                .lines()
                .filter(|l| l.starts_with("worker"))
                .collect();
            let dots: usize = rows.iter().map(|r| r.matches('.').count()).sum();
            let total: usize = rows
                .iter()
                .map(|r| r.chars().filter(|c| "CAF.".contains(*c)).count())
                .sum();
            dots as f64 / total as f64
        };
        assert!(
            idle_frac(&f2) < idle_frac(&f1),
            "async idle {} vs sync idle {}",
            idle_frac(&f2),
            idle_frac(&f1)
        );
    }
}
