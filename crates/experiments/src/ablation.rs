//! Ablation studies for the design choices called out in DESIGN.md §5.
//!
//! 1. ε-box archive vs a plain unbounded Pareto archive (size & cost);
//! 2. adaptive operator ensemble vs SBX-only;
//! 3. restart machinery on/off;
//! 4. queueing contention on/off (simulation vs analytical model);
//! 5. evaluation-time variance: sync degrades, async does not.

use crate::report::TextTable;
use crate::suite::PaperProblem;
use borg_core::algorithm::run_serial;
use borg_core::dominance::{pareto_dominance_objectives, Dominance};
use borg_core::rng::SplitMix64;
use borg_metrics::relative::RelativeHypervolume;
use borg_models::analytical::{
    async_parallel_time, async_parallel_time_saturating, processor_upper_bound, relative_error,
    TimingParams,
};
use borg_models::dist::Dist;
use borg_models::perfsim::{simulate_async, simulate_sync, PerfSimConfig, TimingModel};
use rand::Rng;
use std::time::Instant;

/// Shared scale knobs for the ablations.
#[derive(Debug, Clone, Copy)]
pub struct AblationConfig {
    /// Evaluations for algorithm-quality ablations.
    pub evaluations: u64,
    /// Replicates.
    pub replicates: u32,
    /// Seed.
    pub seed: u64,
    /// Worker threads for the replicate sweeps (`0` auto, `1` serial);
    /// results are bit-identical for any value (see `borg-runner`).
    pub jobs: usize,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            evaluations: 10_000,
            replicates: 3,
            seed: 77,
            jobs: 0,
        }
    }
}

impl AblationConfig {
    /// Smoke-test scale.
    pub fn smoke(mut self) -> Self {
        self.evaluations = 2_000;
        self.replicates = 1;
        self
    }
}

// ---------------------------------------------------------------------
// 1. Archive ablation
// ---------------------------------------------------------------------

/// A deliberately naive unbounded Pareto archive (the baseline the ε-box
/// archive replaces).
struct PlainParetoArchive {
    points: Vec<Vec<f64>>,
}

impl PlainParetoArchive {
    fn new() -> Self {
        Self { points: Vec::new() }
    }

    fn add(&mut self, p: Vec<f64>) {
        let mut dominated = false;
        self.points
            .retain(|q| match pareto_dominance_objectives(&p, q) {
                Dominance::Dominates => false,
                Dominance::DominatedBy => {
                    dominated = true;
                    true
                }
                Dominance::NonDominated => true,
            });
        if !dominated {
            self.points.push(p);
        }
    }
}

/// Compares archive growth and insertion cost on a stream of random
/// 5-objective points (mimicking early search on DTLZ2-5D).
pub fn ablation_archive(config: &AblationConfig) -> TextTable {
    let mut rng = SplitMix64::new(config.seed).derive("ablation-archive");
    let n = config.evaluations.min(20_000) as usize;
    let points: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            // Random directions with radius shrinking over time — a crude
            // stand-in for converging search.
            let raw: Vec<f64> = (0..5).map(|_| rng.gen::<f64>().max(1e-9)).collect();
            let norm = raw.iter().map(|x| x * x).sum::<f64>().sqrt();
            let r = 1.0 + 2.0 * rng.gen::<f64>();
            raw.into_iter().map(|x| r * x / norm).collect()
        })
        .collect();

    let t0 = Instant::now();
    let mut plain = PlainParetoArchive::new();
    for p in &points {
        plain.add(p.clone());
    }
    let plain_time = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut eps = borg_core::archive::EpsilonArchive::uniform(5, 0.1);
    for p in &points {
        eps.add(borg_core::solution::Solution::from_parts(
            vec![],
            p.clone(),
            vec![],
        ));
    }
    let eps_time = t1.elapsed().as_secs_f64();

    let mut t = TextTable::new(vec![
        "archive",
        "final size",
        "insert time (s)",
        "per insert (us)",
    ]);
    t.row(vec![
        "plain Pareto".to_string(),
        plain.points.len().to_string(),
        format!("{plain_time:.4}"),
        format!("{:.2}", plain_time / n as f64 * 1e6),
    ]);
    t.row(vec![
        "epsilon-box (0.1)".to_string(),
        eps.len().to_string(),
        format!("{eps_time:.4}"),
        format!("{:.2}", eps_time / n as f64 * 1e6),
    ]);
    t
}

// ---------------------------------------------------------------------
// 2–3. Algorithm ablations (operators, restarts)
// ---------------------------------------------------------------------

fn mean_final_hv(
    problem_choice: PaperProblem,
    config: &AblationConfig,
    tweak: impl Fn(&mut borg_core::algorithm::BorgConfig) + Sync,
) -> f64 {
    let reference = problem_choice.reference_front(6);
    let metric = RelativeHypervolume::monte_carlo(&reference, 5_000, config.seed ^ 0xF0);
    let mut split = SplitMix64::new(config.seed);
    let seeds: Vec<u64> = (0..config.replicates)
        .map(|_| split.derive_seed("ablation-hv"))
        .collect();
    let ratios = crate::par::run_jobs(config.jobs, seeds, |_, seed| {
        let problem = problem_choice.build();
        let mut borg = problem_choice.borg_config(0.1);
        tweak(&mut borg);
        let engine = run_serial(problem.as_ref(), borg, seed, config.evaluations, |_| {});
        metric.ratio_rows(engine.archive().objective_rows().iter_rows())
    });
    ratios.iter().sum::<f64>() / config.replicates as f64
}

/// Adaptive six-operator ensemble vs SBX-only.
pub fn ablation_operators(config: &AblationConfig) -> TextTable {
    let mut t = TextTable::new(vec!["problem", "ensemble hv", "SBX-only hv"]);
    for p in PaperProblem::all() {
        let full = mean_final_hv(p, config, |_| {});
        let sbx = mean_final_hv(p, config, |c| c.adaptation_enabled = false);
        t.row(vec![
            p.name().to_string(),
            format!("{full:.3}"),
            format!("{sbx:.3}"),
        ]);
    }
    t
}

/// Restart machinery on vs off.
pub fn ablation_restarts(config: &AblationConfig) -> TextTable {
    let mut t = TextTable::new(vec!["problem", "restarts on hv", "restarts off hv"]);
    for p in PaperProblem::all() {
        let on = mean_final_hv(p, config, |_| {});
        let off = mean_final_hv(p, config, |c| c.restarts_enabled = false);
        t.row(vec![
            p.name().to_string(),
            format!("{on:.3}"),
            format!("{off:.3}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// 4. Contention modelling ablation
// ---------------------------------------------------------------------

/// Shows the error gap between the analytical model (no contention), a
/// saturating correction of it (master-throughput floor, no queueing
/// dynamics), and the queueing simulation as P crosses the saturation
/// bound — decomposing the paper's core argument: how much of Eq. 2's
/// failure is "no ceiling" vs "no queueing".
pub fn ablation_contention(config: &AblationConfig) -> TextTable {
    let timing = TimingParams::new(0.001, 0.000_006, 0.000_030);
    let mut t = TextTable::new(vec![
        "P",
        "sim time",
        "Eq.2",
        "Eq.2 err",
        "saturating",
        "saturating err",
    ]);
    for p in [16u32, 64, 256, 1024] {
        let sim = simulate_async(&PerfSimConfig {
            processors: p,
            evaluations: config.evaluations,
            timing: TimingModel::controlled_delay(timing.t_f, 0.1, timing.t_c, timing.t_a),
            seed: config.seed,
        });
        let analytic = async_parallel_time(config.evaluations, p, timing);
        let saturating = async_parallel_time_saturating(config.evaluations, p, timing);
        t.row(vec![
            p.to_string(),
            format!("{:.3}", sim.parallel_time),
            format!("{analytic:.3}"),
            format!(
                "{:.0}%",
                relative_error(sim.parallel_time, analytic) * 100.0
            ),
            format!("{saturating:.3}"),
            format!(
                "{:.0}%",
                relative_error(sim.parallel_time, saturating) * 100.0
            ),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// 5. Evaluation-time variance ablation
// ---------------------------------------------------------------------

/// §VI-B's closing prediction: increasing the CV of `T_F` degrades the
/// synchronous topology (stragglers stall whole generations) but leaves
/// the asynchronous topology nearly unchanged.
pub fn ablation_variance(config: &AblationConfig) -> TextTable {
    let mut t = TextTable::new(vec!["CV", "async time", "sync time", "sync/async"]);
    for cv in [0.0, 0.1, 0.5, 1.0] {
        let mk = |seed| PerfSimConfig {
            processors: 16,
            evaluations: config.evaluations,
            timing: TimingModel {
                t_f: Dist::normal_cv(0.01, cv),
                t_c: Dist::Constant(0.000_006),
                t_a: Dist::Constant(0.000_030),
            },
            seed,
        };
        let a = simulate_async(&mk(config.seed));
        let s = simulate_sync(&mk(config.seed ^ 1));
        t.row(vec![
            format!("{cv:.1}"),
            format!("{:.3}", a.parallel_time),
            format!("{:.3}", s.parallel_time),
            format!("{:.2}", s.parallel_time / a.parallel_time),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// 6. T_A composition
// ---------------------------------------------------------------------

/// Where the master's algorithm time actually goes, per workload — the
/// explanation for the paper's observation that `T_A` grows with problem
/// complexity (and, through larger archives, with runtime).
pub fn ablation_ta_breakdown(config: &AblationConfig) -> TextTable {
    let mut t = TextTable::new(vec![
        "problem",
        "selection",
        "variation",
        "archive",
        "population",
        "adaptation",
        "restarts",
        "us/eval",
    ]);
    for p in PaperProblem::all() {
        let problem = p.build();
        let mut borg = p.borg_config(0.1);
        borg.profile_ta = true;
        let engine = run_serial(
            problem.as_ref(),
            borg,
            config.seed,
            config.evaluations,
            |_| {},
        );
        let prof = engine.ta_profile();
        let total = prof.total().max(1e-300);
        let pct = |x: f64| format!("{:.0}%", x / total * 100.0);
        t.row(vec![
            p.name().to_string(),
            pct(prof.selection),
            pct(prof.variation),
            pct(prof.archive),
            pct(prof.population),
            pct(prof.adaptation),
            pct(prof.restarts),
            format!("{:.1}", total / config.evaluations as f64 * 1e6),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// 7. Archive-layout ablation
// ---------------------------------------------------------------------

/// Replays one scrambled, mutually nondominated candidate stream into the
/// retained linear-scan archive and the ε-grid indexed archive, measuring
/// per-insert archive cost `T_A` under each layout and its effect on the
/// paper's processor upper bound `P_UB = T_F / (2 T_C + T_A)`.
///
/// Because every candidate is admissible the archive grows to its
/// ε-bounded capacity, so the linear scan pays a membership-sized probe on
/// each insert while the grid index touches only the candidate's ε-box
/// neighbourhood — the layout change is a direct `T_A` reduction, which
/// raises the master-side scalability ceiling.
pub fn ablation_layout(config: &AblationConfig) -> TextTable {
    use borg_core::archive::{EpsilonArchive, LinearScanArchive};
    use borg_core::solution::Solution;

    let n = config.evaluations.min(20_000) as usize;
    let candidates: Vec<Solution> = (0..n)
        .map(|i| {
            let j = (i.wrapping_mul(0x9E37) ^ (i >> 3)) % n;
            let t = j as f64 / n as f64;
            Solution::from_parts(vec![], vec![t, 1.0 - t], vec![])
        })
        .collect();

    let t0 = Instant::now();
    let mut linear = LinearScanArchive::uniform(2, 1e-4);
    for c in &candidates {
        linear.add(c.clone());
    }
    let linear_ta = t0.elapsed().as_secs_f64() / n as f64;

    let t1 = Instant::now();
    let mut indexed = EpsilonArchive::uniform(2, 1e-4);
    for c in &candidates {
        indexed.add(c.clone());
    }
    let indexed_ta = t1.elapsed().as_secs_f64() / n as f64;

    // The fixed timing halves come from the paper's DTLZ2 point (T_F = 1 ms,
    // T_C = 6 µs); only T_A changes between the two layouts.
    let p_ub = |ta: f64| processor_upper_bound(TimingParams::new(0.001, 0.000_006, ta));
    let linear_pub = p_ub(linear_ta);
    let indexed_pub = p_ub(indexed_ta);

    let mut t = TextTable::new(vec![
        "archive layout",
        "final size",
        "T_A per insert (us)",
        "P_UB (T_F=1ms)",
    ]);
    t.row(vec![
        "linear scan".to_string(),
        linear.len().to_string(),
        format!("{:.2}", linear_ta * 1e6),
        format!("{linear_pub:.0}"),
    ]);
    t.row(vec![
        "epsilon-grid indexed".to_string(),
        indexed.len().to_string(),
        format!("{:.2}", indexed_ta * 1e6),
        format!("{indexed_pub:.0}"),
    ]);
    t.row(vec![
        "indexed vs linear".to_string(),
        "-".to_string(),
        format!("{:.1}x lower", linear_ta / indexed_ta),
        format!("{:.1}x higher", indexed_pub / linear_pub),
    ]);
    t
}

// ---------------------------------------------------------------------
// 8. Baseline-algorithm comparison
// ---------------------------------------------------------------------

/// Serial Borg vs serial NSGA-II (the canonical generational MOEA) at an
/// equal evaluation budget — the algorithm-level counterpart of the
/// topology comparison, and the baseline the Borg papers report against.
///
/// Includes the bi-objective ZDT1 (where crowding-distance selection works
/// and both algorithms excel) alongside the paper's 5-objective workloads
/// (where NSGA-II's Pareto-rank selection famously collapses — the
/// many-objective failure mode that motivated ε-dominance methods like
/// Borg in the first place).
pub fn ablation_baseline(config: &AblationConfig) -> TextTable {
    use borg_core::moead::{run_moead_serial, MoeadConfig};
    use borg_core::nsga2::{run_nsga2_serial, Nsga2Config};
    use borg_problems::refsets::zdt_front;
    use borg_problems::zdt::{Zdt, ZdtVariant};

    /// A rebuildable case identifier, so every (case, replicate) pair can
    /// be an independent job that constructs its own problem and metric.
    #[derive(Clone, Copy)]
    enum CaseId {
        Zdt1,
        Paper(PaperProblem),
    }
    let cases = [
        CaseId::Zdt1,
        CaseId::Paper(PaperProblem::Dtlz2),
        CaseId::Paper(PaperProblem::Uf11),
    ];
    let build = |id: CaseId| -> (
        Box<dyn borg_core::problem::Problem>,
        Vec<Vec<f64>>,
        borg_core::algorithm::BorgConfig,
    ) {
        match id {
            CaseId::Zdt1 => {
                let zdt1 = Zdt::with_variables(ZdtVariant::Zdt1, 15);
                let front = zdt_front(&zdt1, 500);
                (
                    Box::new(zdt1),
                    front,
                    borg_core::algorithm::BorgConfig::new(2, 0.01),
                )
            }
            CaseId::Paper(p) => (p.build(), p.reference_front(6), p.borg_config(0.1)),
        }
    };

    // Each case derives its replicate seeds from a fresh splitter — the
    // same sequence per case, exactly as the old per-case loop did.
    let mut jobs = Vec::new();
    for (index, _) in cases.iter().enumerate() {
        let mut split = SplitMix64::new(config.seed ^ 0x0B);
        for _ in 0..config.replicates {
            jobs.push((index, split.derive_seed("baseline")));
        }
    }
    let outcomes = crate::par::run_jobs(config.jobs, jobs, |_, (index, seed)| {
        let (problem, reference, borg_cfg) = build(cases[index]);
        let metric = RelativeHypervolume::monte_carlo(&reference, 5_000, config.seed ^ 0xBA5E);
        let m = problem.num_objectives();
        let borg = run_serial(problem.as_ref(), borg_cfg, seed, config.evaluations, |_| {});
        let borg_hv = metric.ratio_rows(borg.archive().objective_rows().iter_rows());
        let nsga = run_nsga2_serial(
            problem.as_ref(),
            Nsga2Config::default(),
            seed,
            config.evaluations,
            |_| {},
        );
        let front: Vec<Vec<f64>> = nsga
            .front()
            .iter()
            .map(|s| s.objectives().to_vec())
            .collect();
        let nsga_hv = metric.ratio(&front);
        // Lattice sized near 100 subproblems regardless of M.
        let moead_cfg = MoeadConfig {
            divisions: if m == 2 { 99 } else { 6 },
            ..MoeadConfig::default()
        };
        let moead = run_moead_serial(problem.as_ref(), moead_cfg, seed, config.evaluations);
        let moead_hv = metric.ratio(&moead.front());
        (borg_hv, nsga_hv, moead_hv)
    });

    let mut t = TextTable::new(vec![
        "problem",
        "objectives",
        "Borg hv",
        "NSGA-II hv",
        "MOEA/D hv",
    ]);
    let replicates = config.replicates as usize;
    for (index, &id) in cases.iter().enumerate() {
        let mine = &outcomes[index * replicates..(index + 1) * replicates];
        let (mut borg_acc, mut nsga_acc, mut moead_acc) = (0.0, 0.0, 0.0);
        for &(b, n, d) in mine {
            borg_acc += b;
            nsga_acc += n;
            moead_acc += d;
        }
        let (name, m) = match id {
            CaseId::Zdt1 => ("ZDT1", 2),
            CaseId::Paper(p) => (p.name(), 5),
        };
        t.row(vec![
            name.to_string(),
            m.to_string(),
            format!("{:.3}", borg_acc / config.replicates as f64),
            format!("{:.3}", nsga_acc / config.replicates as f64),
            format!("{:.3}", moead_acc / config.replicates as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AblationConfig {
        AblationConfig::default().smoke()
    }

    #[test]
    fn ta_breakdown_percentages_sum_to_about_100() {
        let t = ablation_ta_breakdown(&cfg());
        assert_eq!(t.len(), 2);
        for line in t.to_csv().lines().skip(1) {
            let pct_sum: f64 = line
                .split(',')
                .skip(1)
                .take(6)
                .map(|c| c.trim_end_matches('%').parse::<f64>().unwrap())
                .sum();
            assert!(
                (pct_sum - 100.0).abs() < 3.5,
                "percentages sum to {pct_sum}"
            );
        }
    }

    #[test]
    fn baseline_ablation_produces_valid_rows() {
        let t = ablation_baseline(&cfg());
        assert_eq!(t.len(), 3); // ZDT1 + DTLZ2 + UF11
        for line in t.to_csv().lines().skip(1) {
            let borg: f64 = line.split(',').nth(2).unwrap().parse().unwrap();
            let nsga: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!((0.0..=1.2).contains(&borg));
            assert!((0.0..=1.2).contains(&nsga));
        }
        // On the bi-objective problem both algorithms must do well.
        let zdt1_line = t.to_csv().lines().nth(1).unwrap().to_string();
        let nsga_zdt1: f64 = zdt1_line.split(',').nth(3).unwrap().parse().unwrap();
        assert!(
            nsga_zdt1 > 0.5,
            "NSGA-II should make progress on ZDT1: {nsga_zdt1}"
        );
    }

    #[test]
    fn archive_ablation_epsilon_is_bounded_and_cheaper_per_insert() {
        let t = ablation_archive(&AblationConfig {
            evaluations: 5_000,
            ..cfg()
        });
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let plain_size: usize = rows[0].split(',').nth(1).unwrap().parse().unwrap();
        let eps_size: usize = rows[1].split(',').nth(1).unwrap().parse().unwrap();
        assert!(
            eps_size < plain_size,
            "ε-archive ({eps_size}) should be smaller than plain ({plain_size})"
        );
    }

    #[test]
    fn layout_ablation_layouts_agree_and_pub_is_finite() {
        let t = ablation_layout(&AblationConfig {
            evaluations: 2_000,
            ..cfg()
        });
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let linear_size: usize = rows[0].split(',').nth(1).unwrap().parse().unwrap();
        let indexed_size: usize = rows[1].split(',').nth(1).unwrap().parse().unwrap();
        assert_eq!(
            linear_size, indexed_size,
            "both layouts must admit the same members"
        );
        for row in &rows[..2] {
            let p_ub: f64 = row.split(',').nth(3).unwrap().parse().unwrap();
            assert!(p_ub.is_finite() && p_ub > 0.0, "P_UB {p_ub} out of range");
        }
    }

    #[test]
    fn operator_ablation_runs_and_reports_sane_hv() {
        let t = ablation_operators(&cfg());
        assert_eq!(t.len(), 2);
        for line in t.to_csv().lines().skip(1) {
            let hv: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
            assert!((0.0..=1.2).contains(&hv), "hv {hv} out of range");
        }
    }

    #[test]
    fn restart_ablation_runs() {
        let t = ablation_restarts(&cfg());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn contention_ablation_diverges_with_p() {
        let t = ablation_contention(&cfg());
        let csv = t.to_csv();
        let divergences: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| {
                l.split(',')
                    .nth(3)
                    .unwrap()
                    .trim_end_matches('%')
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(
            divergences.last().unwrap() > &50.0,
            "analytical model should diverge at P=1024: {divergences:?}"
        );
        assert!(
            divergences[0] < 10.0,
            "models should agree at P=16: {divergences:?}"
        );
    }

    #[test]
    fn variance_ablation_shows_straggler_effect() {
        let t = ablation_variance(&AblationConfig {
            evaluations: 4_000,
            ..cfg()
        });
        let csv = t.to_csv();
        let ratios: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        assert!(
            ratios.last().unwrap() > ratios.first().unwrap(),
            "sync penalty must grow with CV: {ratios:?}"
        );
    }
}
