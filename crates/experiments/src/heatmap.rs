//! Figure 5: synchronous vs asynchronous efficiency over the
//! `(P, T_F)` plane.
//!
//! The synchronous surface uses Cantú-Paz's analytical model (Eq. 6), the
//! asynchronous surface the queueing simulation model — exactly the pair
//! the paper plots. `T_F` spans `[1e-4, 1]` s and `P` spans `[2, 16384]`,
//! both log-scaled.
//!
//! Note the paper's Figure 5 caption fixes `T_A = 6 µs` and `T_C = 60 µs`
//! (swapping the magnitudes of Table II, where `T_C = 6 µs`); we default
//! to the caption's values and expose both (see DESIGN.md §4).

use crate::report::{ascii_heatmap, TextTable};
use borg_models::analytical::{sync_efficiency, TimingParams};
use borg_models::dist::Dist;
use borg_models::perfsim::{simulate_async, PerfSimConfig, TimingModel};

/// Configuration for the efficiency heatmaps.
#[derive(Debug, Clone)]
pub struct HeatmapConfig {
    /// `T_F` grid (seconds, log-spaced).
    pub tf_grid: Vec<f64>,
    /// Processor grid (log-spaced).
    pub p_grid: Vec<u32>,
    /// Master algorithm time.
    pub t_a: f64,
    /// One-way communication time.
    pub t_c: f64,
    /// Coefficient of variation of `T_F` in the asynchronous simulation.
    pub cv: f64,
    /// Evaluations per asynchronous simulation (scaled with `P` so every
    /// worker cycles several times).
    pub min_evaluations: u64,
    /// Seed.
    pub seed: u64,
    /// Worker threads for the grid sweep (`0` auto, `1` serial); surfaces
    /// are bit-identical for any value (see `borg-runner`).
    pub jobs: usize,
}

impl Default for HeatmapConfig {
    fn default() -> Self {
        Self {
            tf_grid: log_grid(1e-4, 1.0, 13),
            p_grid: (1..=14).map(|i| 1u32 << i).collect(), // 2 … 16384
            // Figure 5 caption: "T_A and T_C are fixed at 0.000006 and
            // 0.000060 seconds".
            t_a: 0.000_006,
            t_c: 0.000_060,
            cv: 0.1,
            min_evaluations: 4_000,
            seed: 5150,
            jobs: 0,
        }
    }
}

impl HeatmapConfig {
    /// The Table II parameterization instead (`T_C = 6 µs`, `T_A = 30 µs`).
    pub fn table2_params(mut self) -> Self {
        self.t_c = 0.000_006;
        self.t_a = 0.000_030;
        self
    }

    /// Smoke-test grid.
    pub fn smoke(mut self) -> Self {
        self.tf_grid = log_grid(1e-4, 1.0, 5);
        self.p_grid = vec![2, 16, 128, 1024];
        self.min_evaluations = 1_000;
        self
    }
}

/// Log-spaced grid of `n` points from `lo` to `hi` inclusive.
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && lo > 0.0 && hi > lo);
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// The two efficiency surfaces (rows = `T_F` descending, cols = `P`
/// ascending, matching the paper's axes).
#[derive(Debug, Clone)]
pub struct EfficiencySurfaces {
    /// `T_F` row labels (descending).
    pub tf_grid: Vec<f64>,
    /// `P` column labels (ascending).
    pub p_grid: Vec<u32>,
    /// Synchronous efficiency (Eq. 6).
    pub sync: Vec<Vec<f64>>,
    /// Asynchronous efficiency (simulation model).
    pub async_: Vec<Vec<f64>>,
}

/// Computes both surfaces.
///
/// Each `(T_F, P)` grid cell is an independent job (its simulation seed
/// is derived from the cell coordinates alone); cells fan out over
/// `config.jobs` workers and land in a row-major index-ordered buffer, so
/// the surfaces are bit-identical for every `jobs` setting.
pub fn run_figure5(config: &HeatmapConfig) -> EfficiencySurfaces {
    let mut tf_grid = config.tf_grid.clone();
    tf_grid.sort_by(|a, b| b.total_cmp(a)); // descending rows
    let mut jobs = Vec::with_capacity(tf_grid.len() * config.p_grid.len());
    for &tf in &tf_grid {
        for &p in &config.p_grid {
            jobs.push((tf, p));
        }
    }
    let cells = crate::par::run_jobs(config.jobs, jobs, |_, (tf, p)| {
        let t = TimingParams::new(tf, config.t_c, config.t_a);
        // N only normalizes away in the analytical formula.
        let sync_eff = sync_efficiency(1_000_000, p, t);
        let n = config.min_evaluations.max(4 * u64::from(p));
        let pred = simulate_async(&PerfSimConfig {
            processors: p.max(2),
            evaluations: n,
            timing: TimingModel {
                t_f: Dist::normal_cv(tf, config.cv),
                t_c: Dist::Constant(config.t_c),
                t_a: Dist::Constant(config.t_a),
            },
            seed: config.seed ^ u64::from(p) ^ tf.to_bits(),
        });
        (sync_eff, pred.efficiency)
    });
    let cols = config.p_grid.len();
    let sync = cells
        .chunks(cols)
        .map(|row| row.iter().map(|&(s, _)| s).collect())
        .collect();
    let async_ = cells
        .chunks(cols)
        .map(|row| row.iter().map(|&(_, a)| a).collect())
        .collect();
    EfficiencySurfaces {
        tf_grid,
        p_grid: config.p_grid.clone(),
        sync,
        async_,
    }
}

impl EfficiencySurfaces {
    /// Renders one surface as CSV (`tf` rows × `P` columns).
    pub fn to_csv(&self, surface: &[Vec<f64>]) -> String {
        let mut header = vec!["tf_seconds".to_string()];
        header.extend(self.p_grid.iter().map(|p| format!("P{p}")));
        let mut t = TextTable::new(header);
        for (tf, row) in self.tf_grid.iter().zip(surface) {
            let mut cells = vec![format!("{tf:.6}")];
            cells.extend(row.iter().map(|e| format!("{e:.4}")));
            t.row(cells);
        }
        t.to_csv()
    }

    /// Renders one surface as an ASCII heatmap.
    pub fn to_ascii(&self, surface: &[Vec<f64>], title: &str) -> String {
        let labels: Vec<String> = self.tf_grid.iter().map(|tf| format!("{tf:.4}")).collect();
        format!(
            "{title} (rows: T_F seconds desc; cols: P = {:?})\n{}",
            self.p_grid,
            ascii_heatmap(surface, &labels, "efficiency: ' '=0 … '@'=1")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_grid_endpoints_and_monotonicity() {
        let g = log_grid(1e-4, 1.0, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1e-4).abs() < 1e-12);
        assert!((g[4] - 1.0).abs() < 1e-12);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn surfaces_have_grid_shape() {
        let cfg = HeatmapConfig::default().smoke();
        let s = run_figure5(&cfg);
        assert_eq!(s.sync.len(), cfg.tf_grid.len());
        assert_eq!(s.async_.len(), cfg.tf_grid.len());
        assert!(s.sync.iter().all(|r| r.len() == cfg.p_grid.len()));
        // Every efficiency is a valid ratio.
        for row in s.sync.iter().chain(&s.async_) {
            for &e in row {
                assert!((0.0..=1.01).contains(&e), "efficiency {e} out of range");
            }
        }
    }

    #[test]
    fn async_scales_further_than_sync_at_large_tf() {
        // The paper's headline region: T_F large, P large.
        let cfg = HeatmapConfig {
            tf_grid: vec![1.0],
            p_grid: vec![4096],
            min_evaluations: 20_000,
            ..HeatmapConfig::default()
        };
        let s = run_figure5(&cfg);
        let (es, ea) = (s.sync[0][0], s.async_[0][0]);
        // Slightly under the steady-state ceiling because N = 20k gives
        // each of the 4095 workers only ~5 cycles (pipeline-fill cost).
        assert!(ea > 0.85, "async should stay efficient: {ea}");
        assert!(ea > es, "async {ea} must beat sync {es} here");
    }

    #[test]
    fn sync_wins_at_small_p_and_tf() {
        let cfg = HeatmapConfig {
            tf_grid: vec![2e-4],
            p_grid: vec![2],
            min_evaluations: 4_000,
            ..HeatmapConfig::default()
        };
        let s = run_figure5(&cfg);
        assert!(
            s.sync[0][0] > s.async_[0][0],
            "sync {} vs async {}",
            s.sync[0][0],
            s.async_[0][0]
        );
    }

    #[test]
    fn async_has_lower_bound_frontier() {
        // §VI-B: the asynchronous surface shows a viability frontier —
        // small T_F cannot run efficiently at scale.
        let cfg = HeatmapConfig {
            tf_grid: vec![1e-4],
            p_grid: vec![256],
            min_evaluations: 4_000,
            ..HeatmapConfig::default()
        };
        let s = run_figure5(&cfg);
        assert!(
            s.async_[0][0] < 0.1,
            "tiny T_F at P=256 cannot be efficient"
        );
    }

    #[test]
    fn csv_and_ascii_render() {
        let cfg = HeatmapConfig::default().smoke();
        let s = run_figure5(&cfg);
        let csv = s.to_csv(&s.async_);
        assert!(csv.lines().count() == cfg.tf_grid.len() + 1);
        let art = s.to_ascii(&s.sync, "sync");
        assert!(art.contains("sync"));
    }
}
