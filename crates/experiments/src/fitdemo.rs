//! The §IV-B measurement pipeline, end-to-end on this machine: run the
//! real-thread master-slave executor, collect `T_A` / `T_F` samples and a
//! ping-pong `T_C` estimate, then fit candidate distributions and rank
//! them by log-likelihood — the paper's R workflow, in Rust.

use crate::report::TextTable;
use crate::suite::PaperProblem;
use borg_models::dist::Dist;
use borg_models::distfit::{fit_all, Family, SampleStats};
use borg_parallel::threads::{estimate_comm_time, run_threaded, ThreadedConfig, ThreadedError};

/// Configuration for the fitting demonstration.
#[derive(Debug, Clone, Copy)]
pub struct FitDemoConfig {
    /// Worker threads.
    pub workers: usize,
    /// Evaluations.
    pub evaluations: u64,
    /// Injected mean delay (seconds).
    pub t_f: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for FitDemoConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            evaluations: 2_000,
            t_f: 0.001,
            seed: 2013,
        }
    }
}

/// Output of the fitting demonstration.
#[derive(Debug)]
pub struct FitDemo {
    /// Measured statistics of `T_A`.
    pub ta_stats: SampleStats,
    /// Measured statistics of `T_F`.
    pub tf_stats: SampleStats,
    /// Estimated one-way `T_C`.
    pub t_c: f64,
    /// Ranked fits for `T_A`.
    pub ta_table: TextTable,
    /// Ranked fits for `T_F`.
    pub tf_table: TextTable,
}

fn rank_table(samples: &[f64]) -> TextTable {
    let mut t = TextTable::new(vec!["family", "fitted", "log-likelihood"]);
    for fit in fit_all(samples, &Family::all()) {
        t.row(vec![
            format!("{:?}", fit.family),
            format!("{:?}", fit.dist),
            format!("{:.1}", fit.log_likelihood),
        ]);
    }
    t
}

/// Runs the pipeline.
///
/// # Errors
/// Propagates [`ThreadedError`] if the worker pool or the `T_C` probe dies.
pub fn run_fit_demo(config: &FitDemoConfig) -> Result<FitDemo, ThreadedError> {
    let problem = PaperProblem::Dtlz2.build();
    let borg = PaperProblem::Dtlz2.borg_config(0.1);
    let result = run_threaded(
        problem.as_ref(),
        borg,
        &ThreadedConfig {
            workers: config.workers,
            max_nfe: config.evaluations,
            delay: Some(Dist::normal_cv(config.t_f, 0.1)),
            seed: config.seed,
            faults: None,
            reissue_timeout: None,
        },
    )?;
    let t_c = estimate_comm_time(500)?;
    Ok(FitDemo {
        ta_stats: SampleStats::of(&result.ta_samples),
        tf_stats: SampleStats::of(&result.tf_samples),
        t_c,
        ta_table: rank_table(&result.ta_samples),
        tf_table: rank_table(&result.tf_samples),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_recovers_injected_delay() {
        let cfg = FitDemoConfig {
            workers: 2,
            evaluations: 400,
            t_f: 0.002,
            seed: 9,
        };
        let demo = run_fit_demo(&cfg).expect("fit demo run");
        // Measured T_F mean must sit near the injected 2 ms (sleep overshoot
        // allows some upward bias).
        assert!(
            demo.tf_stats.mean >= 0.002 && demo.tf_stats.mean < 0.004,
            "mean T_F {}",
            demo.tf_stats.mean
        );
        // T_A on this machine is microseconds, far below T_F.
        assert!(demo.ta_stats.mean < demo.tf_stats.mean / 10.0);
        // T_C thread ping is sub-millisecond.
        assert!(demo.t_c < 0.001, "T_C = {}", demo.t_c);
        assert!(!demo.tf_table.is_empty());
        assert!(!demo.ta_table.is_empty());
    }
}
