//! The island-topology experiment (the paper's §VI suggestion and §VII
//! future work): split a fixed processor budget into K concurrent
//! master-slave instances and measure elapsed time, aggregate efficiency,
//! and solution quality against the single-master topology.

use crate::report::TextTable;
use crate::suite::PaperProblem;
use borg_metrics::relative::RelativeHypervolume;
use borg_models::analytical::serial_time;
use borg_models::analytical::TimingParams;
use borg_models::dist::Dist;
use borg_parallel::islands::{run_islands, IslandConfig};
use borg_parallel::virtual_exec::TaMode;

/// Configuration for the island-topology experiment.
#[derive(Debug, Clone)]
pub struct IslandsExpConfig {
    /// Workload.
    pub problem: PaperProblem,
    /// Total processor budget (masters + workers).
    pub total_processors: u32,
    /// Island counts to compare (1 = the paper's single-master topology).
    pub island_counts: Vec<usize>,
    /// Total evaluations.
    pub evaluations: u64,
    /// Mean evaluation delay (chosen small so one master saturates).
    pub t_f: f64,
    /// Migration interval in island-local evaluations.
    pub migration_interval: u64,
    /// Master algorithm-time source (Measured by default; tests use a
    /// sampled constant for load-independence).
    pub t_a: TaMode,
    /// Seed.
    pub seed: u64,
}

impl Default for IslandsExpConfig {
    fn default() -> Self {
        Self {
            problem: PaperProblem::Dtlz2,
            total_processors: 256,
            island_counts: vec![1, 2, 4, 8, 16],
            evaluations: 20_000,
            t_f: 0.001,
            migration_interval: 1_000,
            t_a: TaMode::Measured,
            seed: 0x15_1A_2D,
        }
    }
}

impl IslandsExpConfig {
    /// Smoke scale.
    pub fn smoke(mut self) -> Self {
        self.evaluations = 3_000;
        self.island_counts = vec![1, 4];
        self.total_processors = 64;
        self
    }
}

/// One row of the island comparison.
#[derive(Debug, Clone)]
pub struct IslandsRow {
    /// Number of islands.
    pub islands: usize,
    /// Workers per island.
    pub workers_per_island: usize,
    /// Elapsed virtual time.
    pub elapsed: f64,
    /// Aggregate efficiency `T_S / (P · T_P)` using the measured mean `T_A`.
    pub efficiency: f64,
    /// Hypervolume ratio of the merged archive.
    pub hypervolume: f64,
    /// Mean master utilization.
    pub utilization: f64,
    /// Migration broadcasts performed.
    pub migrations: u64,
}

/// Runs the island comparison.
pub fn run_islands_experiment(config: &IslandsExpConfig) -> Vec<IslandsRow> {
    let problem = config.problem.build();
    let borg = config.problem.borg_config(0.1);
    let metric =
        RelativeHypervolume::monte_carlo(&config.problem.reference_front(6), 20_000, config.seed);
    let mut rows = Vec::new();
    for &k in &config.island_counts {
        let mut icfg = IslandConfig::split_processors(
            config.total_processors,
            k,
            config.evaluations,
            Dist::normal_cv(config.t_f, 0.1),
        );
        icfg.migration_interval = config.migration_interval;
        icfg.t_a = config.t_a;
        icfg.seed = config.seed ^ (k as u64) << 8;
        let result = run_islands(problem.as_ref(), borg.clone(), &icfg);
        // Efficiency against the serial baseline with a nominal T_A
        // matching the single-master measurement scale (30 µs).
        let t_s = serial_time(
            config.evaluations,
            TimingParams::new(config.t_f, 0.000_006, 0.000_03),
        );
        let hv = metric.ratio(&result.merged_archive());
        rows.push(IslandsRow {
            islands: k,
            workers_per_island: icfg.workers_per_island,
            elapsed: result.elapsed,
            efficiency: t_s / (f64::from(config.total_processors) * result.elapsed),
            hypervolume: hv,
            utilization: result.mean_master_utilization,
            migrations: result.migrations,
        });
    }
    rows
}

/// Renders the comparison table.
pub fn render_islands(rows: &[IslandsRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "islands",
        "workers/island",
        "time (s)",
        "efficiency",
        "hv ratio",
        "util",
        "migrations",
    ]);
    for r in rows {
        t.row(vec![
            r.islands.to_string(),
            r.workers_per_island.to_string(),
            format!("{:.3}", r.elapsed),
            format!("{:.2}", r.efficiency),
            format!("{:.3}", r.hypervolume),
            format!("{:.2}", r.utilization),
            r.migrations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_runs_and_splits_budget() {
        let cfg = IslandsExpConfig::default().smoke();
        let rows = run_islands_experiment(&cfg);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].islands, 1);
        assert_eq!(rows[0].workers_per_island, 63);
        assert_eq!(rows[1].islands, 4);
        assert_eq!(rows[1].workers_per_island, 15);
        for r in &rows {
            assert!(r.elapsed > 0.0);
            assert!(r.hypervolume > 0.0);
        }
        assert_eq!(render_islands(&rows).len(), 2);
    }

    #[test]
    fn islands_relieve_master_saturation() {
        // At T_F = 1 ms a 255-worker single master is deep in saturation;
        // 8 masters must cut elapsed time substantially while holding
        // comparable quality.
        let cfg = IslandsExpConfig {
            island_counts: vec![1, 8],
            evaluations: 8_000,
            migration_interval: 250,
            // Sampled T_A keeps this test independent of machine load
            // (Measured T_A inflates under concurrent test execution).
            t_a: TaMode::Sampled(borg_models::dist::Dist::Constant(0.000_03)),
            ..IslandsExpConfig::default()
        };
        let rows = run_islands_experiment(&cfg);
        let single = &rows[0];
        let eight = &rows[1];
        assert!(
            eight.elapsed < single.elapsed * 0.7,
            "8 islands ({}) vs single ({})",
            eight.elapsed,
            single.elapsed
        );
        // Partitioning the population costs some quality at a fixed total
        // budget (each island only sees 1/8 of the evaluations); migration
        // must keep the loss moderate. The paper's §VII flags exactly this
        // efficiency/quality tension as the open problem.
        assert!(
            eight.hypervolume > single.hypervolume * 0.6,
            "island quality collapsed: {} vs {}",
            eight.hypervolume,
            single.hypervolume
        );
    }
}
