//! Algorithm dynamics under scaling (§VI discussion / §VII conclusion):
//! *"the effectiveness of the asynchronous Borg MOEA's auto-adaptive
//! search is strongly shaped by parallel scalability and problem
//! difficulty"*.
//!
//! The experiment runs the same workload and evaluation budget at several
//! processor counts, recording — against **virtual wall-clock time** — the
//! evaluations completed, hypervolume, restart count, and the entropy of
//! the operator-selection probabilities. Compared at a common time point
//! (the moment the fastest configuration finished), efficient
//! configurations have executed their full budget and fully adapted their
//! operator ensemble, while saturated configurations lag in evaluations,
//! adaptation, and quality — making the paper's "dynamics" argument
//! quantitative.

use crate::hvcache::HvCache;
use crate::report::TextTable;
use crate::suite::PaperProblem;
use borg_core::rng::SplitMix64;
use borg_metrics::relative::RelativeHypervolume;
use borg_models::dist::Dist;
use borg_obs::NoopRecorder;
use borg_parallel::virtual_exec::{run_virtual_async, TaMode, VirtualConfig};

/// Configuration of the dynamics experiment.
#[derive(Debug, Clone)]
pub struct DynamicsConfig {
    /// Workload.
    pub problem: PaperProblem,
    /// Processor counts to compare.
    pub processors: Vec<u32>,
    /// Evaluation budget per run.
    pub evaluations: u64,
    /// Mean evaluation delay.
    pub t_f: f64,
    /// Checkpoint cadence in evaluations.
    pub check_every: u64,
    /// Seed.
    pub seed: u64,
    /// Worker threads for the per-`P` sweep (`0` auto, `1` serial). The
    /// fan-out adds no nondeterminism — seeds are pre-derived and results
    /// fold in `processors` order (see `borg-runner`); measured `T_A`
    /// still varies with host timing run to run regardless of `jobs`.
    pub jobs: usize,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        Self {
            problem: PaperProblem::Uf11,
            processors: vec![16, 64, 256, 1024],
            evaluations: 20_000,
            t_f: 0.001,
            check_every: 500,
            seed: 0xD1A,
            jobs: 0,
        }
    }
}

impl DynamicsConfig {
    /// Smoke scale.
    pub fn smoke(mut self) -> Self {
        self.evaluations = 3_000;
        self.processors = vec![8, 256];
        self.check_every = 250;
        self
    }
}

/// One checkpoint along a run.
#[derive(Debug, Clone)]
pub struct DynamicsPoint {
    /// Virtual time (seconds).
    pub time: f64,
    /// Evaluations consumed.
    pub nfe: u64,
    /// Archive size.
    pub archive: usize,
    /// Restarts so far.
    pub restarts: u64,
    /// Hypervolume ratio.
    pub hypervolume: f64,
    /// Normalized Shannon entropy of the operator probabilities
    /// (1 = uniform / unadapted, → 0 as one operator dominates).
    pub operator_entropy: f64,
}

/// One processor count's trajectory.
#[derive(Debug, Clone)]
pub struct DynamicsTrajectory {
    /// Processor count.
    pub processors: u32,
    /// Checkpoints in time order.
    pub points: Vec<DynamicsPoint>,
}

impl DynamicsTrajectory {
    /// The last checkpoint at or before `t` (None if the run hadn't
    /// produced a checkpoint yet).
    pub fn at_time(&self, t: f64) -> Option<&DynamicsPoint> {
        self.points.iter().rev().find(|p| p.time <= t)
    }

    /// CSV rendering of the full trajectory.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,nfe,archive,restarts,hypervolume,operator_entropy\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:.6},{},{},{},{:.4},{:.4}\n",
                p.time, p.nfe, p.archive, p.restarts, p.hypervolume, p.operator_entropy
            ));
        }
        out
    }
}

/// Normalized Shannon entropy of a probability vector.
pub fn normalized_entropy(probs: &[f64]) -> f64 {
    let k = probs.len() as f64;
    if probs.len() <= 1 {
        return 0.0;
    }
    let h: f64 = probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum();
    h / k.ln()
}

/// Runs the dynamics experiment, returning one trajectory per `P`.
///
/// Each processor count is one job: its seed is pre-derived from the
/// shared SplitMix64 stream in `config.processors` order, the runs fan
/// out over `config.jobs` workers, and the trajectories come back in
/// that same order — bit-identical for every `jobs` setting. Hypervolume
/// checkpoints go through an [`HvCache`] so the metric only re-runs when
/// the archive changed since the previous checkpoint.
pub fn run_dynamics(config: &DynamicsConfig) -> Vec<DynamicsTrajectory> {
    let metric =
        RelativeHypervolume::monte_carlo(&config.problem.reference_front(6), 10_000, config.seed);
    let mut split = SplitMix64::new(config.seed);
    let jobs: Vec<(u32, u64)> = config
        .processors
        .iter()
        .map(|&p| (p, split.derive_seed("dynamics") ^ u64::from(p)))
        .collect();
    crate::par::run_jobs(config.jobs, jobs, |_, (p, seed)| {
        let problem = config.problem.build();
        let borg = config.problem.borg_config(0.1);
        let vcfg = VirtualConfig {
            processors: p,
            max_nfe: config.evaluations,
            t_f: Dist::normal_cv(config.t_f, 0.1),
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Measured,
            seed,
        };
        let mut points = Vec::new();
        let check = config.check_every.max(1);
        let mut cache = HvCache::new();
        run_virtual_async(problem.as_ref(), borg, &vcfg, &NoopRecorder, |t, engine| {
            if engine.nfe() % check == 0 || engine.nfe() == config.evaluations {
                points.push(DynamicsPoint {
                    time: t,
                    nfe: engine.nfe(),
                    archive: engine.archive().len(),
                    restarts: engine.stats().restarts,
                    hypervolume: cache.ratio(&metric, engine.archive()),
                    operator_entropy: normalized_entropy(engine.operator_probabilities()),
                });
            }
        });
        DynamicsTrajectory {
            processors: p,
            points,
        }
    })
}

/// Summary table at the common time point where the fastest configuration
/// completed its budget.
pub fn render_dynamics_summary(trajectories: &[DynamicsTrajectory]) -> TextTable {
    let t_ref = trajectories
        .iter()
        .filter_map(|t| t.points.last().map(|p| p.time))
        .fold(f64::INFINITY, f64::min);
    let mut table = TextTable::new(vec![
        "P",
        "t_ref (s)",
        "nfe@t_ref",
        "hv@t_ref",
        "op entropy@t_ref",
        "restarts@t_ref",
        "final hv",
    ]);
    for t in trajectories {
        let at = t.at_time(t_ref);
        let last = t.points.last();
        table.row(vec![
            t.processors.to_string(),
            format!("{t_ref:.3}"),
            at.map_or("-".into(), |p| p.nfe.to_string()),
            at.map_or("-".into(), |p| format!("{:.3}", p.hypervolume)),
            at.map_or("-".into(), |p| format!("{:.3}", p.operator_entropy)),
            at.map_or("-".into(), |p| p.restarts.to_string()),
            last.map_or("-".into(), |p| format!("{:.3}", p.hypervolume)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_bounds() {
        assert!((normalized_entropy(&[1.0 / 6.0; 6]) - 1.0).abs() < 1e-12);
        assert!(normalized_entropy(&[1.0, 0.0, 0.0]) < 1e-12);
        let mid = normalized_entropy(&[0.7, 0.1, 0.1, 0.1]);
        assert!(mid > 0.0 && mid < 1.0);
        assert_eq!(normalized_entropy(&[1.0]), 0.0);
    }

    #[test]
    fn smoke_dynamics_produces_trajectories() {
        let cfg = DynamicsConfig::default().smoke();
        let trajs = run_dynamics(&cfg);
        assert_eq!(trajs.len(), 2);
        for t in &trajs {
            assert!(!t.points.is_empty());
            assert_eq!(t.points.last().unwrap().nfe, cfg.evaluations);
            // Time and NFE are monotone along a trajectory.
            assert!(t.points.windows(2).all(|w| w[0].time <= w[1].time));
            assert!(t.points.windows(2).all(|w| w[0].nfe < w[1].nfe));
            let csv = t.to_csv();
            assert_eq!(csv.lines().count(), t.points.len() + 1);
        }
        let table = render_dynamics_summary(&trajs);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn saturated_configuration_loses_quality_at_equal_budget() {
        // The paper's dynamics claim, measured: at a fixed evaluation
        // budget, the heavily-asynchronous configuration (1023 results in
        // flight against a 100-member population) selects against stale
        // state and ends with lower hypervolume than the efficient one.
        // Meanwhile operator adaptation is active everywhere (entropy
        // drops below uniform).
        let cfg = DynamicsConfig {
            processors: vec![16, 1024],
            evaluations: 12_000,
            ..DynamicsConfig::default()
        };
        let trajs = run_dynamics(&cfg);
        let final_hv = |p: u32| {
            trajs
                .iter()
                .find(|t| t.processors == p)
                .unwrap()
                .points
                .last()
                .unwrap()
                .hypervolume
        };
        assert!(
            final_hv(16) >= final_hv(1024) - 0.03,
            "saturated config should not beat the efficient one: {} vs {}",
            final_hv(16),
            final_hv(1024)
        );
        for t in &trajs {
            let entropy = t.points.last().unwrap().operator_entropy;
            assert!(
                entropy < 0.95,
                "P={}: operator probabilities never adapted (entropy {entropy})",
                t.processors
            );
        }
    }
}
