//! `borg-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! borg-exp <subcommand> [flags]
//!
//! Subcommands:
//!   table2      Table II  (experimental vs analytical vs simulation model)
//!   fig1        Figure 1  (synchronous timeline)
//!   fig2        Figure 2  (asynchronous timeline)
//!   fig3        Figure 3  (hypervolume speedup, DTLZ2)
//!   fig4        Figure 4  (hypervolume speedup, UF11)
//!   fig5        Figure 5  (sync vs async efficiency heatmaps)
//!   bounds      Eqs. 3–4 processor-count bounds
//!   fit         §IV-B distribution-fitting pipeline on this machine
//!   ablations   DESIGN.md §5 ablation studies
//!   faults      fault-injection sweep (failure rate × P, self-healing master)
//!   serve       networked master: listen, register workers, run a budget
//!   worker      networked worker: connect to a master and evaluate
//!   tail        subscribe to a serving master's live metrics tap
//!   trace-merge merge per-process trace shards into one Chrome trace
//!   all         everything above (excluding serve/worker/tail/trace-merge)
//!
//! Flags:
//!   --out DIR         output directory (default ./results)
//!   --nfe N           evaluations per run (overrides defaults)
//!   --replicates R    replicates per configuration
//!   --seed S          root seed
//!   --jobs N          worker threads for replicate sweeps (default: all
//!                     cores; 1 = serial; the fan-out is deterministic —
//!                     see README "Parallel experiment runner")
//!   --smoke           tiny scale (CI)
//!   --full            paper scale (hours)
//!   --trace-out FILE  also run the three-executor trace bundle and write
//!                     Chrome-trace JSON (open in chrome://tracing or
//!                     https://ui.perfetto.dev)
//!   --metrics-out FILE  write per-cell metrics as JSON Lines (table2:
//!                     empirical T_F/T_C/T_A histograms, engine counters,
//!                     master occupancy; serve/worker: net.* counters)
//!
//! Networked flags (serve/worker; see README "Networked deployment"):
//!   --listen ADDR        serve: endpoint (`tcp:HOST:PORT` / `unix:PATH`)
//!   --connect ADDR       worker: master (or chaos proxy) endpoint
//!   --workers N          serve: registrations to wait for (default 2)
//!   --problem NAME       problem announced to workers (default dtlz2-5)
//!   --eval-delay-us N    artificial per-evaluation delay (keeps smoke
//!                        runs killable mid-flight)
//!   --reissue-timeout S  serve: wall-clock reissue deadline in seconds
//!   --chaos              serve: loopback chaos mode — pinned virtual
//!                        timing, seeded fault plan enacted on the wire
//!   --crash-rate F       chaos: per-worker crash probability (default 0.25)
//!   --drop-rate F        chaos: per-result drop probability (default 0.05)
//!   --duplicate-rate F   chaos: per-result duplication probability (0.02)
//!
//! Observability flags (see README "Distributed tracing & flight
//! recorder"):
//!   --live ADDR          serve: stream live MetricsSnapshot deltas to
//!                        subscribers on this endpoint (`borg-exp tail`)
//!   --flight-out FILE    serve/worker: dump the black-box flight
//!                        recorder (deterministic JSONL) when the run
//!                        ends, a worker dies, or the process panics
//!   --trace-shard FILE   serve/worker: write this process's trace-edge
//!                        shard (JSONL) for `borg-exp trace-merge`
//!   --ticks N            tail: tap frames to render before exiting (8)
//!
//! trace-merge usage:
//!   borg-exp trace-merge SHARD... --out FILE   (master shard + one per
//!   worker; writes a merged cross-process Chrome trace with per-eval
//!   t_c_out / t_f / t_c_back decomposition on the master clock)
//! ```

use borg_core::algorithm::BorgConfig;
use borg_core::problem::Problem;
use borg_desim::fault::FaultConfig;
use borg_experiments::ablation::{
    ablation_archive, ablation_contention, ablation_layout, ablation_operators, ablation_restarts,
    ablation_variance, AblationConfig,
};
use borg_experiments::bounds::{paper_bounds, render_bounds};
use borg_experiments::dynamics::{render_dynamics_summary, run_dynamics, DynamicsConfig};
use borg_experiments::faults::{render_faults, run_faults, FaultsConfig};
use borg_experiments::fitdemo::{run_fit_demo, FitDemoConfig};
use borg_experiments::heatmap::{run_figure5, HeatmapConfig};
use borg_experiments::hvspeedup::{render_panel, run_figure, HvSpeedupConfig};
use borg_experiments::islands_exp::{render_islands, run_islands_experiment, IslandsExpConfig};
use borg_experiments::report::write_output;
use borg_experiments::suite::PaperProblem;
use borg_experiments::table2::{render_table2, run_table2_with, Table2Config};
use borg_experiments::timeline::{figure1, figure2, TimelineConfig};
use borg_experiments::tracebundle::{trace_bundle, TraceBundleConfig};
use borg_models::advisor::{recommend_partition, recommend_processor_count};
use borg_models::dist::Dist;
use borg_models::perfsim::TimingModel;
use borg_net::chaos::{run_chaos_loopback, ChaosConfig};
use borg_net::serve::{serve, ServeConfig};
use borg_net::tap::{tap_loop, TapConfig};
use borg_net::worker::{run_worker, WorkerOptions};
use borg_net::{connect_with_backoff, Backoff, Conn, Msg, NetAddr, NetListener};
use borg_obs::export::metrics_jsonl;
use borg_obs::{merge_shards, FlightRecorder, InMemoryRecorder, Recorder, TraceShard, WithFlight};
use borg_parallel::virtual_exec::{TaMode, VirtualConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Cli {
    command: String,
    out: PathBuf,
    nfe: Option<u64>,
    replicates: Option<u32>,
    seed: Option<u64>,
    jobs: usize,
    smoke: bool,
    full: bool,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    listen: Option<String>,
    connect: Option<String>,
    workers: Option<usize>,
    problem: String,
    eval_delay_us: u64,
    reissue_timeout: Option<f64>,
    chaos: bool,
    crash_rate: f64,
    drop_rate: f64,
    duplicate_rate: f64,
    live: Option<String>,
    flight_out: Option<PathBuf>,
    trace_shard: Option<PathBuf>,
    ticks: u64,
    /// Positional arguments after the subcommand (trace-merge shards).
    rest: Vec<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing subcommand; try --help")?;
    let mut cli = Cli {
        command,
        out: PathBuf::from("results"),
        nfe: None,
        replicates: None,
        seed: None,
        jobs: 0,
        smoke: false,
        full: false,
        trace_out: None,
        metrics_out: None,
        listen: None,
        connect: None,
        workers: None,
        problem: "dtlz2-5".to_string(),
        eval_delay_us: 0,
        reissue_timeout: None,
        chaos: false,
        crash_rate: 0.25,
        drop_rate: 0.05,
        duplicate_rate: 0.02,
        live: None,
        flight_out: None,
        trace_shard: None,
        ticks: 8,
        rest: Vec::new(),
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => cli.out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--nfe" => {
                cli.nfe = Some(
                    args.next()
                        .ok_or("--nfe needs a value")?
                        .parse()
                        .map_err(|e| format!("--nfe: {e}"))?,
                )
            }
            "--replicates" => {
                cli.replicates = Some(
                    args.next()
                        .ok_or("--replicates needs a value")?
                        .parse()
                        .map_err(|e| format!("--replicates: {e}"))?,
                )
            }
            "--seed" => {
                cli.seed = Some(
                    args.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--jobs" => {
                cli.jobs = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--smoke" => cli.smoke = true,
            "--full" => cli.full = true,
            "--trace-out" => {
                cli.trace_out = Some(PathBuf::from(
                    args.next().ok_or("--trace-out needs a value")?,
                ))
            }
            "--metrics-out" => {
                cli.metrics_out = Some(PathBuf::from(
                    args.next().ok_or("--metrics-out needs a value")?,
                ))
            }
            "--listen" => cli.listen = Some(args.next().ok_or("--listen needs a value")?),
            "--connect" => cli.connect = Some(args.next().ok_or("--connect needs a value")?),
            "--workers" => {
                cli.workers = Some(
                    args.next()
                        .ok_or("--workers needs a value")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--problem" => cli.problem = args.next().ok_or("--problem needs a value")?,
            "--eval-delay-us" => {
                cli.eval_delay_us = args
                    .next()
                    .ok_or("--eval-delay-us needs a value")?
                    .parse()
                    .map_err(|e| format!("--eval-delay-us: {e}"))?
            }
            "--reissue-timeout" => {
                cli.reissue_timeout = Some(
                    args.next()
                        .ok_or("--reissue-timeout needs a value")?
                        .parse()
                        .map_err(|e| format!("--reissue-timeout: {e}"))?,
                )
            }
            "--chaos" => cli.chaos = true,
            "--crash-rate" => {
                cli.crash_rate = args
                    .next()
                    .ok_or("--crash-rate needs a value")?
                    .parse()
                    .map_err(|e| format!("--crash-rate: {e}"))?
            }
            "--drop-rate" => {
                cli.drop_rate = args
                    .next()
                    .ok_or("--drop-rate needs a value")?
                    .parse()
                    .map_err(|e| format!("--drop-rate: {e}"))?
            }
            "--duplicate-rate" => {
                cli.duplicate_rate = args
                    .next()
                    .ok_or("--duplicate-rate needs a value")?
                    .parse()
                    .map_err(|e| format!("--duplicate-rate: {e}"))?
            }
            "--live" => cli.live = Some(args.next().ok_or("--live needs a value")?),
            "--flight-out" => {
                cli.flight_out = Some(PathBuf::from(
                    args.next().ok_or("--flight-out needs a value")?,
                ))
            }
            "--trace-shard" => {
                cli.trace_shard = Some(PathBuf::from(
                    args.next().ok_or("--trace-shard needs a value")?,
                ))
            }
            "--ticks" => {
                cli.ticks = args
                    .next()
                    .ok_or("--ticks needs a value")?
                    .parse()
                    .map_err(|e| format!("--ticks: {e}"))?
            }
            other if !other.starts_with("--") => cli.rest.push(other.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: borg-exp <table2|fig1|fig2|fig3|fig4|fig5|bounds|fit|ablations|faults|islands|dynamics|advise|serve|worker|tail|trace-merge|all> [--out DIR] [--nfe N] [--replicates R] [--seed S] [--jobs N] [--smoke|--full]");
            std::process::exit(2);
        }
    };
    let commands: Vec<&str> = if cli.command == "all" {
        vec![
            "bounds",
            "fig1",
            "fig2",
            "fig5",
            "table2",
            "fig3",
            "fig4",
            "fit",
            "ablations",
            "faults",
            "islands",
            "dynamics",
            "advise",
        ]
    } else if cli.command == "--help" || cli.command == "help" {
        eprintln!("usage: borg-exp <table2|fig1|fig2|fig3|fig4|fig5|bounds|fit|ablations|faults|islands|dynamics|advise|serve|worker|tail|trace-merge|all> [--out DIR] [--nfe N] [--replicates R] [--seed S] [--jobs N] [--smoke|--full]");
        return;
    } else {
        vec![cli.command.as_str()]
    };
    for cmd in commands {
        println!("==> {cmd}");
        run_command(cmd, &cli);
    }
    if let Some(path) = &cli.trace_out {
        let mut tcfg = TraceBundleConfig::default();
        if cli.smoke {
            tcfg.processors = 4;
            tcfg.evaluations = 80;
        }
        if let Some(s) = cli.seed {
            tcfg.seed = s;
        }
        eprintln!(
            "tracing one seeded run per executor path (P = {}, N = {})...",
            tcfg.processors, tcfg.evaluations
        );
        let bundle = trace_bundle(&tcfg);
        write_file(path, &bundle.json).expect("write trace bundle");
        println!(
            "wrote {} ({} DES + {} virtual + {} threaded spans; open in chrome://tracing or ui.perfetto.dev)",
            path.display(),
            bundle.span_counts[0],
            bundle.span_counts[1],
            bundle.span_counts[2]
        );
    }
}

/// Writes to an explicit path (unlike [`write_output`], which is rooted
/// at `--out`), creating parent directories as needed.
fn write_file(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, content)
}

/// Parses a wire address or exits with usage.
fn parse_addr(s: &str) -> NetAddr {
    NetAddr::parse(s).unwrap_or_else(|e| {
        eprintln!("bad address {s:?}: {e}");
        std::process::exit(2);
    })
}

/// For chaos mode the proxy needs a second, master-facing endpoint
/// derived from the public one.
fn derive_master_addr(public: &NetAddr) -> NetAddr {
    match public {
        NetAddr::Unix(path) => {
            let mut os = path.as_os_str().to_os_string();
            os.push(".master");
            NetAddr::Unix(PathBuf::from(os))
        }
        NetAddr::Tcp(_) => NetAddr::Tcp("127.0.0.1:0".to_string()),
    }
}

/// Maps a wire problem name to an instance (the `Welcome` vocabulary).
fn resolve_problem(name: &str) -> Option<Box<dyn Problem>> {
    match name {
        "dtlz2-5" => Some(Box::new(borg_problems::dtlz::Dtlz::dtlz2_5())),
        "dtlz2-2" => Some(Box::new(borg_problems::dtlz::Dtlz::new(
            borg_problems::dtlz::DtlzVariant::Dtlz2,
            2,
        ))),
        _ => None,
    }
}

/// Dumps the recorder's `net.*` metrics as JSON Lines if requested.
fn write_net_metrics(cli: &Cli, rec: &InMemoryRecorder, role: &str) {
    if let Some(path) = &cli.metrics_out {
        let labels = [("experiment", role.to_string())];
        let jsonl = metrics_jsonl(&labels, &rec.snapshot());
        write_file(path, &jsonl).expect("write metrics jsonl");
        println!("wrote {}", path.display());
    }
}

/// Runs `body` with an optional live metrics tap alongside: when
/// `--live ADDR` was given, the tap listens there and streams
/// stable-schema `MetricsSnapshot` deltas to any `borg-exp tail`
/// subscriber for the duration of the run.
fn with_optional_tap<T>(live: Option<&str>, rec: &InMemoryRecorder, body: impl FnOnce() -> T) -> T {
    let Some(addr) = live else { return body() };
    let addr = parse_addr(addr);
    let listener = NetListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("cannot bind live tap {addr}: {e}");
        std::process::exit(1);
    });
    println!("live metrics tap on {addr} (subscribe with: borg-exp tail --connect ...)");
    let tap = TapConfig::new(addr.clone());
    let stop = AtomicBool::new(false);
    let out = std::thread::scope(|scope| {
        let handle = scope.spawn(|| tap_loop(&listener, &tap, &|| rec.snapshot(), &stop, rec));
        let out = body();
        stop.store(true, Ordering::SeqCst);
        let _ = handle.join();
        out
    });
    if let NetAddr::Unix(path) = &addr {
        let _ = std::fs::remove_file(path);
    }
    out
}

/// Installs a panic hook that dumps the flight recorder before the
/// default hook runs, so a crashing master/worker still leaves its black
/// box behind.
fn install_panic_dump(ring: &Arc<FlightRecorder>, path: &Path) {
    let ring = Arc::clone(ring);
    let path = path.to_path_buf();
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = write_file(&path, &ring.dump_jsonl("panic"));
        default(info);
    }));
}

/// End-of-run observability drain: dumps the flight recorder (trigger
/// `worker_death` when the ring saw one, else `shutdown`) and writes
/// this process's trace-edge shard for `borg-exp trace-merge`.
fn finish_observability(
    cli: &Cli,
    rec: &InMemoryRecorder,
    ring: &FlightRecorder,
    process: &str,
    worker: Option<u64>,
) {
    rec.counter(borg_net::metrics::FLIGHT_EVENTS, ring.recorded());
    if let Some(path) = &cli.flight_out {
        let trigger = if ring.events().iter().any(|e| e.code == "net.worker_death") {
            "worker_death"
        } else {
            "shutdown"
        };
        rec.counter(borg_net::metrics::FLIGHT_DUMPS, 1);
        write_file(path, &ring.dump_jsonl(trigger)).expect("write flight dump");
        println!("wrote {} (trigger: {trigger})", path.display());
    }
    if let Some(path) = &cli.trace_shard {
        let shard = TraceShard::new(process, worker, rec.take_trace_edges());
        write_file(path, &shard.to_jsonl()).expect("write trace shard");
        println!("wrote {}", path.display());
    }
}

fn run_command(cmd: &str, cli: &Cli) {
    match cmd {
        "table2" => {
            let mut cfg = Table2Config::default();
            if cli.smoke {
                cfg = cfg.smoke();
            }
            if cli.full {
                cfg = cfg.paper_scale();
            }
            if let Some(n) = cli.nfe {
                cfg.evaluations = n;
            }
            if let Some(r) = cli.replicates {
                cfg.replicates = r;
            }
            if let Some(s) = cli.seed {
                cfg.seed = s;
            }
            cfg.jobs = cli.jobs;
            let total = cfg.problems.len() * cfg.tf_means.len() * cfg.processors.len();
            let mut done = 0usize;
            let mut metrics = String::new();
            let rows = run_table2_with(&cfg, |row, snap| {
                done += 1;
                eprintln!(
                    "  [{done}/{total}] {} P={} T_F={}s: time {:.2}s, util {:.2}, T_A p50 {:.1}us",
                    row.problem,
                    row.processors,
                    row.t_f,
                    row.experimental_time,
                    row.master_utilization,
                    snap.histograms
                        .get("t_a_seconds")
                        .map_or(f64::NAN, |h| h.quantile(0.5) * 1e6)
                );
                if cli.metrics_out.is_some() {
                    let labels = [
                        ("experiment", "table2".to_string()),
                        ("problem", row.problem.to_string()),
                        ("P", row.processors.to_string()),
                        ("t_f", format!("{}", row.t_f)),
                    ];
                    metrics.push_str(&metrics_jsonl(&labels, snap));
                }
            });
            let table = render_table2(&rows);
            println!("{}", table.render());
            write_output(&cli.out, "table2.csv", &table.to_csv()).expect("write table2.csv");
            println!("wrote {}", cli.out.join("table2.csv").display());
            if let Some(path) = &cli.metrics_out {
                write_file(path, &metrics).expect("write metrics jsonl");
                println!("wrote {}", path.display());
            }
        }
        "fig1" | "fig2" => {
            let cfg = TimelineConfig::default();
            let t = if cmd == "fig1" {
                figure1(&cfg)
            } else {
                figure2(&cfg)
            };
            println!("{}", t.ascii);
            println!(
                "elapsed {:.4}s, master utilization {:.2}",
                t.elapsed, t.master_utilization
            );
            write_output(&cli.out, &format!("{cmd}_timeline.csv"), &t.csv).expect("write timeline");
            write_output(&cli.out, &format!("{cmd}_timeline.txt"), &t.ascii)
                .expect("write timeline");
        }
        "fig3" | "fig4" => {
            let problem = if cmd == "fig3" {
                PaperProblem::Dtlz2
            } else {
                PaperProblem::Uf11
            };
            let mut cfg = HvSpeedupConfig::new(problem);
            if cli.smoke {
                cfg = cfg.smoke();
            }
            if cli.full {
                cfg.evaluations = 100_000;
                cfg.replicates = 50;
            }
            if let Some(n) = cli.nfe {
                cfg.evaluations = n;
            }
            if let Some(r) = cli.replicates {
                cfg.replicates = r;
            }
            if let Some(s) = cli.seed {
                cfg.seed = s;
            }
            cfg.jobs = cli.jobs;
            for panel in run_figure(&cfg) {
                let table = render_panel(&panel);
                println!(
                    "{} speedup to hypervolume threshold, T_F = {}s",
                    panel.problem, panel.t_f
                );
                println!("{}", table.render());
                let name = format!("{cmd}_{}_tf{}.csv", panel.problem.to_lowercase(), panel.t_f);
                write_output(&cli.out, &name, &table.to_csv()).expect("write panel");
            }
        }
        "fig5" => {
            let mut cfg = HeatmapConfig::default();
            if cli.smoke {
                cfg = cfg.smoke();
            }
            if let Some(s) = cli.seed {
                cfg.seed = s;
            }
            cfg.jobs = cli.jobs;
            let surfaces = run_figure5(&cfg);
            let sync_art =
                surfaces.to_ascii(&surfaces.sync, "Figure 5a: synchronous efficiency (Eq. 6)");
            let async_art = surfaces.to_ascii(
                &surfaces.async_,
                "Figure 5b: asynchronous efficiency (simulation model)",
            );
            println!("{sync_art}\n{async_art}");
            write_output(&cli.out, "fig5_sync.csv", &surfaces.to_csv(&surfaces.sync)).unwrap();
            write_output(
                &cli.out,
                "fig5_async.csv",
                &surfaces.to_csv(&surfaces.async_),
            )
            .unwrap();
            write_output(&cli.out, "fig5.txt", &format!("{sync_art}\n{async_art}")).unwrap();
            // Also emit the Table II parameter ordering (see DESIGN.md §4).
            let mut alt_cfg = HeatmapConfig::default().table2_params();
            alt_cfg.jobs = cli.jobs;
            let alt = run_figure5(&alt_cfg);
            write_output(
                &cli.out,
                "fig5_sync_table2params.csv",
                &alt.to_csv(&alt.sync),
            )
            .unwrap();
            write_output(
                &cli.out,
                "fig5_async_table2params.csv",
                &alt.to_csv(&alt.async_),
            )
            .unwrap();
        }
        "bounds" => {
            let table = render_bounds(&paper_bounds());
            println!("{}", table.render());
            write_output(&cli.out, "bounds.csv", &table.to_csv()).unwrap();
        }
        "fit" => {
            let mut cfg = FitDemoConfig::default();
            if let Some(n) = cli.nfe {
                cfg.evaluations = n;
            }
            if let Some(s) = cli.seed {
                cfg.seed = s;
            }
            let demo = run_fit_demo(&cfg).expect("fit demo run");
            println!(
                "measured on this machine: T_A mean {:.2}us (cv {:.2}), T_F mean {:.3}ms (cv {:.2}), T_C ~ {:.2}us",
                demo.ta_stats.mean * 1e6,
                demo.ta_stats.cv(),
                demo.tf_stats.mean * 1e3,
                demo.tf_stats.cv(),
                demo.t_c * 1e6
            );
            println!("\nT_A distribution ranking (log-likelihood, best first):");
            println!("{}", demo.ta_table.render());
            println!("T_F distribution ranking:");
            println!("{}", demo.tf_table.render());
            write_output(&cli.out, "fit_ta.csv", &demo.ta_table.to_csv()).unwrap();
            write_output(&cli.out, "fit_tf.csv", &demo.tf_table.to_csv()).unwrap();
        }
        "ablations" => {
            let mut cfg = AblationConfig::default();
            if cli.smoke {
                cfg = cfg.smoke();
            }
            if let Some(n) = cli.nfe {
                cfg.evaluations = n;
            }
            if let Some(r) = cli.replicates {
                cfg.replicates = r;
            }
            if let Some(s) = cli.seed {
                cfg.seed = s;
            }
            cfg.jobs = cli.jobs;
            let runs: Vec<(&str, borg_experiments::report::TextTable)> = vec![
                ("ablation_archive", ablation_archive(&cfg)),
                (
                    "ablation_baseline",
                    borg_experiments::ablation::ablation_baseline(&cfg),
                ),
                ("ablation_layout", ablation_layout(&cfg)),
                ("ablation_operators", ablation_operators(&cfg)),
                ("ablation_restarts", ablation_restarts(&cfg)),
                ("ablation_contention", ablation_contention(&cfg)),
                ("ablation_variance", ablation_variance(&cfg)),
                (
                    "ablation_ta_breakdown",
                    borg_experiments::ablation::ablation_ta_breakdown(&cfg),
                ),
            ];
            for (name, table) in runs {
                println!("{name}:");
                println!("{}", table.render());
                write_output(&cli.out, &format!("{name}.csv"), &table.to_csv()).unwrap();
            }
        }
        "faults" => {
            let mut cfg = FaultsConfig::default();
            if cli.smoke {
                cfg = cfg.smoke();
            }
            if let Some(n) = cli.nfe {
                cfg.evaluations = n;
            }
            if let Some(r) = cli.replicates {
                cfg.replicates = r;
            }
            if let Some(s) = cli.seed {
                cfg.seed = s;
            }
            cfg.jobs = cli.jobs;
            let rows = run_faults(&cfg);
            let table = render_faults(&rows);
            println!(
                "fault-injection sweep on {} (T_F = {}s, N = {}; f = crash rate + 1% msg loss):",
                cfg.problem.name(),
                cfg.tf_mean,
                cfg.evaluations
            );
            println!("{}", table.render());
            write_output(&cli.out, "faults.csv", &table.to_csv()).expect("write faults.csv");
            println!("wrote {}", cli.out.join("faults.csv").display());
        }
        "advise" => {
            // §VI/§VII: use the simulation model to size the topology.
            use borg_experiments::report::TextTable;
            let budget = 1024u32;
            let nfe = cli.nfe.unwrap_or(50_000);
            let mut table = TextTable::new(vec![
                "T_F (s)",
                "best single-master P",
                "its efficiency",
                "best islands",
                "procs/island",
                "island efficiency",
            ]);
            for tf in [0.001, 0.01, 0.1] {
                let timing = TimingModel::controlled_delay(tf, 0.1, 0.000_006, 0.000_030);
                let single =
                    recommend_processor_count(timing, budget, nfe, 0.0, cli.seed.unwrap_or(9));
                let part = recommend_partition(timing, budget, nfe, cli.seed.unwrap_or(9));
                table.row(vec![
                    format!("{tf}"),
                    single.processors.to_string(),
                    format!("{:.2}", single.efficiency),
                    part.islands.to_string(),
                    part.processors_per_island.to_string(),
                    format!("{:.2}", part.efficiency),
                ]);
            }
            println!("topology advice for a {budget}-processor budget (T_A = 30us, T_C = 6us, N = {nfe}):");
            println!("{}", table.render());
            write_output(&cli.out, "advise.csv", &table.to_csv()).unwrap();
        }
        "dynamics" => {
            let mut cfg = DynamicsConfig::default();
            if cli.smoke {
                cfg = cfg.smoke();
            }
            if let Some(n) = cli.nfe {
                cfg.evaluations = n;
            }
            if let Some(s) = cli.seed {
                cfg.seed = s;
            }
            cfg.jobs = cli.jobs;
            let trajs = run_dynamics(&cfg);
            println!(
                "algorithm dynamics on {} (T_F = {}s, N = {}):",
                cfg.problem.name(),
                cfg.t_f,
                cfg.evaluations
            );
            let table = render_dynamics_summary(&trajs);
            println!("{}", table.render());
            write_output(&cli.out, "dynamics_summary.csv", &table.to_csv()).unwrap();
            for t in &trajs {
                write_output(
                    &cli.out,
                    &format!("dynamics_p{}.csv", t.processors),
                    &t.to_csv(),
                )
                .unwrap();
            }
        }
        "islands" => {
            let mut cfg = IslandsExpConfig::default();
            if cli.smoke {
                cfg = cfg.smoke();
            }
            if let Some(n) = cli.nfe {
                cfg.evaluations = n;
            }
            if let Some(s) = cli.seed {
                cfg.seed = s;
            }
            let rows = run_islands_experiment(&cfg);
            let table = render_islands(&rows);
            println!(
                "island topology on {} ({} total processors, T_F = {}s):",
                cfg.problem.name(),
                cfg.total_processors,
                cfg.t_f
            );
            println!("{}", table.render());
            write_output(&cli.out, "islands.csv", &table.to_csv()).unwrap();
        }
        "serve" => {
            let listen = match &cli.listen {
                Some(a) => parse_addr(a),
                None => {
                    eprintln!("serve needs --listen (tcp:HOST:PORT or unix:PATH)");
                    std::process::exit(2);
                }
            };
            let workers = cli.workers.unwrap_or(2);
            let nfe = cli.nfe.unwrap_or(500);
            let seed = cli.seed.unwrap_or(42);
            let problem = resolve_problem(&cli.problem).unwrap_or_else(|| {
                eprintln!("unknown problem {:?} (try dtlz2-5)", cli.problem);
                std::process::exit(2);
            });
            let borg = BorgConfig::new(problem.num_objectives(), 0.06);
            let rec = InMemoryRecorder::metrics_only();
            let ring = Arc::new(FlightRecorder::new(4096));
            if let Some(path) = &cli.flight_out {
                install_panic_dump(&ring, path);
            }
            let frec = WithFlight::new(&rec, &ring);
            if cli.chaos {
                // Pinned-timing chaos mode: the DES fault oracle drives a
                // real master whose faults the proxy enacts on the wire.
                let config = VirtualConfig {
                    processors: workers as u32 + 1,
                    max_nfe: nfe,
                    t_f: Dist::normal_cv(0.001, 0.1),
                    t_c: Dist::Constant(0.000_006),
                    t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
                    seed,
                };
                let faults = FaultConfig {
                    crash_rate: cli.crash_rate,
                    drop_rate: cli.drop_rate,
                    duplicate_rate: cli.duplicate_rate,
                    ..FaultConfig::default()
                };
                let chaos = ChaosConfig {
                    master_listen: derive_master_addr(&listen),
                    listen,
                    in_process_workers: 0,
                    read_timeout: Duration::from_millis(25),
                    result_wait: Duration::from_secs(30),
                    reset_on_crash: true,
                };
                let result = with_optional_tap(cli.live.as_deref(), &rec, || {
                    run_chaos_loopback(
                        &*problem,
                        borg,
                        &config,
                        &faults,
                        &chaos,
                        &cli.problem,
                        &resolve_problem,
                        &frec,
                    )
                })
                .unwrap_or_else(|e| {
                    eprintln!("chaos serve failed: {e}");
                    std::process::exit(1);
                });
                println!(
                    "serve summary: mode=chaos nfe={} archive={} elapsed={:.6} \
                     deaths_detected={} reissues={} wasted_nfe={} wire_results={} \
                     wire_duplicates={} wire_faults={} worker_reconnects={}",
                    result.engine.nfe(),
                    result.engine.archive().solutions().len(),
                    result.outcome.elapsed,
                    result.fault_log.detected(),
                    result.fault_log.reissues,
                    result.fault_log.wasted_nfe,
                    result.wire_results,
                    result.wire_duplicates,
                    result.wire_log.injected(),
                    result.worker_reconnects,
                );
                finish_observability(cli, &rec, &ring, "master", None);
                write_net_metrics(cli, &rec, "serve-chaos");
                if let Some(err) = &result.degraded {
                    eprintln!("run degraded to local evaluation: {err}");
                    std::process::exit(1);
                }
            } else {
                let mut scfg = ServeConfig::new(listen, workers, nfe, seed);
                scfg.problem_name = cli.problem.clone();
                scfg.eval_delay = Duration::from_micros(cli.eval_delay_us);
                scfg.reissue_timeout = cli.reissue_timeout;
                let report = with_optional_tap(cli.live.as_deref(), &rec, || {
                    serve(&*problem, borg, &scfg, &frec)
                })
                .unwrap_or_else(|e| {
                    eprintln!("serve failed: {e}");
                    std::process::exit(1);
                });
                println!(
                    "serve summary: mode=real nfe={} archive={} elapsed={:.3} \
                     deaths_detected={} reissues={} wire_results={} wire_duplicates={} \
                     wire_heartbeats={}",
                    report.engine.nfe(),
                    report.engine.archive().solutions().len(),
                    report.elapsed,
                    report.fault_log.injected(),
                    report.fault_log.reissues,
                    report.wire_results,
                    report.wire_duplicates,
                    report.wire_heartbeats,
                );
                finish_observability(cli, &rec, &ring, "master", None);
                write_net_metrics(cli, &rec, "serve");
            }
        }
        "worker" => {
            let connect = match &cli.connect {
                Some(a) => parse_addr(a),
                None => {
                    eprintln!("worker needs --connect (tcp:HOST:PORT or unix:PATH)");
                    std::process::exit(2);
                }
            };
            let opts = WorkerOptions {
                connect,
                ..WorkerOptions::default()
            };
            let rec = InMemoryRecorder::metrics_only();
            let ring = Arc::new(FlightRecorder::new(4096));
            if let Some(path) = &cli.flight_out {
                install_panic_dump(&ring, path);
            }
            let frec = WithFlight::new(&rec, &ring);
            let report = run_worker(&opts, &resolve_problem, &frec).unwrap_or_else(|e| {
                eprintln!("worker failed: {e}");
                std::process::exit(1);
            });
            println!(
                "worker summary: worker={} evaluated={} reconnects={} heartbeats={}",
                report.worker, report.evaluated, report.reconnects, report.heartbeats_sent,
            );
            finish_observability(
                cli,
                &rec,
                &ring,
                &format!("worker{}", report.worker),
                Some(report.worker),
            );
            write_net_metrics(cli, &rec, "worker");
        }
        "tail" => {
            let connect = match &cli.connect {
                Some(a) => parse_addr(a),
                None => {
                    eprintln!("tail needs --connect (the master's --live endpoint)");
                    std::process::exit(2);
                }
            };
            let mut backoff = Backoff::default_schedule();
            let stream = connect_with_backoff(&connect, &mut backoff, Duration::from_millis(100))
                .unwrap_or_else(|e| {
                    eprintln!("cannot reach live tap {connect}: {e}");
                    std::process::exit(1);
                });
            let mut conn = Conn::new(stream);
            println!(
                "{:>6} {:>9} {:>8} {:>8} {:>8} {:>9} {:>8}",
                "tick", "t(s)", "results", "reissue", "outst", "frames/s", "util"
            );
            let mut shown = 0u64;
            let mut prev_at: Option<f64> = None;
            while shown < cli.ticks {
                match conn.recv() {
                    Ok(Some(Msg::Tap { seq, at, jsonl })) => {
                        let results = tap_value(&jsonl, "counter", "net.results").unwrap_or(0.0);
                        let reissues =
                            tap_value(&jsonl, "counter", "engine.reissues").unwrap_or(0.0);
                        let frames = tap_value(&jsonl, "counter", "net.frames_sent").unwrap_or(0.0)
                            + tap_value(&jsonl, "counter", "net.frames_received").unwrap_or(0.0);
                        let outstanding =
                            tap_value(&jsonl, "gauge", "engine.outstanding").unwrap_or(0.0);
                        let idle = tap_value(&jsonl, "gauge", "engine.idle_workers").unwrap_or(0.0);
                        let dt = prev_at.map_or(0.0, |p| at - p);
                        prev_at = Some(at);
                        let fps = if dt > 0.0 { frames / dt } else { 0.0 };
                        // Busy-worker estimate: in-flight work over the
                        // pool the master believes is available.
                        let pool = outstanding + idle;
                        let util = if pool > 0.0 { outstanding / pool } else { 0.0 };
                        println!(
                            "{seq:>6} {at:>9.2} {results:>8} {reissues:>8} {outstanding:>8} {fps:>9.1} {util:>8.2}"
                        );
                        shown += 1;
                    }
                    Ok(Some(_)) => {}
                    // A read timeout between tap ticks; keep waiting.
                    Ok(None) => {}
                    Err(_) => {
                        eprintln!("tap closed after {shown} frames");
                        break;
                    }
                }
            }
        }
        "trace-merge" => {
            if cli.rest.is_empty() {
                eprintln!(
                    "trace-merge needs shard paths: borg-exp trace-merge SHARD... --out FILE"
                );
                std::process::exit(2);
            }
            let shards: Vec<TraceShard> = cli
                .rest
                .iter()
                .map(|p| {
                    let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
                        eprintln!("cannot read shard {p}: {e}");
                        std::process::exit(1);
                    });
                    TraceShard::from_jsonl(&text).unwrap_or_else(|e| {
                        eprintln!("bad shard {p}: {e}");
                        std::process::exit(1);
                    })
                })
                .collect();
            let merged = merge_shards(&shards).unwrap_or_else(|e| {
                eprintln!("merge failed: {e}");
                std::process::exit(1);
            });
            let out = if cli.out.extension().is_some_and(|e| e == "json") {
                cli.out.clone()
            } else {
                cli.out.join("trace_merged.json")
            };
            write_file(&out, &merged.chrome_json()).expect("write merged trace");
            println!(
                "merged {} shards: {} eval chains ({} incomplete)",
                shards.len(),
                merged.chains.len(),
                merged.incomplete,
            );
            for (w, off) in &merged.offsets {
                let samples = merged.clock_samples.get(w).copied().unwrap_or(0);
                println!(
                    "  worker {w}: clock offset {off:+.6}s vs master ({samples} probe samples)"
                );
            }
            println!(
                "wrote {} (open in chrome://tracing or ui.perfetto.dev)",
                out.display()
            );
        }
        other => {
            eprintln!("unknown subcommand {other}");
            std::process::exit(2);
        }
    }
}

/// Extracts the `value` of a named metric from one stable-schema tap
/// JSONL payload (hand-rolled scan; the workspace has no serde).
fn tap_value(jsonl: &str, kind: &str, name: &str) -> Option<f64> {
    let needle = format!("{{\"type\":\"{kind}\",\"name\":\"{name}\",");
    let line = jsonl.lines().find(|l| l.starts_with(&needle))?;
    let idx = line.rfind("\"value\":")?;
    let tail = &line[idx + 8..];
    let end = tail.find(['}', ','])?;
    tail[..end].trim().parse().ok()
}
