//! Bridge between the experiment drivers and [`borg_runner::map_jobs`].
//!
//! Every replicate sweep in this crate fans out through [`run_jobs`], which
//! keeps the workspace's determinism contract (index-ordered results,
//! pre-derived seeds — see the `borg-runner` crate docs) and re-raises a
//! job panic on the calling thread, matching what the old serial nested
//! loops did when a replicate panicked.
//!
//! Direct `std::thread::spawn` is forbidden in this crate (lint BORG-L009):
//! ad-hoc threads have no index-ordered collection story, so results would
//! depend on scheduling. All parallelism goes through here.

/// Runs `job` over `items` on `workers` threads (`0` = auto, `1` = serial)
/// and returns the results in item order.
///
/// # Panics
/// If a job panics: the pool finishes the surviving jobs, then the panic of
/// the lowest-indexed failing job is re-raised here — the same observable
/// behaviour as the serial loops these sweeps replaced.
pub(crate) fn run_jobs<T, R, F>(workers: usize, items: Vec<T>, job: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    match borg_runner::map_jobs(workers, items, job) {
        Ok(results) => results,
        Err(err) => panic!("{err}"),
    }
}
