//! The fault-injection experiment: completion and efficiency under worker
//! failures, swept over failure rate `f` × processor count `P`.
//!
//! The paper's scalability analysis (and its TACC Ranger deployment)
//! assumes a reliable pool; this experiment extends the reproduction to
//! the regime HPC schedulers actually deliver. Each cell runs the real
//! Borg MOEA in the virtual-time executor with the fault plan derived from
//! [`FaultConfig::degraded`] (crash rate `f`, 1% message loss) and the
//! self-healing master recovering via deadline reissue. Predictions come
//! from the degraded analytical model `P_eff = P · (1 − f)`
//! ([`async_parallel_time_degraded`]).
//!
//! The `f = 0` arm reuses [`crate::table2::replicate_seeds`] and the plain
//! executor, so it re-runs the corresponding Table II experimental cells
//! (identical seeds and schedule; elapsed differs only by measured-`T_A`
//! machine noise) — tying the two experiments together and guarding the
//! fault path against drift in the fault-free baseline.

use crate::report::TextTable;
use crate::suite::PaperProblem;
use crate::table2::replicate_seeds;
use borg_desim::fault::FaultConfig;
use borg_models::analytical::{
    async_parallel_time_degraded, relative_error, serial_time, TimingParams,
};
use borg_models::dist::Dist;
use borg_obs::NoopRecorder;
use borg_parallel::virtual_exec::{
    run_virtual_async, run_virtual_async_faulty, TaMode, VirtualConfig,
};

/// Configuration of the failure-rate × processor-count sweep.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    /// Function evaluations per run.
    pub evaluations: u64,
    /// Replicates per cell.
    pub replicates: u32,
    /// Processor counts (a subset of Table II's, so `f = 0` rows line up).
    pub processors: Vec<u32>,
    /// Failure rates `f` (fraction of workers lost over a run); `0.0`
    /// routes through the plain executor as the Table II baseline.
    pub failure_rates: Vec<f64>,
    /// Mean injected evaluation time (one of Table II's `T_F` settings).
    pub tf_mean: f64,
    /// Workload.
    pub problem: PaperProblem,
    /// Base archive ε.
    pub epsilon: f64,
    /// Root seed (shared with Table II so the baselines coincide).
    pub seed: u64,
    /// Worker threads for the replicate sweep (`0` auto, `1` serial). The
    /// fan-out adds no nondeterminism: with `sampled_ta` pinned, every
    /// value produces byte-identical rows and fault ledgers (see
    /// `borg-runner`); measured `T_A` varies with host timing regardless.
    pub jobs: usize,
    /// `Some(v)`: sampled constant `T_A` of `v` seconds instead of
    /// measured `T_A` (used by the determinism gate); `None`: measure.
    pub sampled_ta: Option<f64>,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        Self {
            evaluations: 20_000,
            replicates: 3,
            processors: vec![16, 64, 256],
            failure_rates: vec![0.0, 0.05, 0.1, 0.25],
            tf_mean: 0.01,
            problem: PaperProblem::Dtlz2,
            epsilon: 0.1,
            seed: 20130520,
            jobs: 0,
            sampled_ta: None,
        }
    }
}

impl FaultsConfig {
    /// Smoke-test settings for CI.
    pub fn smoke(mut self) -> Self {
        self.evaluations = 2_000;
        self.replicates = 1;
        self.processors = vec![8, 64];
        self.failure_rates = vec![0.0, 0.1];
        self.tf_mean = 0.001;
        self
    }
}

/// One cell of the sweep (means over replicates).
#[derive(Debug, Clone)]
pub struct FaultsRow {
    /// Workload name.
    pub problem: &'static str,
    /// Provisioned processor count `P`.
    pub processors: u32,
    /// Failure rate `f`.
    pub failure_rate: f64,
    /// Evaluations completed (must equal the budget: recovery guarantee).
    pub completed_nfe: u64,
    /// Mean experimental elapsed time (virtual seconds).
    pub experimental_time: f64,
    /// Speedup over the serial baseline implied by measured `T_A` (Eq. 1).
    pub speedup: f64,
    /// Efficiency against the *provisioned* `P` — failures cost efficiency
    /// even when recovery preserves completion.
    pub efficiency: f64,
    /// Degraded analytical prediction (`P_eff = P · (1 − f)`).
    pub degraded_time: f64,
    /// Relative error of the degraded model (Eq. 5).
    pub degraded_error: f64,
    /// Faults injected per replicate (mean).
    pub injected: f64,
    /// Faults detected per replicate (mean).
    pub detected: f64,
    /// Faults recovered per replicate (mean).
    pub recovered: f64,
    /// Reissued evaluations per replicate (mean).
    pub reissues: f64,
    /// Evaluations whose results were lost or duplicated (mean).
    pub wasted_nfe: f64,
}

/// `T_C` injected into every run (seconds), matching Table II's.
const T_C: f64 = 0.000_006;

/// What one replicate run hands back to the per-cell fold.
struct ReplicateOutcome {
    elapsed: f64,
    ta_sum: f64,
    ta_count: usize,
    completed: u64,
    injected: usize,
    detected: usize,
    recovered: usize,
    reissues: u64,
    wasted: u64,
}

/// Runs the sweep: replicate seeds are pre-derived in (cell, replicate)
/// order, the replicates fan out over `config.jobs` workers, and each
/// cell folds its outcomes in replicate order — so the rows (and the
/// fault ledgers they summarise) are bit-identical for every `jobs`
/// setting.
pub fn run_faults(config: &FaultsConfig) -> Vec<FaultsRow> {
    let mut cells = Vec::new();
    for &f in &config.failure_rates {
        for &p in &config.processors {
            cells.push((f, p));
        }
    }
    let mut jobs = Vec::new();
    for (index, &(_, p)) in cells.iter().enumerate() {
        for seed in replicate_seeds(
            config.seed,
            config.problem,
            config.tf_mean,
            p,
            config.replicates,
        ) {
            jobs.push((index, seed));
        }
    }
    let outcomes = crate::par::run_jobs(config.jobs, jobs, |_, (cell, seed)| {
        let (f, p) = cells[cell];
        run_replicate(config, f, p, seed)
    });
    let replicates = config.replicates as usize;
    cells
        .iter()
        .enumerate()
        .map(|(index, &(f, p))| {
            let mine = &outcomes[index * replicates..(index + 1) * replicates];
            finalize_cell(config, f, p, mine)
        })
        .collect()
}

/// Runs one replicate (workload built fresh; jobs share nothing).
fn run_replicate(config: &FaultsConfig, f: f64, p: u32, seed: u64) -> ReplicateOutcome {
    let problem = config.problem.build();
    let borg = config.problem.borg_config(config.epsilon);
    // f = 0 means a clean pool — not even the background message loss
    // `degraded` adds — so the baseline is exactly the Table II arm.
    let faults = if f == 0.0 {
        FaultConfig::default()
    } else {
        FaultConfig::degraded(f)
    };
    let vcfg = VirtualConfig {
        processors: p,
        max_nfe: config.evaluations,
        t_f: Dist::normal_cv(config.tf_mean, 0.1),
        t_c: Dist::Constant(T_C),
        t_a: match config.sampled_ta {
            Some(v) => TaMode::Sampled(Dist::Constant(v)),
            None => TaMode::Measured,
        },
        seed,
    };
    // f = 0 routes through the plain executor: identical to the
    // Table II experimental arm, and proof the fault machinery adds
    // nothing when quiet.
    let result = if faults.is_quiet() {
        run_virtual_async(problem.as_ref(), borg, &vcfg, &NoopRecorder, |_, _| {})
    } else {
        run_virtual_async_faulty(
            problem.as_ref(),
            borg,
            &vcfg,
            &faults,
            &NoopRecorder,
            |_, _| {},
        )
    };
    ReplicateOutcome {
        elapsed: result.outcome.elapsed,
        ta_sum: result.ta_samples.iter().sum::<f64>(),
        ta_count: result.ta_samples.len(),
        completed: result.engine.nfe(),
        injected: result.fault_log.injected(),
        detected: result.fault_log.detected(),
        recovered: result.fault_log.recovered(),
        reissues: result.fault_log.reissues,
        wasted: result.fault_log.wasted_nfe,
    }
}

/// Folds one cell's replicate outcomes (in replicate order) into its row.
fn finalize_cell(
    config: &FaultsConfig,
    f: f64,
    p: u32,
    outcomes: &[ReplicateOutcome],
) -> FaultsRow {
    let t_c = T_C;
    let mut elapsed_sum = 0.0;
    let mut ta_sum = 0.0;
    let mut ta_count = 0usize;
    let mut completed = 0u64;
    let mut injected = 0usize;
    let mut detected = 0usize;
    let mut recovered = 0usize;
    let mut reissues = 0u64;
    let mut wasted = 0u64;
    for outcome in outcomes {
        elapsed_sum += outcome.elapsed;
        ta_sum += outcome.ta_sum;
        ta_count += outcome.ta_count;
        completed = completed.max(outcome.completed);
        injected += outcome.injected;
        detected += outcome.detected;
        recovered += outcome.recovered;
        reissues += outcome.reissues;
        wasted += outcome.wasted;
    }

    let reps = config.replicates as f64;
    let experimental_time = elapsed_sum / reps;
    let mean_ta = if ta_count > 0 {
        ta_sum / ta_count as f64
    } else {
        0.0
    };
    let timing = TimingParams::new(config.tf_mean, t_c, mean_ta);
    let t_s = serial_time(config.evaluations, timing);
    let degraded_time = async_parallel_time_degraded(config.evaluations, p, timing, f);

    FaultsRow {
        problem: config.problem.name(),
        processors: p,
        failure_rate: f,
        completed_nfe: completed,
        experimental_time,
        speedup: t_s / experimental_time,
        efficiency: t_s / (p as f64 * experimental_time),
        degraded_time,
        degraded_error: relative_error(experimental_time, degraded_time),
        injected: injected as f64 / reps,
        detected: detected as f64 / reps,
        recovered: recovered as f64 / reps,
        reissues: reissues as f64 / reps,
        wasted_nfe: wasted as f64 / reps,
    }
}

/// Renders the sweep as a text table.
pub fn render_faults(rows: &[FaultsRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "problem", "P", "f", "nfe", "time", "speedup", "eff", "degraded", "err", "inj", "det",
        "rec", "reissue", "wasted",
    ]);
    for r in rows {
        t.row(vec![
            r.problem.to_string(),
            r.processors.to_string(),
            format!("{:.2}", r.failure_rate),
            r.completed_nfe.to_string(),
            format!("{:.2}", r.experimental_time),
            format!("{:.2}", r.speedup),
            format!("{:.2}", r.efficiency),
            format!("{:.2}", r.degraded_time),
            format!("{:.0}%", r.degraded_error * 100.0),
            format!("{:.1}", r.injected),
            format!("{:.1}", r.detected),
            format!("{:.1}", r.recovered),
            format!("{:.1}", r.reissues),
            format!("{:.1}", r.wasted_nfe),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::{run_table2, Table2Config};

    #[test]
    fn smoke_sweep_completes_budget_in_every_cell() {
        let cfg = FaultsConfig::default().smoke();
        let rows = run_faults(&cfg);
        assert_eq!(rows.len(), 4); // 2 f × 2 P
        for r in &rows {
            assert_eq!(
                r.completed_nfe, cfg.evaluations,
                "P={} f={} did not complete the budget",
                r.processors, r.failure_rate
            );
            assert!(r.experimental_time > 0.0);
            assert!(r.efficiency > 0.0 && r.efficiency <= 1.05);
            if r.failure_rate == 0.0 {
                assert_eq!(r.injected, 0.0);
                assert_eq!(r.reissues, 0.0);
            } else {
                assert!(r.injected > 0.0, "faulty cell injected nothing");
                assert!(
                    (r.recovered - r.detected).abs() < 1e-9,
                    "unrecovered faults: det {} rec {}",
                    r.detected,
                    r.recovered
                );
            }
        }
        assert_eq!(render_faults(&rows).len(), 4);
    }

    #[test]
    fn fault_free_arm_reproduces_table2_cell() {
        // The acceptance tie-in: the f = 0 row must equal the Table II
        // experimental arm for the same (problem, T_F, P, seed) cell.
        let fcfg = FaultsConfig {
            evaluations: 2_000,
            replicates: 1,
            processors: vec![8],
            failure_rates: vec![0.0],
            tf_mean: 0.001,
            ..FaultsConfig::default()
        };
        let t2cfg = Table2Config {
            evaluations: 2_000,
            replicates: 1,
            processors: vec![8],
            tf_means: vec![0.001],
            problems: vec![PaperProblem::Dtlz2],
            ..Table2Config::default()
        };
        let frow = &run_faults(&fcfg)[0];
        let trow = &run_table2(&t2cfg)[0];
        // Same seeds, same executor, same config — but TaMode::Measured
        // charges *real wall-clock* T_A into the virtual schedule, so two
        // separate processes of the same cell differ by machine noise.
        // Equality up to that noise is the strongest honest check.
        let rel = (frow.experimental_time - trow.experimental_time).abs() / trow.experimental_time;
        assert!(
            rel < 0.25,
            "f=0 elapsed ({}) diverged from Table II elapsed ({}) by {:.0}%",
            frow.experimental_time,
            trow.experimental_time,
            rel * 100.0
        );
        assert_eq!(frow.completed_nfe, 2_000);
        assert_eq!(frow.injected, 0.0, "f=0 arm must inject nothing");
    }

    #[test]
    fn higher_failure_rates_cost_efficiency_not_completion() {
        let cfg = FaultsConfig {
            evaluations: 4_000,
            replicates: 1,
            processors: vec![16],
            failure_rates: vec![0.0, 0.25],
            tf_mean: 0.001,
            ..FaultsConfig::default()
        };
        let rows = run_faults(&cfg);
        assert_eq!(rows[0].completed_nfe, rows[1].completed_nfe);
        assert!(
            rows[1].experimental_time > rows[0].experimental_time,
            "losing a quarter of the pool should cost time: {} vs {}",
            rows[1].experimental_time,
            rows[0].experimental_time
        );
    }
}
