//! Plain-text and CSV report rendering (no external dependencies).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes `content` under `dir/name`, creating the directory if needed.
pub fn write_output(dir: &Path, name: &str, content: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(name))?;
    f.write_all(content.as_bytes())
}

/// Formats a duration in seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".into()
    } else if s.abs() < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s.abs() < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Renders an ASCII heatmap: rows × cols of values in `[0, 1]` mapped onto
/// a density ramp (dark = low, bright = high).
pub fn ascii_heatmap(values: &[Vec<f64>], row_labels: &[String], col_title: &str) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    let label_w = row_labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let _ = writeln!(out, "{:label_w$}  {}", "", col_title);
    for (row, label) in values.iter().zip(row_labels) {
        let cells: String = row
            .iter()
            .map(|&v| {
                let v = v.clamp(0.0, 1.0);
                let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                RAMP[idx] as char
            })
            .collect();
        let _ = writeln!(out, "{label:>label_w$} |{cells}|");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["P", "time"]);
        t.row(vec!["16", "9.2"]);
        t.row(vec!["1024", "11.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('P') && lines[0].contains("time"));
        assert!(lines[2].trim_start().starts_with("16"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["1"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(vec!["name", "v"]);
        t.row(vec!["a,b", "1"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\",1"));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_secs(0.000_006), "6.0us");
        assert_eq!(fmt_secs(0.01), "10.00ms");
        assert_eq!(fmt_secs(9.2), "9.20s");
        assert_eq!(fmt_pct(0.69), "69%");
    }

    #[test]
    fn heatmap_maps_extremes() {
        let v = vec![vec![0.0, 1.0]];
        let s = ascii_heatmap(&v, &["row".into()], "cols");
        assert!(s.contains('@'));
        assert!(s.contains(' '));
    }

    #[test]
    fn write_output_creates_files() {
        let dir = std::env::temp_dir().join("borg-exp-test");
        write_output(&dir, "x.csv", "a,b\n").unwrap();
        let read = std::fs::read_to_string(dir.join("x.csv")).unwrap();
        assert_eq!(read, "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
