//! Three-executor Chrome-trace bundle.
//!
//! One small seeded run per executor path — the simulation model's pure
//! DES, the virtual-time executor running the real algorithm, and the
//! real-thread executor — each recorded through the shared [`borg_obs`]
//! span vocabulary and merged into a single Chrome Trace Event Format
//! document. Load the output in `chrome://tracing` or
//! <https://ui.perfetto.dev>: each executor appears as its own process,
//! with the master on thread 0 and workers on threads 1..P.
//!
//! The first two paths run in virtual time and are fully deterministic
//! for a given seed; the threaded path measures wall-clock spans, so its
//! timeline varies with machine load (that variation is the point — it
//! shows the real executor next to its two models).

use crate::suite::PaperProblem;
use borg_models::dist::Dist;
use borg_models::perfsim::{simulate_async_traced, PerfSimConfig, TimingModel};
use borg_obs::export::{chrome_trace_json, TraceGroup};
use borg_obs::InMemoryRecorder;
use borg_parallel::threads::{run_threaded_observed, ThreadedConfig};
use borg_parallel::virtual_exec::{run_virtual_async, TaMode, VirtualConfig};

/// Configuration for the three-run trace bundle.
#[derive(Debug, Clone, Copy)]
pub struct TraceBundleConfig {
    /// Processors per run (one master + `P − 1` workers).
    pub processors: u32,
    /// Evaluations per run (keep small: every span becomes a JSON event).
    pub evaluations: u64,
    /// Mean injected `T_F` (seconds).
    pub tf_mean: f64,
    /// Root seed for the two virtual-time runs.
    pub seed: u64,
}

impl Default for TraceBundleConfig {
    fn default() -> Self {
        Self {
            processors: 8,
            evaluations: 240,
            tf_mean: 0.002,
            seed: 20130520,
        }
    }
}

/// A rendered bundle plus per-path span counts (for progress reporting).
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// The Chrome Trace Event Format JSON document.
    pub json: String,
    /// Spans recorded per path, in bundle order (DES, virtual, threads).
    pub span_counts: [usize; 3],
}

/// Runs the three executor paths and renders the combined trace.
pub fn trace_bundle(config: &TraceBundleConfig) -> TraceBundle {
    let timing = TimingModel {
        t_f: Dist::normal_cv(config.tf_mean, 0.1),
        t_c: Dist::Constant(0.000_006),
        t_a: Dist::Constant(0.000_030),
    };

    // Path 1: the simulation model's DES (no real algorithm).
    let des_rec = InMemoryRecorder::new();
    simulate_async_traced(
        &PerfSimConfig {
            processors: config.processors,
            evaluations: config.evaluations,
            timing,
            seed: config.seed,
        },
        &des_rec,
    );

    // Path 2: the real Borg MOEA inside the virtual-time executor.
    let problem = PaperProblem::Dtlz2.build();
    let borg = PaperProblem::Dtlz2.borg_config(0.1);
    let virt_rec = InMemoryRecorder::new();
    run_virtual_async(
        problem.as_ref(),
        borg.clone(),
        &VirtualConfig {
            processors: config.processors,
            max_nfe: config.evaluations,
            t_f: Dist::normal_cv(config.tf_mean, 0.1),
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Measured,
            seed: config.seed,
        },
        &virt_rec,
        |_, _| {},
    );

    // Path 3: the real-thread executor over wall-clock time.
    let thread_rec = InMemoryRecorder::new();
    let workers = (config.processors as usize).saturating_sub(1).max(1);
    let threaded = ThreadedConfig::new(
        workers.min(8),
        config.evaluations,
        Some(Dist::Constant(config.tf_mean)),
        config.seed,
    );
    // A dead worker pool only loses us the third timeline; keep the
    // deterministic two rather than failing the whole export.
    let _ = run_threaded_observed(problem.as_ref(), borg, &threaded, &thread_rec);

    let groups = [
        ("simulation-model-des", &des_rec),
        ("virtual-async", &virt_rec),
        ("real-threads", &thread_rec),
    ];
    let span_counts = [
        des_rec.span_trace().spans().len(),
        virt_rec.span_trace().spans().len(),
        thread_rec.span_trace().spans().len(),
    ];
    let groups: Vec<TraceGroup> = groups
        .iter()
        .map(|(name, rec)| TraceGroup {
            name: (*name).to_string(),
            trace: rec.span_trace(),
        })
        .collect();
    TraceBundle {
        json: chrome_trace_json(&groups),
        span_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_covers_all_three_executor_paths() {
        let bundle = trace_bundle(&TraceBundleConfig {
            processors: 4,
            evaluations: 60,
            tf_mean: 0.0005,
            seed: 7,
        });
        for (i, n) in bundle.span_counts.iter().enumerate() {
            assert!(*n > 0, "path {i} recorded no spans");
        }
        // All three pids present, with master and worker threads named.
        for pid in 1..=3 {
            assert!(bundle.json.contains(&format!("\"pid\":{pid}")));
        }
        assert!(bundle.json.contains("{\"name\":\"simulation-model-des\"}"));
        assert!(bundle.json.contains("{\"name\":\"virtual-async\"}"));
        assert!(bundle.json.contains("{\"name\":\"real-threads\"}"));
        assert!(bundle.json.contains("{\"name\":\"master\"}"));
        assert!(bundle.json.contains("{\"name\":\"worker1\"}"));
        assert!(bundle.json.contains("\"name\":\"evaluation\""));
    }
}
