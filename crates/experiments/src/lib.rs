//! # borg-experiments
//!
//! The experiment harness regenerating every table and figure of the
//! paper (see DESIGN.md §4 for the full index):
//!
//! | Artifact | Module | CLI subcommand |
//! |---|---|---|
//! | Table II | [`table2`] | `borg-exp table2` |
//! | Figure 1 | [`timeline`] | `borg-exp fig1` |
//! | Figure 2 | [`timeline`] | `borg-exp fig2` |
//! | Figure 3 | [`hvspeedup`] | `borg-exp fig3` |
//! | Figure 4 | [`hvspeedup`] | `borg-exp fig4` |
//! | Figure 5 | [`heatmap`] | `borg-exp fig5` |
//! | Eqs. 3–4 | [`bounds`] | `borg-exp bounds` |
//! | §IV-B fitting | [`fitdemo`] | `borg-exp fit` |
//! | Fault-tolerance sweep (extension) | [`faults`] | `borg-exp faults` |
//! | DESIGN.md §5 ablations | [`ablation`] | `borg-exp ablations` |
//! | §VII island topology (extension) | [`islands_exp`] | `borg-exp islands` |
//! | §VI/VII algorithm dynamics | [`dynamics`] | `borg-exp dynamics` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod bounds;
pub mod dynamics;
pub mod faults;
pub mod fitdemo;
pub mod heatmap;
pub mod hvcache;
pub mod hvspeedup;
pub mod islands_exp;
pub(crate) mod par;
pub mod report;
pub mod suite;
pub mod table2;
pub mod timeline;
pub mod tracebundle;
