//! Eqs. (3)–(4): processor-count bounds for the paper's parameter points.

use crate::report::TextTable;
use borg_models::analytical::{processor_lower_bound, processor_upper_bound, TimingParams};

/// One bounds row.
#[derive(Debug, Clone)]
pub struct BoundsRow {
    /// Scenario label.
    pub label: String,
    /// Parameters.
    pub timing: TimingParams,
    /// Eq. (3): saturation upper bound.
    pub upper: f64,
    /// Eq. (4): break-even lower bound.
    pub lower: f64,
}

/// Computes bounds for the paper's Table II parameter combinations (using
/// the published `T_A` at a representative `P` per problem).
pub fn paper_bounds() -> Vec<BoundsRow> {
    let scenarios = [
        (
            "DTLZ2 T_F=1ms",
            TimingParams::new(0.001, 0.000_006, 0.000_029),
        ),
        (
            "DTLZ2 T_F=10ms",
            TimingParams::new(0.01, 0.000_006, 0.000_029),
        ),
        (
            "DTLZ2 T_F=100ms",
            TimingParams::new(0.1, 0.000_006, 0.000_029),
        ),
        (
            "UF11 T_F=1ms",
            TimingParams::new(0.001, 0.000_006, 0.000_061),
        ),
        (
            "UF11 T_F=10ms",
            TimingParams::new(0.01, 0.000_006, 0.000_061),
        ),
        (
            "UF11 T_F=100ms",
            TimingParams::new(0.1, 0.000_006, 0.000_061),
        ),
    ];
    scenarios
        .iter()
        .map(|(label, t)| BoundsRow {
            label: label.to_string(),
            timing: *t,
            upper: processor_upper_bound(*t),
            lower: processor_lower_bound(*t),
        })
        .collect()
}

/// Renders the bounds table.
pub fn render_bounds(rows: &[BoundsRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "scenario",
        "T_F",
        "T_C",
        "T_A",
        "P_LB (Eq.4)",
        "P_UB (Eq.3)",
    ]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            format!("{:.3}", r.timing.t_f),
            format!("{:.6}", r.timing.t_c),
            format!("{:.6}", r.timing.t_a),
            format!("{:.2}", r.lower),
            format!("{:.0}", r.upper),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtlz2_10ms_bound_matches_papers_244() {
        let rows = paper_bounds();
        let r = rows.iter().find(|r| r.label == "DTLZ2 T_F=10ms").unwrap();
        assert!((r.upper - 244.0).abs() < 1.0, "P_UB = {}", r.upper);
    }

    #[test]
    fn bounds_scale_linearly_with_tf() {
        let rows = paper_bounds();
        let r1 = rows.iter().find(|r| r.label == "DTLZ2 T_F=1ms").unwrap();
        let r100 = rows.iter().find(|r| r.label == "DTLZ2 T_F=100ms").unwrap();
        assert!((r100.upper / r1.upper - 100.0).abs() < 0.1);
    }

    #[test]
    fn uf11_saturates_earlier_than_dtlz2() {
        // Bigger T_A ⇒ smaller saturation bound.
        let rows = paper_bounds();
        let d = rows.iter().find(|r| r.label == "DTLZ2 T_F=10ms").unwrap();
        let u = rows.iter().find(|r| r.label == "UF11 T_F=10ms").unwrap();
        assert!(u.upper < d.upper);
    }

    #[test]
    fn renders_all_rows() {
        let t = render_bounds(&paper_bounds());
        assert_eq!(t.len(), 6);
    }
}
