//! The paper's two workloads (5-objective DTLZ2 and UF11) packaged with
//! their archive ε values and reference fronts.

use borg_core::algorithm::BorgConfig;
use borg_core::problem::Problem;
use borg_problems::dtlz::Dtlz;
use borg_problems::refsets::{dtlz2_front, uf11_front};
use borg_problems::uf::uf11;

/// Which paper workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperProblem {
    /// 5-objective DTLZ2 — separable, "easy".
    Dtlz2,
    /// UF11 (rotated, scaled 5-objective DTLZ2) — non-separable, "hard".
    Uf11,
}

impl PaperProblem {
    /// Both workloads, in the paper's order.
    pub fn all() -> [PaperProblem; 2] {
        [PaperProblem::Dtlz2, PaperProblem::Uf11]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PaperProblem::Dtlz2 => "DTLZ2",
            PaperProblem::Uf11 => "UF11",
        }
    }

    /// Builds the problem instance.
    pub fn build(self) -> Box<dyn Problem> {
        match self {
            PaperProblem::Dtlz2 => Box::new(Dtlz::dtlz2_5()),
            PaperProblem::Uf11 => Box::new(uf11()),
        }
    }

    /// Archive ε values. Both problems use a *uniform* ε (Borg's default):
    /// because UF11's objectives are scaled up by factors 1–5, a uniform ε
    /// resolves its front more finely, giving UF11 a larger archive and a
    /// larger `T_A` than DTLZ2 — reproducing the paper's Table II ordering
    /// (UF11 `T_A` ≈ 2× DTLZ2's).
    pub fn epsilons(self, base: f64) -> Vec<f64> {
        let _ = self;
        vec![base; 5]
    }

    /// Borg configuration for this workload.
    pub fn borg_config(self, base_epsilon: f64) -> BorgConfig {
        let mut cfg = BorgConfig::new(5, base_epsilon);
        cfg.epsilons = self.epsilons(base_epsilon);
        cfg
    }

    /// Analytic reference front sampled from a Das–Dennis lattice.
    pub fn reference_front(self, divisions: usize) -> Vec<Vec<f64>> {
        match self {
            PaperProblem::Dtlz2 => dtlz2_front(5, divisions),
            PaperProblem::Uf11 => uf11_front(divisions),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_problems_build_with_five_objectives() {
        for p in PaperProblem::all() {
            let problem = p.build();
            assert_eq!(problem.num_objectives(), 5);
            assert_eq!(problem.num_variables(), 14);
        }
    }

    #[test]
    fn epsilons_are_uniform_borg_default() {
        let e = PaperProblem::Uf11.epsilons(0.1);
        assert_eq!(e, vec![0.1; 5]);
        let cfg = PaperProblem::Uf11.borg_config(0.1);
        assert_eq!(cfg.epsilons, e);
        assert_eq!(PaperProblem::Dtlz2.epsilons(0.1), vec![0.1; 5]);
    }

    #[test]
    fn reference_fronts_are_consistent_with_problems() {
        for p in PaperProblem::all() {
            let front = p.reference_front(4);
            assert!(!front.is_empty());
            assert!(front.iter().all(|pt| pt.len() == 5));
        }
    }
}
