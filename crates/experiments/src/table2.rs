//! Table II: experimental elapsed time and efficiency vs the analytical
//! model (Eq. 2) and the simulation model, with per-cell relative errors.
//!
//! The experimental arm runs the *real* Borg MOEA inside the virtual-time
//! executor with measured `T_A` (see DESIGN.md §2); the simulation model
//! is then parameterized exactly like the paper's: `T_A` fitted from the
//! measured samples via log-likelihood model selection, `T_F` from the
//! controlled-delay specification, `T_C` constant.

use crate::report::TextTable;
use crate::suite::PaperProblem;
use borg_core::rng::SplitMix64;
use borg_models::analytical::{async_parallel_time, relative_error, serial_time, TimingParams};
use borg_models::dist::Dist;
use borg_models::distfit::best_fit;
use borg_models::perfsim::{simulate_async_mean, PerfSimConfig, TimingModel};
use borg_obs::{InMemoryRecorder, MetricsSnapshot, NoopRecorder};
use borg_parallel::virtual_exec::{run_virtual_async, TaMode, VirtualConfig};

/// Configuration for regenerating Table II.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Function evaluations per run (paper: 100,000).
    pub evaluations: u64,
    /// Replicates per cell (paper: 50).
    pub replicates: u32,
    /// Processor counts (paper: 16…1024).
    pub processors: Vec<u32>,
    /// Mean injected evaluation times (paper: 1 ms, 10 ms, 100 ms).
    pub tf_means: Vec<f64>,
    /// Workloads.
    pub problems: Vec<PaperProblem>,
    /// Base archive ε.
    pub epsilon: f64,
    /// Root seed.
    pub seed: u64,
    /// Worker threads for the replicate sweep: `0` auto-detects
    /// (`available_parallelism`), `1` runs serially. The fan-out adds no
    /// nondeterminism — for fixed `T_A` inputs (set [`Self::sampled_ta`])
    /// every value produces byte-identical rows (see `borg-runner`). Under
    /// measured `T_A` the timing samples themselves vary run to run, even
    /// serially, so only statistical agreement is possible there.
    pub jobs: usize,
    /// `Some(v)`: replace measured `T_A` with a sampled constant `v`
    /// seconds (`TaMode::Sampled`), making runs independent of host
    /// timing — used by the determinism gate. `None` (default): measure
    /// `T_A`, the paper's methodology.
    pub sampled_ta: Option<f64>,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            // Scaled-down defaults chosen so the full table regenerates in
            // minutes on one laptop core; pass --full for paper scale.
            evaluations: 20_000,
            replicates: 3,
            processors: vec![16, 32, 64, 128, 256, 512, 1024],
            tf_means: vec![0.001, 0.01, 0.1],
            problems: vec![PaperProblem::Dtlz2, PaperProblem::Uf11],
            epsilon: 0.1,
            seed: 20130520,
            jobs: 0,
            sampled_ta: None,
        }
    }
}

impl Table2Config {
    /// Paper-scale settings (N = 100k, 50 replicates). Expect hours.
    pub fn paper_scale(mut self) -> Self {
        self.evaluations = 100_000;
        self.replicates = 50;
        self
    }

    /// Smoke-test settings for CI and benches.
    pub fn smoke(mut self) -> Self {
        self.evaluations = 2_000;
        self.replicates = 1;
        self.processors = vec![8, 64];
        self.tf_means = vec![0.001, 0.01];
        self
    }
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Workload name.
    pub problem: &'static str,
    /// Processor count `P`.
    pub processors: u32,
    /// Mean measured `T_A` (seconds).
    pub t_a: f64,
    /// `T_C` (seconds).
    pub t_c: f64,
    /// Mean `T_F` (seconds).
    pub t_f: f64,
    /// Mean experimental elapsed time (virtual seconds).
    pub experimental_time: f64,
    /// Experimental efficiency `T_S / (P · T_P)`.
    pub efficiency: f64,
    /// Analytical prediction (Eq. 2).
    pub analytical_time: f64,
    /// Analytical relative error (Eq. 5).
    pub analytical_error: f64,
    /// Simulation-model prediction.
    pub simulation_time: f64,
    /// Simulation-model relative error (Eq. 5).
    pub simulation_error: f64,
    /// Master utilization observed in the experimental arm.
    pub master_utilization: f64,
}

/// Per-replicate engine seeds for one (problem, `T_F`, `P`) Table II cell.
///
/// Exported so the faults experiment's `f = 0` arm reproduces the Table II
/// experimental arm bit-for-bit (same seeds → same runs → same elapsed).
pub fn replicate_seeds(
    root: u64,
    problem: PaperProblem,
    tf: f64,
    p: u32,
    replicates: u32,
) -> Vec<u64> {
    let mut split = SplitMix64::new(root ^ ((p as u64) << 20) ^ problem.name().len() as u64);
    let tf_mixed = mix64(tf.to_bits());
    (0..replicates)
        .map(|r| {
            // Hash-combine (add + finalize) rather than raw XOR: with XOR,
            // any (tf, r) pair whose bits cancel against another pair's
            // yields the same seed from the same split stream. The
            // avalanche of the finalizer makes a collision require a full
            // 64-bit hash collision instead of a low-bit coincidence.
            mix64(
                split
                    .derive_seed("table2-replicate")
                    .wrapping_add(tf_mixed)
                    .wrapping_add(u64::from(r)),
            )
        })
        .collect()
}

/// The SplitMix64 output finalizer (Vigna's public-domain constants): a
/// bijective avalanche mix used to hash-combine seed components.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `T_C` injected into every Table II run (seconds).
const T_C: f64 = 0.000_006;

/// One (problem, `T_F`, `P`) cell of the table, in row order.
#[derive(Debug, Clone, Copy)]
struct CellSpec {
    problem: PaperProblem,
    tf: f64,
    p: u32,
}

/// What one replicate run hands back to the per-cell fold.
struct ReplicateOutcome {
    elapsed: f64,
    utilization: f64,
    ta_samples: Vec<f64>,
    metrics: Option<MetricsSnapshot>,
}

/// Runs the full Table II experiment (no observation; see
/// [`run_table2_with`] for the instrumented variant).
pub fn run_table2(config: &Table2Config) -> Vec<Table2Row> {
    run_table2_inner(config, false)
        .into_iter()
        .map(|(row, _)| row)
        .collect()
}

/// Runs Table II with a per-cell metrics observer.
///
/// Each replicate records into its own metrics-only [`InMemoryRecorder`];
/// the snapshots are merged **in replicate order**, so `observer` receives
/// — alongside the finished row — the cell's empirical `t_f_seconds` /
/// `t_c_seconds` / `t_a_seconds` duration histograms (aggregated over all
/// replicates), the engine's protocol counters summed across replicates,
/// and the last replicate's `master.busy_seconds` / `master.utilization`
/// gauges. The fixed merge order makes the snapshot — like the rows —
/// bit-identical for every `jobs` setting; recorders never influence the
/// runs, so the rows also match [`run_table2`]'s exactly.
pub fn run_table2_with<F>(config: &Table2Config, mut observer: F) -> Vec<Table2Row>
where
    F: FnMut(&Table2Row, &MetricsSnapshot),
{
    run_table2_inner(config, true)
        .into_iter()
        .map(|(row, metrics)| {
            observer(&row, &metrics.unwrap_or_default());
            row
        })
        .collect()
}

/// The sweep core: pre-derives every replicate seed in (cell, replicate)
/// order, fans the replicates out over `config.jobs` workers, then folds
/// results per cell in replicate order — the same float accumulation
/// order as the serial nested loops this replaced.
fn run_table2_inner(
    config: &Table2Config,
    observe: bool,
) -> Vec<(Table2Row, Option<MetricsSnapshot>)> {
    let mut cells = Vec::new();
    for &problem in &config.problems {
        for &tf in &config.tf_means {
            for &p in &config.processors {
                cells.push(CellSpec { problem, tf, p });
            }
        }
    }
    let mut jobs = Vec::new();
    for (index, cell) in cells.iter().enumerate() {
        for seed in replicate_seeds(
            config.seed,
            cell.problem,
            cell.tf,
            cell.p,
            config.replicates,
        ) {
            jobs.push((index, seed));
        }
    }
    let outcomes = crate::par::run_jobs(config.jobs, jobs, |_, (cell, seed)| {
        run_replicate(config, &cells[cell], seed, observe)
    });
    let replicates = config.replicates as usize;
    cells
        .iter()
        .enumerate()
        .map(|(index, cell)| {
            let mine = &outcomes[index * replicates..(index + 1) * replicates];
            let metrics = observe.then(|| {
                let mut merged = MetricsSnapshot::default();
                for outcome in mine {
                    if let Some(snapshot) = &outcome.metrics {
                        merged.merge(snapshot);
                    }
                }
                merged
            });
            (finalize_cell(config, cell, mine), metrics)
        })
        .collect()
}

/// Runs one replicate: builds the workload fresh (jobs share nothing),
/// runs the virtual-time executor, and returns the per-replicate summary
/// plus (when observing) the replicate's own metrics snapshot.
fn run_replicate(
    config: &Table2Config,
    cell: &CellSpec,
    seed: u64,
    observe: bool,
) -> ReplicateOutcome {
    let problem = cell.problem.build();
    let borg = cell.problem.borg_config(config.epsilon);
    let vcfg = VirtualConfig {
        processors: cell.p,
        max_nfe: config.evaluations,
        t_f: Dist::normal_cv(cell.tf, 0.1),
        t_c: Dist::Constant(T_C),
        t_a: match config.sampled_ta {
            Some(v) => TaMode::Sampled(Dist::Constant(v)),
            None => TaMode::Measured,
        },
        seed,
    };
    let (result, metrics) = if observe {
        let rec = InMemoryRecorder::metrics_only();
        let result = run_virtual_async(problem.as_ref(), borg, &vcfg, &rec, |_, _| {});
        (result, Some(rec.snapshot()))
    } else {
        let result = run_virtual_async(problem.as_ref(), borg, &vcfg, &NoopRecorder, |_, _| {});
        (result, None)
    };
    // Thin the samples to bound fitting cost at paper scale.
    let stride = (result.ta_samples.len() / 20_000).max(1);
    ReplicateOutcome {
        elapsed: result.outcome.elapsed,
        utilization: result.outcome.master_utilization,
        ta_samples: result.ta_samples.iter().step_by(stride).copied().collect(),
        metrics,
    }
}

/// Folds one cell's replicate outcomes (in replicate order) into its row.
fn finalize_cell(
    config: &Table2Config,
    cell: &CellSpec,
    outcomes: &[ReplicateOutcome],
) -> Table2Row {
    let (problem_choice, tf, p) = (cell.problem, cell.tf, cell.p);
    let t_c = T_C;
    let mut elapsed_sum = 0.0;
    let mut util_sum = 0.0;
    let mut ta_samples: Vec<f64> = Vec::new();
    for outcome in outcomes {
        elapsed_sum += outcome.elapsed;
        util_sum += outcome.utilization;
        ta_samples.extend_from_slice(&outcome.ta_samples);
    }
    let experimental_time = elapsed_sum / config.replicates as f64;
    let mean_ta = ta_samples.iter().sum::<f64>() / ta_samples.len() as f64;
    let timing = TimingParams::new(tf, t_c, mean_ta);

    // Experimental efficiency against the serial baseline implied by the
    // same measured T_A (the paper's Eq. 1).
    let t_s = serial_time(config.evaluations, timing);
    let efficiency = t_s / (p as f64 * experimental_time);

    // Analytical model, Eq. 2.
    let analytical_time = async_parallel_time(config.evaluations, p, timing);

    // Simulation model with fitted T_A distribution.
    let ta_dist = best_fit(&ta_samples);
    let sim = simulate_async_mean(
        &PerfSimConfig {
            processors: p,
            evaluations: config.evaluations,
            timing: TimingModel {
                t_f: Dist::normal_cv(tf, 0.1),
                t_c: Dist::Constant(t_c),
                t_a: ta_dist,
            },
            seed: config.seed ^ 0x51e0_11aa,
        },
        config.replicates,
    );

    Table2Row {
        problem: problem_choice.name(),
        processors: p,
        t_a: mean_ta,
        t_c,
        t_f: tf,
        experimental_time,
        efficiency,
        analytical_time,
        analytical_error: relative_error(experimental_time, analytical_time),
        simulation_time: sim.parallel_time,
        simulation_error: relative_error(experimental_time, sim.parallel_time),
        master_utilization: util_sum / config.replicates as f64,
    }
}

/// Renders the rows in the paper's Table II layout.
pub fn render_table2(rows: &[Table2Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "problem", "P", "T_A", "T_C", "T_F", "time", "eff", "analytic", "err", "sim", "err(sim)",
        "util",
    ]);
    for r in rows {
        t.row(vec![
            r.problem.to_string(),
            r.processors.to_string(),
            format!("{:.6}", r.t_a),
            format!("{:.6}", r.t_c),
            format!("{:.3}", r.t_f),
            format!("{:.2}", r.experimental_time),
            format!("{:.2}", r.efficiency),
            format!("{:.2}", r.analytical_time),
            format!("{:.0}%", r.analytical_error * 100.0),
            format!("{:.2}", r.simulation_time),
            format!("{:.0}%", r.simulation_error * 100.0),
            format!("{:.2}", r.master_utilization),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_expected_shape() {
        let cfg = Table2Config::default().smoke();
        let rows = run_table2(&cfg);
        // 2 problems × 2 T_F × 2 P.
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.experimental_time > 0.0);
            assert!(r.t_a > 0.0 && r.t_a < 0.01, "implausible T_A {}", r.t_a);
            assert!(r.efficiency > 0.0 && r.efficiency <= 1.05);
            assert!(r.simulation_time > 0.0);
        }
        let rendered = render_table2(&rows);
        assert_eq!(rendered.len(), 8);
    }

    #[test]
    fn simulation_model_beats_analytical_under_saturation() {
        // The paper's central quantitative claim, at reduced scale: with
        // T_F = 1 ms and P = 64 the master saturates (measured T_A is tens
        // of µs on this machine), the analytical error blows up, and the
        // simulation model stays close.
        let cfg = Table2Config {
            evaluations: 4_000,
            replicates: 2,
            processors: vec![64],
            tf_means: vec![0.001],
            problems: vec![PaperProblem::Uf11],
            ..Table2Config::default()
        };
        let rows = run_table2(&cfg);
        let r = &rows[0];
        if r.master_utilization > 0.95 {
            assert!(
                r.simulation_error < r.analytical_error,
                "sim err {} should beat analytic err {}",
                r.simulation_error,
                r.analytical_error
            );
        }
        // In all cases the simulation model must stay within a sane band.
        assert!(
            r.simulation_error < 0.5,
            "sim error too large: {}",
            r.simulation_error
        );
    }

    #[test]
    fn replicate_seeds_have_no_collisions_over_full_grid() {
        // Regression for the pre-finalizer scheme (`derive ^ tf_bits ^ r`),
        // where (tf, r) bit patterns could cancel: every seed across the
        // full paper-scale Table II grid — every problem, T_F, P, and all
        // 50 replicates — must be distinct.
        let cfg = Table2Config::default().paper_scale();
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for &problem in &cfg.problems {
            for &tf in &cfg.tf_means {
                for &p in &cfg.processors {
                    for seed in replicate_seeds(cfg.seed, problem, tf, p, cfg.replicates) {
                        seen.insert(seed);
                        total += 1;
                    }
                }
            }
        }
        assert_eq!(seen.len(), total, "replicate seed collision in the grid");
        // 2 problems × 3 T_F × 7 P × 50 replicates.
        assert_eq!(total, 2100);
    }

    #[test]
    fn jobs_setting_does_not_change_rows() {
        // The tentpole contract at the driver level: a parallel sweep is
        // bit-identical to the serial one. Sampled T_A keeps the run
        // independent of host timing so the comparison is exact.
        let cfg = Table2Config {
            evaluations: 1_000,
            replicates: 2,
            processors: vec![8],
            tf_means: vec![0.001],
            problems: vec![PaperProblem::Dtlz2],
            sampled_ta: Some(0.000_03),
            ..Table2Config::default()
        };
        let serial = run_table2(&Table2Config {
            jobs: 1,
            ..cfg.clone()
        });
        let parallel = run_table2(&Table2Config { jobs: 4, ..cfg });
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.experimental_time.to_bits(), p.experimental_time.to_bits());
            assert_eq!(s.t_a.to_bits(), p.t_a.to_bits());
            assert_eq!(s.efficiency.to_bits(), p.efficiency.to_bits());
            assert_eq!(s.simulation_time.to_bits(), p.simulation_time.to_bits());
            assert_eq!(
                s.master_utilization.to_bits(),
                p.master_utilization.to_bits()
            );
        }
    }

    #[test]
    fn uf11_ta_exceeds_dtlz2_ta() {
        // The paper's Table II shows UF11's T_A roughly double DTLZ2's
        // (rotation matrix multiply + harder archive). Our measured T_A
        // should reproduce the ordering.
        let cfg = Table2Config {
            evaluations: 4_000,
            replicates: 2,
            processors: vec![16],
            tf_means: vec![0.01],
            problems: vec![PaperProblem::Dtlz2, PaperProblem::Uf11],
            ..Table2Config::default()
        };
        let rows = run_table2(&cfg);
        let dtlz2_ta = rows.iter().find(|r| r.problem == "DTLZ2").unwrap().t_a;
        let uf11_ta = rows.iter().find(|r| r.problem == "UF11").unwrap().t_a;
        assert!(
            uf11_ta > dtlz2_ta * 0.8,
            "UF11 T_A ({uf11_ta}) unexpectedly far below DTLZ2's ({dtlz2_ta})"
        );
    }
}
