//! Generation-keyed hypervolume caching for trajectory sampling.
//!
//! The figure drivers sample the relative hypervolume of the evolving
//! archive at every checkpoint. Naively that means rebuilding the
//! `Vec<Vec<f64>>` objective matrix *and* re-running the (Monte Carlo)
//! hypervolume estimator per sample — even though between most checkpoints
//! the archive has not changed at all. [`HvCache`] keys the last computed
//! ratio on [`EpsilonArchive::generation`], which moves exactly when the
//! archive's content may have changed, so unchanged archives cost one
//! integer compare instead of an allocation plus a full metric pass.
//!
//! The cached value is the bit-identical `f64` the metric returned, so
//! trajectories are unchanged — this is purely a hot-path optimisation.

use borg_core::archive::EpsilonArchive;
use borg_metrics::relative::RelativeHypervolume;

/// Caches the last hypervolume ratio, keyed on the archive generation.
#[derive(Debug, Clone, Default)]
pub struct HvCache {
    last: Option<(u64, f64)>,
}

impl HvCache {
    /// An empty cache (first `ratio` call always computes).
    pub fn new() -> Self {
        Self::default()
    }

    /// The relative hypervolume of `archive` under `metric`, recomputed
    /// only when the archive generation changed since the last call.
    pub fn ratio(&mut self, metric: &RelativeHypervolume, archive: &EpsilonArchive) -> f64 {
        let generation = archive.generation();
        if let Some((cached_generation, cached_ratio)) = self.last {
            if cached_generation == generation {
                return cached_ratio;
            }
        }
        let ratio = metric.ratio_rows(archive.objective_rows().iter_rows());
        self.last = Some((generation, ratio));
        ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_core::solution::Solution;

    fn metric() -> RelativeHypervolume {
        let reference = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]];
        RelativeHypervolume::monte_carlo(&reference, 2_000, 7)
    }

    fn sol(objs: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), vec![])
    }

    #[test]
    fn cached_ratio_is_bit_identical_to_direct_computation() {
        let metric = metric();
        let mut archive = EpsilonArchive::uniform(2, 0.05);
        archive.add(sol(&[0.2, 0.8]));
        let mut cache = HvCache::new();
        let direct = metric.ratio(&archive.objective_vectors());
        assert_eq!(cache.ratio(&metric, &archive), direct);
        // Unchanged archive: same value again (served from cache).
        assert_eq!(cache.ratio(&metric, &archive), direct);
        // A rejected insertion leaves the generation — and the cache — valid.
        archive.add(sol(&[0.9, 0.9]));
        assert_eq!(cache.ratio(&metric, &archive), direct);
    }

    #[test]
    fn cache_invalidates_when_archive_changes() {
        let metric = metric();
        let mut archive = EpsilonArchive::uniform(2, 0.05);
        archive.add(sol(&[0.2, 0.8]));
        let mut cache = HvCache::new();
        let before = cache.ratio(&metric, &archive);
        archive.add(sol(&[0.8, 0.2]));
        let after = cache.ratio(&metric, &archive);
        assert_eq!(after, metric.ratio(&archive.objective_vectors()));
        assert!(after > before, "growing front must grow the ratio");
    }
}
