//! Figures 3 and 4: hypervolume-threshold speedup.
//!
//! For a quality threshold `h`, `S_P^h = T_S^h / T_P^h` where `T_S^h` /
//! `T_P^h` are the (virtual) times at which the serial / parallel Borg
//! MOEA first attains a reference-set-normalized hypervolume of `h`
//! (§VI-A). Flat speedup lines mean parallelization preserved search
//! quality; nonlinear rising/falling lines appear where the configuration
//! runs inefficiently (large `P`, small `T_F`) — more strongly on the
//! non-separable UF11 than on DTLZ2.

use crate::hvcache::HvCache;
use crate::report::TextTable;
use crate::suite::PaperProblem;
use borg_core::rng::SplitMix64;
use borg_metrics::relative::RelativeHypervolume;
use borg_models::dist::Dist;
use borg_obs::NoopRecorder;
use borg_parallel::virtual_exec::{run_virtual_async, run_virtual_serial, TaMode, VirtualConfig};

/// Configuration for the hypervolume-speedup experiment.
#[derive(Debug, Clone)]
pub struct HvSpeedupConfig {
    /// Workload (Fig. 3 = DTLZ2, Fig. 4 = UF11).
    pub problem: PaperProblem,
    /// Evaluations per run.
    pub evaluations: u64,
    /// Replicates per configuration (paper: 50).
    pub replicates: u32,
    /// Processor counts (line series).
    pub processors: Vec<u32>,
    /// Mean `T_F` values (panels).
    pub tf_means: Vec<f64>,
    /// Hypervolume thresholds (x-axis).
    pub thresholds: Vec<f64>,
    /// Hypervolume sampling cadence in evaluations.
    pub check_every: u64,
    /// Base archive ε.
    pub epsilon: f64,
    /// Monte-Carlo hypervolume samples (common random numbers).
    pub mc_samples: usize,
    /// Das–Dennis lattice divisions for the reference front.
    pub ref_divisions: usize,
    /// Root seed.
    pub seed: u64,
    /// Worker threads for the replicate sweep (`0` auto, `1` serial). The
    /// fan-out adds no nondeterminism — seeds are pre-derived and results
    /// fold in derivation order (see `borg-runner`); measured `T_A` still
    /// charges host timing into the virtual clocks, so repeated runs
    /// differ by machine noise regardless of `jobs`.
    pub jobs: usize,
}

impl HvSpeedupConfig {
    /// Scaled-down defaults for one workload.
    pub fn new(problem: PaperProblem) -> Self {
        Self {
            problem,
            evaluations: 20_000,
            replicates: 2,
            processors: vec![16, 32, 64, 128, 256, 512, 1024],
            tf_means: vec![0.001, 0.01, 0.1],
            thresholds: (1..=10).map(|i| i as f64 / 10.0).collect(),
            check_every: 500,
            epsilon: 0.1,
            mc_samples: 5_000,
            ref_divisions: 6,
            seed: 4242,
            jobs: 0,
        }
    }

    /// Smoke-test settings for CI and benches.
    pub fn smoke(mut self) -> Self {
        self.evaluations = 3_000;
        self.replicates = 1;
        self.processors = vec![8, 64];
        self.tf_means = vec![0.01];
        self.check_every = 250;
        self.mc_samples = 2_000;
        self
    }
}

/// One panel (one `T_F`) of Figure 3/4.
#[derive(Debug, Clone)]
pub struct HvSpeedupPanel {
    /// Workload name.
    pub problem: &'static str,
    /// Panel `T_F`.
    pub t_f: f64,
    /// Threshold grid.
    pub thresholds: Vec<f64>,
    /// Mean serial time-to-threshold (None = never attained).
    pub serial_times: Vec<Option<f64>>,
    /// Per processor count: mean parallel time-to-threshold and speedups.
    pub series: Vec<HvSeries>,
}

/// One processor-count line in a panel.
#[derive(Debug, Clone)]
pub struct HvSeries {
    /// Processor count `P`.
    pub processors: u32,
    /// Mean parallel time-to-threshold per threshold.
    pub times: Vec<Option<f64>>,
    /// `S_P^h` per threshold (None when either side never attained `h`).
    pub speedups: Vec<Option<f64>>,
}

/// A (time, hypervolume-ratio) trajectory.
type Trajectory = Vec<(f64, f64)>;

fn time_to_threshold(traj: &Trajectory, h: f64) -> Option<f64> {
    traj.iter().find(|(_, hv)| *hv >= h).map(|(t, _)| *t)
}

/// Averages times-to-threshold across replicates; a threshold counts as
/// attained only if every replicate attained it (the conservative choice —
/// with the paper's 50 replicates the distinction washes out).
fn mean_times(trajs: &[Trajectory], thresholds: &[f64]) -> Vec<Option<f64>> {
    thresholds
        .iter()
        .map(|&h| {
            let times: Vec<f64> = trajs
                .iter()
                .filter_map(|t| time_to_threshold(t, h))
                .collect();
            (times.len() == trajs.len() && !trajs.is_empty())
                .then(|| times.iter().sum::<f64>() / times.len() as f64)
        })
        .collect()
}

/// Runs one panel of the experiment.
///
/// Every run (the serial baseline replicates and each processor count's
/// replicates) is an independent job: seeds are pre-derived from the
/// panel's SplitMix64 stream in the exact order the old nested loops drew
/// them, the runs fan out over `config.jobs` workers, and trajectories
/// are folded back in derivation order — so the panel is bit-identical
/// for every `jobs` setting.
pub fn run_panel(config: &HvSpeedupConfig, t_f: f64) -> HvSpeedupPanel {
    let reference = config.problem.reference_front(config.ref_divisions);
    let metric =
        RelativeHypervolume::monte_carlo(&reference, config.mc_samples, config.seed ^ 0xAB);

    let mut split = SplitMix64::new(config.seed ^ t_f.to_bits());

    // Pre-derive every run's seed in the historical order: all serial
    // replicates first, then each processor count's replicates. `None`
    // marks a serial-baseline run.
    let mut jobs: Vec<(Option<u32>, u64)> = Vec::new();
    for _ in 0..config.replicates {
        jobs.push((None, split.derive_seed("hv-serial")));
    }
    for &p in &config.processors {
        for _ in 0..config.replicates {
            jobs.push((Some(p), split.derive_seed("hv-parallel") ^ u64::from(p)));
        }
    }
    let trajs = crate::par::run_jobs(config.jobs, jobs, |_, (processors, seed)| {
        run_trajectory(config, t_f, &metric, processors, seed)
    });

    let replicates = config.replicates as usize;
    let serial_times = mean_times(&trajs[..replicates], &config.thresholds);

    let mut series = Vec::new();
    for (pi, &p) in config.processors.iter().enumerate() {
        let start = replicates + pi * replicates;
        let times = mean_times(&trajs[start..start + replicates], &config.thresholds);
        let speedups = serial_times
            .iter()
            .zip(&times)
            .map(|(s, p)| match (s, p) {
                (Some(s), Some(p)) if *p > 0.0 => Some(s / p),
                _ => None,
            })
            .collect();
        series.push(HvSeries {
            processors: p,
            times,
            speedups,
        });
    }

    HvSpeedupPanel {
        problem: config.problem.name(),
        t_f,
        thresholds: config.thresholds.clone(),
        serial_times,
        series,
    }
}

/// Runs one trajectory (serial when `processors` is `None`), sampling the
/// relative hypervolume at every checkpoint through an [`HvCache`] so the
/// objective matrix is rebuilt — and the metric re-run — only when the
/// archive actually changed since the previous checkpoint.
fn run_trajectory(
    config: &HvSpeedupConfig,
    t_f: f64,
    metric: &RelativeHypervolume,
    processors: Option<u32>,
    seed: u64,
) -> Trajectory {
    let problem = config.problem.build();
    let borg = config.problem.borg_config(config.epsilon);
    let vcfg = VirtualConfig {
        // The serial runner ignores the processor count beyond validation.
        processors: processors.unwrap_or(2),
        max_nfe: config.evaluations,
        t_f: Dist::normal_cv(t_f, 0.1),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Measured,
        seed,
    };
    let mut traj: Trajectory = Vec::new();
    let check = config.check_every.max(1);
    let mut cache = HvCache::new();
    match processors {
        None => {
            run_virtual_serial(problem.as_ref(), borg, &vcfg, |t, engine| {
                if engine.nfe() % check == 0 || engine.nfe() == config.evaluations {
                    traj.push((t, cache.ratio(metric, engine.archive())));
                }
            });
        }
        Some(_) => {
            run_virtual_async(problem.as_ref(), borg, &vcfg, &NoopRecorder, |t, engine| {
                if engine.nfe() % check == 0 || engine.nfe() == config.evaluations {
                    traj.push((t, cache.ratio(metric, engine.archive())));
                }
            });
        }
    }
    traj
}

/// Runs all panels (one per `T_F`).
pub fn run_figure(config: &HvSpeedupConfig) -> Vec<HvSpeedupPanel> {
    config
        .tf_means
        .iter()
        .map(|&tf| run_panel(config, tf))
        .collect()
}

/// Renders one panel as a threshold × processor-count speedup table.
pub fn render_panel(panel: &HvSpeedupPanel) -> TextTable {
    let mut header = vec!["h".to_string()];
    header.extend(panel.series.iter().map(|s| format!("P={}", s.processors)));
    let mut t = TextTable::new(header);
    for (i, &h) in panel.thresholds.iter().enumerate() {
        let mut row = vec![format!("{h:.2}")];
        for s in &panel.series {
            row.push(match s.speedups[i] {
                Some(v) => format!("{v:.1}"),
                None => "-".to_string(),
            });
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_to_threshold_finds_first_crossing() {
        let traj = vec![(1.0, 0.2), (2.0, 0.5), (3.0, 0.4), (4.0, 0.9)];
        assert_eq!(time_to_threshold(&traj, 0.5), Some(2.0));
        assert_eq!(time_to_threshold(&traj, 0.9), Some(4.0));
        assert_eq!(time_to_threshold(&traj, 0.95), None);
    }

    #[test]
    fn mean_times_requires_all_replicates() {
        let t1 = vec![(1.0, 0.6)];
        let t2 = vec![(3.0, 0.4)];
        let m = mean_times(&[t1, t2], &[0.5]);
        assert_eq!(m, vec![None]); // second replicate never crossed 0.5
    }

    #[test]
    fn smoke_panel_produces_speedups() {
        let cfg = HvSpeedupConfig::new(PaperProblem::Dtlz2).smoke();
        let panel = run_panel(&cfg, 0.01);
        assert_eq!(panel.series.len(), 2);
        // Low thresholds must be attained and show real speedup.
        let low = panel.series[0].speedups[1]; // h = 0.2, P = 8
        assert!(
            low.is_some(),
            "h=0.2 not attained: {:?}",
            panel.serial_times
        );
        assert!(low.unwrap() > 1.0, "expected parallel speedup, got {low:?}");
        let rendered = render_panel(&panel);
        assert_eq!(rendered.len(), panel.thresholds.len());
    }

    #[test]
    fn larger_worker_pool_reaches_thresholds_faster_when_efficient() {
        let mut cfg = HvSpeedupConfig::new(PaperProblem::Dtlz2).smoke();
        cfg.processors = vec![4, 32];
        cfg.tf_means = vec![0.1]; // large T_F: parallelism is efficient
        let panel = run_panel(&cfg, 0.1);
        // At an attained low threshold, P=32 must beat P=4 on time.
        let i = 2; // h = 0.3
        if let (Some(t4), Some(t32)) = (panel.series[0].times[i], panel.series[1].times[i]) {
            assert!(t32 < t4, "P=32 ({t32}) not faster than P=4 ({t4})");
        } else {
            panic!("threshold 0.3 unexpectedly unattained");
        }
    }
}
