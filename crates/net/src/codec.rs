//! Hand-rolled, dependency-free length-framed binary codec for the wire.
//!
//! The workspace is offline (no serde/bincode), so every message is
//! encoded by hand into a frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic      0xB0C6_F7A1 (LE)
//! 4       1     version    1
//! 5       4     payload length (LE, capped at MAX_PAYLOAD)
//! 9       4     FNV-1a-32 checksum of the payload (LE)
//! 13      len   payload    (tag byte + fields, all integers LE,
//!                           f64 as IEEE-754 bit pattern LE)
//! ```
//!
//! Decode is *total*: malformed input returns [`DecodeError`], never
//! panics, and never allocates more than the bytes actually present —
//! the payload length is validated against [`MAX_PAYLOAD`] before any
//! allocation, and every vector length inside the payload is validated
//! against the remaining payload bytes before reserving capacity.

use borg_protocol::{Command, Event};
use std::fmt;

/// Frame magic: rejects cross-protocol and mid-stream garbage early.
pub const MAGIC: u32 = 0xB0C6_F7A1;
/// Wire format version; bumped on any incompatible layout change.
pub const VERSION: u8 = 1;
/// Hard cap on a frame's payload. A `Work` frame for a 1000-variable
/// problem is ~8 KiB; 1 MiB leaves two orders of magnitude of headroom
/// while bounding what a corrupt length field can make us buffer.
pub const MAX_PAYLOAD: usize = 1 << 20;
/// Fixed frame header size (magic + version + length + checksum).
pub const HEADER_LEN: usize = 13;

/// Compact distributed-trace context piggybacked on `Work`, `Outcome`
/// and `Heartbeat` frames.
///
/// Encoded as an *optional trailer* after the variant's fixed fields:
/// `None` appends nothing, so a context-free frame is byte-identical to
/// the pre-trace wire format (old and new peers interoperate both ways);
/// `Some` appends a marker byte `1` followed by the three fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceCtx {
    /// Trace identity: the eval id for dispatch/result frames, a probe
    /// sequence number for heartbeat RTT probes.
    pub trace_id: u64,
    /// The sender's span id (or an opaque echo payload for heartbeats).
    pub parent_span: u64,
    /// The sender's clock when the frame was handed to the wire, seconds
    /// on the sender's own epoch (bit pattern preserved).
    pub sent_at: f64,
}

/// Everything that travels on a connection. `Cmd`/`Evt` carry the
/// protocol vocabulary verbatim; the remaining variants are the
/// deployment envelope (registration, work items, results, liveness,
/// and the read-only metrics tap).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → master registration. `worker` is [`UNASSIGNED`] on first
    /// contact and the previously assigned index on reconnect.
    Hello { worker: u64 },
    /// Master → worker registration reply: assigned index, the problem
    /// the worker must resolve, and an artificial per-evaluation delay
    /// (microseconds; used by tests to keep runs killable mid-flight).
    Welcome {
        worker: u64,
        problem: String,
        eval_delay_us: u64,
    },
    /// Master → worker work item. `seq` counts dispatches to this worker
    /// (the engine's fate-plan coordinate); `attempt` 0 = fresh produce.
    Work {
        eval_id: u64,
        attempt: u32,
        seq: u64,
        variables: Vec<f64>,
        ctx: Option<TraceCtx>,
    },
    /// Worker → master result, echoing the dispatch coordinates.
    Outcome {
        worker: u64,
        eval_id: u64,
        attempt: u32,
        objectives: Vec<f64>,
        constraints: Vec<f64>,
        ctx: Option<TraceCtx>,
    },
    /// Worker → master liveness beacon; with a [`TraceCtx`] it doubles
    /// as a clock probe, which the master echoes back verbatim plus its
    /// own receive timestamp.
    Heartbeat { worker: u64, ctx: Option<TraceCtx> },
    /// Master → worker: the run is over, exit cleanly.
    Shutdown,
    /// A protocol [`Command`], verbatim.
    Cmd(Command),
    /// A protocol [`Event`], verbatim.
    Evt(Event),
    /// Master → tap subscriber: one [`borg_obs::MetricsSnapshot`] delta
    /// tick, pre-rendered as metrics JSONL. `seq` counts ticks on this
    /// tap connection; `at` is the master clock.
    Tap { seq: u64, at: f64, jsonl: String },
}

/// `Hello.worker` value meaning "no index assigned yet".
pub const UNASSIGNED: u64 = u64::MAX;

/// Packs a deterministic span id from the trace coordinates both roles
/// agree on: `(eval_id << 16) | (attempt << 2) | role`. Roles: 0 =
/// master dispatch, 1 = worker evaluation, 2 = worker result send,
/// 3 = master consume. Attempts above the 14-bit field (16383) alias,
/// which is harmless — MAX_REISSUES caps attempts far below that.
pub fn span_id(eval_id: u64, attempt: u32, role: u8) -> u64 {
    (eval_id << 16) | ((u64::from(attempt) & 0x3fff) << 2) | u64::from(role & 0x3)
}

/// Why a frame failed to decode. Total: every malformed input maps here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends mid-frame and no more bytes can arrive (EOF).
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic(u32),
    /// Unknown wire format version.
    BadVersion(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Payload bytes do not match the header checksum.
    BadChecksum { expected: u32, found: u32 },
    /// Unknown message/enum tag byte.
    BadTag(u8),
    /// An inner length field exceeds the bytes actually present.
    BadLength,
    /// A boolean field held something other than 0 or 1.
    BadBool(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The payload decoded but left unconsumed bytes behind.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::Oversized(n) => {
                write!(f, "payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            DecodeError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "checksum mismatch (header {expected:#010x}, payload {found:#010x})"
                )
            }
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadLength => write!(f, "inner length exceeds payload"),
            DecodeError::BadBool(b) => write!(f, "invalid boolean byte {b}"),
            DecodeError::BadUtf8 => write!(f, "string field is not UTF-8"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing payload bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a over the payload. Not cryptographic — it guards against
/// corruption and framing bugs, not adversaries (single-byte corruption
/// is always detected: each absorption step is injective in the byte).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

// ---------------------------------------------------------------------------
// Payload writer
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    // Bit pattern, not value: NaNs and signed zeros survive verbatim so
    // the networked archive stays bit-identical to the oracle's.
    put_u64(buf, v.to_bits());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_f64(buf, v);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, u8::from(v));
}

// ---------------------------------------------------------------------------
// Payload reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::BadLength)?;
        if end > self.buf.len() {
            return Err(DecodeError::BadLength);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.u32()? as usize;
        // Validate against the bytes actually present *before* reserving
        // capacity: a corrupt count cannot make us over-allocate.
        let bytes = n.checked_mul(8).ok_or(DecodeError::BadLength)?;
        if self.pos.checked_add(bytes).ok_or(DecodeError::BadLength)? > self.buf.len() {
            return Err(DecodeError::BadLength);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadBool(b)),
        }
    }

    fn usize_field(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::BadLength)
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------------
// Message encoding
// ---------------------------------------------------------------------------

const TAG_HELLO: u8 = 0;
const TAG_WELCOME: u8 = 1;
const TAG_WORK: u8 = 2;
const TAG_OUTCOME: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_CMD: u8 = 6;
const TAG_EVT: u8 = 7;
const TAG_TAP: u8 = 8;

/// Marker byte introducing an encoded [`TraceCtx`] trailer.
const CTX_PRESENT: u8 = 1;

fn put_ctx(buf: &mut Vec<u8>, ctx: &Option<TraceCtx>) {
    if let Some(c) = ctx {
        put_u8(buf, CTX_PRESENT);
        put_u64(buf, c.trace_id);
        put_u64(buf, c.parent_span);
        put_f64(buf, c.sent_at);
    }
}

/// Reads the optional [`TraceCtx`] trailer: an exhausted payload is the
/// backward-compatible "no context" form.
fn read_ctx(r: &mut Reader<'_>) -> Result<Option<TraceCtx>, DecodeError> {
    if r.at_end() {
        return Ok(None);
    }
    match r.u8()? {
        CTX_PRESENT => Ok(Some(TraceCtx {
            trace_id: r.u64()?,
            parent_span: r.u64()?,
            sent_at: r.f64()?,
        })),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn encode_command(buf: &mut Vec<u8>, cmd: &Command) {
    match *cmd {
        Command::Dispatch {
            worker,
            eval_id,
            attempt,
        } => {
            put_u8(buf, 0);
            put_u64(buf, worker as u64);
            put_u64(buf, eval_id);
            put_u32(buf, attempt);
        }
        Command::Consume { worker, eval_id } => {
            put_u8(buf, 1);
            put_u64(buf, worker as u64);
            put_u64(buf, eval_id);
        }
        Command::SuppressDuplicate { worker, eval_id } => {
            put_u8(buf, 2);
            put_u64(buf, worker as u64);
            put_u64(buf, eval_id);
        }
        Command::Ping { worker } => {
            put_u8(buf, 3);
            put_u64(buf, worker as u64);
        }
        Command::RetireWorker { worker } => {
            put_u8(buf, 4);
            put_u64(buf, worker as u64);
        }
        Command::Abandon { eval_id } => {
            put_u8(buf, 5);
            put_u64(buf, eval_id);
        }
        Command::RearmHeartbeat => put_u8(buf, 6),
        Command::Finish => put_u8(buf, 7),
    }
}

fn decode_command(r: &mut Reader<'_>) -> Result<Command, DecodeError> {
    match r.u8()? {
        0 => Ok(Command::Dispatch {
            worker: r.usize_field()?,
            eval_id: r.u64()?,
            attempt: r.u32()?,
        }),
        1 => Ok(Command::Consume {
            worker: r.usize_field()?,
            eval_id: r.u64()?,
        }),
        2 => Ok(Command::SuppressDuplicate {
            worker: r.usize_field()?,
            eval_id: r.u64()?,
        }),
        3 => Ok(Command::Ping {
            worker: r.usize_field()?,
        }),
        4 => Ok(Command::RetireWorker {
            worker: r.usize_field()?,
        }),
        5 => Ok(Command::Abandon { eval_id: r.u64()? }),
        6 => Ok(Command::RearmHeartbeat),
        7 => Ok(Command::Finish),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn encode_event(buf: &mut Vec<u8>, evt: &Event) {
    match *evt {
        Event::ResultArrived {
            worker,
            eval_id,
            at,
        } => {
            put_u8(buf, 0);
            put_u64(buf, worker as u64);
            put_u64(buf, eval_id);
            put_f64(buf, at);
        }
        Event::DeadlineFired {
            eval_id,
            worker,
            deadline_bits,
            at,
        } => {
            put_u8(buf, 1);
            put_u64(buf, eval_id);
            put_u64(buf, worker as u64);
            put_u64(buf, deadline_bits);
            put_f64(buf, at);
        }
        Event::HeartbeatTick { at } => {
            put_u8(buf, 2);
            put_f64(buf, at);
        }
        Event::WorkerDied {
            worker,
            at,
            will_respawn,
            lost_eval,
        } => {
            put_u8(buf, 3);
            put_u64(buf, worker as u64);
            put_f64(buf, at);
            put_bool(buf, will_respawn);
            match lost_eval {
                None => put_u8(buf, 0),
                Some(id) => {
                    put_u8(buf, 1);
                    put_u64(buf, id);
                }
            }
        }
        Event::WorkerRespawned { worker, at } => {
            put_u8(buf, 4);
            put_u64(buf, worker as u64);
            put_f64(buf, at);
        }
    }
}

fn decode_event(r: &mut Reader<'_>) -> Result<Event, DecodeError> {
    match r.u8()? {
        0 => Ok(Event::ResultArrived {
            worker: r.usize_field()?,
            eval_id: r.u64()?,
            at: r.f64()?,
        }),
        1 => Ok(Event::DeadlineFired {
            eval_id: r.u64()?,
            worker: r.usize_field()?,
            deadline_bits: r.u64()?,
            at: r.f64()?,
        }),
        2 => Ok(Event::HeartbeatTick { at: r.f64()? }),
        3 => Ok(Event::WorkerDied {
            worker: r.usize_field()?,
            at: r.f64()?,
            will_respawn: r.bool()?,
            lost_eval: match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                t => return Err(DecodeError::BadTag(t)),
            },
        }),
        4 => Ok(Event::WorkerRespawned {
            worker: r.usize_field()?,
            at: r.f64()?,
        }),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn encode_payload(buf: &mut Vec<u8>, msg: &Msg) {
    match *msg {
        Msg::Hello { worker } => {
            put_u8(buf, TAG_HELLO);
            put_u64(buf, worker);
        }
        Msg::Welcome {
            worker,
            ref problem,
            eval_delay_us,
        } => {
            put_u8(buf, TAG_WELCOME);
            put_u64(buf, worker);
            put_str(buf, problem);
            put_u64(buf, eval_delay_us);
        }
        Msg::Work {
            eval_id,
            attempt,
            seq,
            ref variables,
            ref ctx,
        } => {
            put_u8(buf, TAG_WORK);
            put_u64(buf, eval_id);
            put_u32(buf, attempt);
            put_u64(buf, seq);
            put_f64s(buf, variables);
            put_ctx(buf, ctx);
        }
        Msg::Outcome {
            worker,
            eval_id,
            attempt,
            ref objectives,
            ref constraints,
            ref ctx,
        } => {
            put_u8(buf, TAG_OUTCOME);
            put_u64(buf, worker);
            put_u64(buf, eval_id);
            put_u32(buf, attempt);
            put_f64s(buf, objectives);
            put_f64s(buf, constraints);
            put_ctx(buf, ctx);
        }
        Msg::Heartbeat { worker, ref ctx } => {
            put_u8(buf, TAG_HEARTBEAT);
            put_u64(buf, worker);
            put_ctx(buf, ctx);
        }
        Msg::Shutdown => put_u8(buf, TAG_SHUTDOWN),
        Msg::Cmd(ref cmd) => {
            put_u8(buf, TAG_CMD);
            encode_command(buf, cmd);
        }
        Msg::Evt(ref evt) => {
            put_u8(buf, TAG_EVT);
            encode_event(buf, evt);
        }
        Msg::Tap { seq, at, ref jsonl } => {
            put_u8(buf, TAG_TAP);
            put_u64(buf, seq);
            put_f64(buf, at);
            put_str(buf, jsonl);
        }
    }
}

fn decode_payload(payload: &[u8]) -> Result<Msg, DecodeError> {
    let mut r = Reader::new(payload);
    let msg = match r.u8()? {
        TAG_HELLO => Msg::Hello { worker: r.u64()? },
        TAG_WELCOME => Msg::Welcome {
            worker: r.u64()?,
            problem: r.string()?,
            eval_delay_us: r.u64()?,
        },
        TAG_WORK => Msg::Work {
            eval_id: r.u64()?,
            attempt: r.u32()?,
            seq: r.u64()?,
            variables: r.f64s()?,
            ctx: read_ctx(&mut r)?,
        },
        TAG_OUTCOME => Msg::Outcome {
            worker: r.u64()?,
            eval_id: r.u64()?,
            attempt: r.u32()?,
            objectives: r.f64s()?,
            constraints: r.f64s()?,
            ctx: read_ctx(&mut r)?,
        },
        TAG_HEARTBEAT => Msg::Heartbeat {
            worker: r.u64()?,
            ctx: read_ctx(&mut r)?,
        },
        TAG_SHUTDOWN => Msg::Shutdown,
        TAG_CMD => Msg::Cmd(decode_command(&mut r)?),
        TAG_EVT => Msg::Evt(decode_event(&mut r)?),
        TAG_TAP => Msg::Tap {
            seq: r.u64()?,
            at: r.f64()?,
            jsonl: r.string()?,
        },
        t => return Err(DecodeError::BadTag(t)),
    };
    r.finish()?;
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Encodes `msg` into a complete frame (header + payload).
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_payload(&mut payload, msg);
    debug_assert!(payload.len() <= MAX_PAYLOAD, "frame payload exceeds cap");
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.push(VERSION);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds a valid prefix of a frame
/// and more bytes are needed (streaming case); `Ok(Some((msg, n)))`
/// consumes `n` bytes. Header fields are validated as soon as they are
/// present — a bad magic, version, or oversized length is reported
/// before the rest of the frame arrives.
pub fn decode(buf: &[u8]) -> Result<Option<(Msg, usize)>, DecodeError> {
    if buf.len() >= 4 {
        let mut m = [0u8; 4];
        m.copy_from_slice(&buf[..4]);
        let magic = u32::from_le_bytes(m);
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
    }
    if buf.len() >= 5 && buf[4] != VERSION {
        return Err(DecodeError::BadVersion(buf[4]));
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let mut b4 = [0u8; 4];
    b4.copy_from_slice(&buf[5..9]);
    let len = u32::from_le_bytes(b4);
    if len as usize > MAX_PAYLOAD {
        return Err(DecodeError::Oversized(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    b4.copy_from_slice(&buf[9..13]);
    let expected = u32::from_le_bytes(b4);
    let payload = &buf[HEADER_LEN..total];
    let found = fnv1a(payload);
    if found != expected {
        return Err(DecodeError::BadChecksum { expected, found });
    }
    let msg = decode_payload(payload)?;
    Ok(Some((msg, total)))
}

/// Decodes a buffer that must hold exactly one complete frame — what a
/// connection does at EOF, where "more bytes" can never arrive. An
/// incomplete frame is [`DecodeError::Truncated`]; bytes after the frame
/// are [`DecodeError::TrailingBytes`].
pub fn decode_complete(buf: &[u8]) -> Result<Msg, DecodeError> {
    match decode(buf)? {
        None => Err(DecodeError::Truncated),
        Some((msg, n)) if n == buf.len() => Ok(msg),
        Some((_, n)) => Err(DecodeError::TrailingBytes(buf.len() - n)),
    }
}

/// Incremental frame assembler for a byte stream: `feed` raw socket
/// reads in, pull complete messages out with `next`. A decode error
/// poisons the stream (the caller must drop the connection — framing
/// cannot resynchronize after corruption).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing; keeps the buffer at
        // O(one frame) regardless of connection lifetime.
        if self.start > 0 && (self.start >= self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete message, if one is buffered.
    pub fn next_msg(&mut self) -> Result<Option<Msg>, DecodeError> {
        match decode(&self.buf[self.start..])? {
            None => Ok(None),
            Some((msg, n)) => {
                self.start += n;
                Ok(Some(msg))
            }
        }
    }

    /// Bytes buffered but not yet decoded (nonzero at EOF means the
    /// stream ended mid-frame).
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<Msg> {
        vec![
            Msg::Hello { worker: UNASSIGNED },
            Msg::Welcome {
                worker: 3,
                problem: "dtlz2-5".to_string(),
                eval_delay_us: 250,
            },
            Msg::Work {
                eval_id: 42,
                attempt: 1,
                seq: 7,
                // Include a non-default NaN payload: bit patterns must
                // survive the wire verbatim.
                variables: vec![0.25, -1.5, f64::from_bits(0x7ff8_0000_0000_0001), 0.0],
                ctx: None,
            },
            Msg::Work {
                eval_id: 43,
                attempt: 0,
                seq: 8,
                variables: vec![0.5],
                ctx: Some(TraceCtx {
                    trace_id: 43,
                    parent_span: 43 << 16,
                    sent_at: 1.25,
                }),
            },
            Msg::Outcome {
                worker: 2,
                eval_id: 42,
                attempt: 1,
                objectives: vec![1.0, 2.0, 3.0],
                constraints: vec![],
                ctx: None,
            },
            Msg::Outcome {
                worker: 2,
                eval_id: 43,
                attempt: 0,
                objectives: vec![0.5],
                constraints: vec![0.0],
                ctx: Some(TraceCtx {
                    trace_id: 43,
                    parent_span: (43 << 16) | 2,
                    sent_at: -0.0,
                }),
            },
            Msg::Heartbeat {
                worker: 9,
                ctx: None,
            },
            Msg::Heartbeat {
                worker: 9,
                ctx: Some(TraceCtx {
                    trace_id: 12,
                    parent_span: 0,
                    sent_at: 0.125,
                }),
            },
            Msg::Shutdown,
            Msg::Tap {
                seq: 3,
                at: 2.5,
                jsonl: "{\"type\":\"counter\",\"name\":\"net.frames_sent\",\"value\":1}\n"
                    .to_string(),
            },
            Msg::Cmd(Command::Dispatch {
                worker: 1,
                eval_id: 10,
                attempt: 0,
            }),
            Msg::Evt(Event::WorkerDied {
                worker: 4,
                at: 1.5,
                will_respawn: true,
                lost_eval: Some(99),
            }),
        ]
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn round_trips_every_sample_message() {
        for msg in sample_msgs() {
            let frame = encode(&msg);
            let back = decode_complete(&frame).unwrap();
            match (&msg, &back) {
                // NaN payloads break PartialEq; compare variable bits.
                (
                    Msg::Work {
                        variables: a,
                        eval_id: ia,
                        attempt: aa,
                        seq: sa,
                        ctx: ca,
                    },
                    Msg::Work {
                        variables: b,
                        eval_id: ib,
                        attempt: ab,
                        seq: sb,
                        ctx: cb,
                    },
                ) => {
                    assert_eq!((ia, aa, sa), (ib, ab, sb));
                    assert_eq!(bits(a), bits(b));
                    assert_eq!(ca, cb);
                }
                _ => assert_eq!(msg, back),
            }
        }
    }

    #[test]
    fn streaming_reader_reassembles_split_frames() {
        let msgs = sample_msgs();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode(m));
        }
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        // Feed one byte at a time: worst-case fragmentation.
        for &b in &wire {
            reader.feed(&[b]);
            while let Some(m) = reader.next_msg().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out.len(), msgs.len());
        assert_eq!(reader.pending_len(), 0);
    }

    #[test]
    fn bad_magic_is_rejected_before_full_header() {
        let err = decode(&[0xde, 0xad, 0xbe, 0xef]).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic(_)));
    }

    #[test]
    fn oversized_length_is_rejected_without_buffering_payload() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.push(VERSION);
        frame.extend_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        // Only the header is present: the length check must fire before
        // any attempt to wait for (or allocate) the bogus payload.
        assert_eq!(
            decode(&frame).unwrap_err(),
            DecodeError::Oversized(MAX_PAYLOAD as u32 + 1)
        );
    }

    #[test]
    fn corrupt_inner_vector_length_cannot_overallocate() {
        // A Work frame whose variable count claims 2^30 entries but whose
        // payload holds none: decode must fail on the length check.
        let mut payload = Vec::new();
        put_u8(&mut payload, TAG_WORK);
        put_u64(&mut payload, 1);
        put_u32(&mut payload, 0);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 1 << 30);
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.push(VERSION);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert_eq!(decode_complete(&frame).unwrap_err(), DecodeError::BadLength);
    }

    #[test]
    fn truncated_frame_errors_at_eof_but_streams_cleanly() {
        let frame = encode(&Msg::Shutdown);
        let cut = &frame[..frame.len() - 1];
        // Streaming: a prefix just means "more bytes coming".
        assert_eq!(decode(cut).unwrap(), None);
        // EOF: the same prefix is an error.
        assert_eq!(decode_complete(cut).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn context_free_frames_match_the_legacy_wire_bytes() {
        // A pre-TraceCtx peer encodes Work/Outcome/Heartbeat with no
        // trailer. Build those byte sequences by hand and check (a) they
        // decode to `ctx: None`, (b) our own `ctx: None` encoding is
        // byte-identical — interop holds in both directions.
        let mut legacy = Vec::new();
        put_u8(&mut legacy, TAG_HEARTBEAT);
        put_u64(&mut legacy, 5);
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.push(VERSION);
        frame.extend_from_slice(&(legacy.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&legacy).to_le_bytes());
        frame.extend_from_slice(&legacy);
        assert_eq!(
            decode_complete(&frame).unwrap(),
            Msg::Heartbeat {
                worker: 5,
                ctx: None
            }
        );
        assert_eq!(
            encode(&Msg::Heartbeat {
                worker: 5,
                ctx: None
            }),
            frame
        );

        // A garbage marker byte after the fixed fields is rejected, not
        // misread as data.
        let mut bad = legacy.clone();
        put_u8(&mut bad, 7);
        let mut bad_frame = Vec::new();
        bad_frame.extend_from_slice(&MAGIC.to_le_bytes());
        bad_frame.push(VERSION);
        bad_frame.extend_from_slice(&(bad.len() as u32).to_le_bytes());
        bad_frame.extend_from_slice(&fnv1a(&bad).to_le_bytes());
        bad_frame.extend_from_slice(&bad);
        assert_eq!(
            decode_complete(&bad_frame).unwrap_err(),
            DecodeError::BadTag(7)
        );
    }

    #[test]
    fn trace_ctx_survives_the_wire_bit_exactly() {
        let ctx = TraceCtx {
            trace_id: u64::MAX,
            parent_span: 0xDEAD_BEEF,
            sent_at: f64::from_bits(0x7ff8_0000_0000_0042),
        };
        let frame = encode(&Msg::Heartbeat {
            worker: 1,
            ctx: Some(ctx),
        });
        match decode_complete(&frame).unwrap() {
            Msg::Heartbeat {
                worker: 1,
                ctx: Some(back),
            } => {
                assert_eq!(back.trace_id, ctx.trace_id);
                assert_eq!(back.parent_span, ctx.parent_span);
                assert_eq!(back.sent_at.to_bits(), ctx.sent_at.to_bits());
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn payload_corruption_is_always_detected() {
        let frame = encode(&Msg::Heartbeat {
            worker: 7,
            ctx: None,
        });
        for i in HEADER_LEN..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    decode_complete(&bad).is_err(),
                    "flip of payload byte {i} bit {bit} went undetected"
                );
            }
        }
    }
}
