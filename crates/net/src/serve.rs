//! The real-clock networked master: drives the shared
//! `borg_protocol::MasterEngine` over live sockets.
//!
//! Mirrors the real-thread executor (`borg_parallel::threads`) with the
//! channel pair replaced by framed socket connections: per-connection
//! reader threads translate wire frames into notes, the master loop
//! translates notes into protocol [`Event`]s, and the engine decides
//! everything else (deadline reissue, duplicate suppression by eval id,
//! worker retirement). Worker death is detected two ways — connection
//! EOF (a `SIGKILL`ed process closes its socket) and wire-heartbeat
//! staleness (a hung-but-connected peer) — and both feed the engine's
//! existing recovery machinery via [`Event::WorkerDied`].

use crate::codec::{self, Msg, TraceCtx};
use crate::metrics;
use crate::transport::{Conn, NetAddr, NetError, NetListener, NetStream};
use borg_core::algorithm::{BorgConfig, BorgEngine, Candidate};
use borg_core::problem::Problem;
use borg_core::rng::SplitMix64;
use borg_desim::fault::{FaultKind, FaultLog};
use borg_obs::{Recorder, TraceEdge, TraceEdgeKind};
use borg_protocol::{Clock, Event, MasterEngine, RecoveryPolicy, Transport};
use crossbeam::channel;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Reissue cap before an evaluation is abandoned (matches the
/// real-thread executor).
const MAX_REISSUES: u32 = 32;

/// How the networked master runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Endpoint to listen on (`tcp:HOST:PORT` / `unix:PATH`).
    pub listen: NetAddr,
    /// Worker registrations to wait for before starting.
    pub workers: usize,
    /// Evaluation budget.
    pub max_nfe: u64,
    /// Engine seed (derived deterministically).
    pub seed: u64,
    /// Problem name announced to workers in `Welcome`.
    pub problem_name: String,
    /// Artificial per-evaluation delay announced to workers (keeps test
    /// runs killable mid-flight). Zero for real runs.
    pub eval_delay: Duration,
    /// Reissue deadline in wall-clock seconds (`None` = never).
    pub reissue_timeout: Option<f64>,
    /// Declare a worker dead after this much wire silence, in seconds
    /// (`INFINITY` = EOF detection only). Must exceed the worst
    /// evaluation time: workers only heartbeat while idle.
    pub heartbeat_timeout: f64,
    /// How long to wait for the pool to register.
    pub register_timeout: Duration,
    /// Per-connection read timeout (also the reader-thread stop tick).
    pub read_timeout: Duration,
}

impl ServeConfig {
    pub fn new(listen: NetAddr, workers: usize, max_nfe: u64, seed: u64) -> Self {
        ServeConfig {
            listen,
            workers,
            max_nfe,
            seed,
            problem_name: "dtlz2-5".to_string(),
            eval_delay: Duration::ZERO,
            reissue_timeout: None,
            heartbeat_timeout: f64::INFINITY,
            register_timeout: Duration::from_secs(20),
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// What a networked run produced.
pub struct ServeReport {
    /// Final engine state (archive, NFE).
    pub engine: BorgEngine,
    /// Wall-clock seconds from pool-ready to budget completion.
    pub elapsed: f64,
    /// Recovery ledger (real deaths are injected as `Crash` records).
    pub fault_log: FaultLog,
    /// Result frames consumed.
    pub wire_results: u64,
    /// Duplicate result frames absorbed.
    pub wire_duplicates: u64,
    /// Heartbeat frames received.
    pub wire_heartbeats: u64,
}

/// A decoded result waiting for the engine to consume it.
struct WireResult {
    worker: usize,
    eval_id: u64,
    attempt: u32,
    objectives: Vec<f64>,
    constraints: Vec<f64>,
    ctx: Option<TraceCtx>,
}

/// What a reader thread tells the master loop.
enum Note {
    Result(WireResult),
    Beat {
        worker: usize,
        ctx: Option<TraceCtx>,
    },
    Dead {
        worker: usize,
    },
}

/// The engine's executor half over live sockets.
struct NetTransport<'a, R: Recorder + ?Sized> {
    start: Instant,
    engine: BorgEngine,
    writers: Vec<Option<NetStream>>,
    candidates: BTreeMap<u64, Candidate>,
    dispatched_at: BTreeMap<u64, f64>,
    /// The evaluation each worker currently holds (shared-pool mode
    /// dispatches one at a time), for fast `lost_eval` reporting on EOF.
    current_eval: Vec<Option<u64>>,
    /// Per-worker dispatch counters, carried in `Work.seq`.
    dispatch_seq: Vec<u64>,
    pending: Option<WireResult>,
    timeout: Option<f64>,
    latched: Option<NetError>,
    wire_results: u64,
    wire_duplicates: u64,
    rec: &'a R,
}

impl<R: Recorder + ?Sized> NetTransport<'_, R> {
    /// Sends a work item toward `worker`'s socket — or any live socket
    /// if that one is gone. The engine's shared-pool discipline treats
    /// dispatch indices as notional (it reissues a dead worker's lost
    /// eval under the dead worker's own index, the way the thread
    /// executor's shared queue lets any survivor pick it up), so the
    /// physical route is ours to choose. Returns the socket actually
    /// written, `None` if nothing could be sent (EOF detection and the
    /// deadline machinery cover the loss).
    fn send_work(
        &mut self,
        worker: usize,
        eval_id: u64,
        attempt: u32,
        variables: Vec<f64>,
    ) -> Option<usize> {
        let target = if self.writers[worker].is_some() {
            worker
        } else {
            self.writers.iter().position(Option::is_some)?
        };
        let seq = self.dispatch_seq[target];
        self.dispatch_seq[target] += 1;
        let now = self.start.elapsed().as_secs_f64();
        let frame = codec::encode(&Msg::Work {
            eval_id,
            attempt,
            seq,
            variables,
            ctx: Some(TraceCtx {
                trace_id: eval_id,
                parent_span: codec::span_id(eval_id, attempt, 0),
                sent_at: now,
            }),
        });
        let stream = self.writers[target].as_mut()?;
        if stream.write_all(&frame).is_ok() {
            self.rec.counter(metrics::DISPATCHES, 1);
            self.rec.counter(metrics::FRAMES_SENT, 1);
            self.rec.counter(metrics::BYTES_SENT, frame.len() as u64);
            self.rec.counter(metrics::TRACE_CTX_SENT, 1);
            self.rec.trace_edge(TraceEdge {
                kind: TraceEdgeKind::DispatchSent,
                trace_id: eval_id,
                eval_id,
                attempt,
                worker: target as u64,
                local_t: now,
                remote_t: 0.0,
            });
            self.rec
                .flight("net.work_sent", now, eval_id, target as u64, attempt.into());
            Some(target)
        } else {
            // The reader thread on this connection will surface the
            // death; until then the deadline machinery covers us.
            self.writers[target] = None;
            None
        }
    }
}

impl<R: Recorder + ?Sized> Clock for NetTransport<'_, R> {
    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl<R: Recorder + ?Sized> Transport for NetTransport<'_, R> {
    fn dispatch(
        &mut self,
        worker: usize,
        eval_id: u64,
        attempt: u32,
        _seq: u64,
        _log: &mut FaultLog,
    ) -> f64 {
        let variables = if attempt == 0 {
            let cand = self.engine.produce();
            let vars = cand.variables.clone();
            self.candidates.insert(eval_id, cand);
            vars
        } else {
            match self.candidates.get(&eval_id) {
                Some(cand) => cand.variables.clone(),
                // Abandoned and re-dispatched? Should not happen; fail
                // open with no deadline rather than panic.
                None => return f64::INFINITY,
            }
        };
        if let Some(target) = self.send_work(worker, eval_id, attempt, variables) {
            // Track the eval on the socket that physically carries it
            // (may differ from the notional index after a death), so a
            // later EOF on that connection reports the right lost eval.
            self.current_eval[target] = Some(eval_id);
        }
        let now = self.now();
        self.dispatched_at.insert(eval_id, now);
        self.timeout.map_or(f64::INFINITY, |t| now + t)
    }

    fn consume(&mut self, worker: usize, eval_id: u64, _ready_at: f64) -> f64 {
        let Some(result) = self.pending.take() else {
            self.latched = Some(NetError::Protocol(format!(
                "engine consumed eval {eval_id} with no wire result staged"
            )));
            return self.now();
        };
        let Some(candidate) = self.candidates.remove(&eval_id) else {
            self.latched = Some(NetError::Protocol(format!(
                "wire result for eval {eval_id} has no produced candidate"
            )));
            return self.now();
        };
        let (attempt, ctx) = (result.attempt, result.ctx);
        let solution = self
            .engine
            .make_solution(candidate, result.objectives, result.constraints);
        self.engine.consume(solution);
        self.current_eval[worker] = None;
        self.wire_results += 1;
        self.rec.counter(metrics::RESULTS, 1);
        let now = self.now();
        if let Some(at) = self.dispatched_at.remove(&eval_id) {
            self.rec.observe(metrics::RTT_SECONDS, now - at);
        }
        // Only *consumed* results close a trace chain: duplicates and
        // late frames never reach here, so the merged trace has exactly
        // one master-consume leg per completed evaluation.
        self.rec.trace_edge(TraceEdge {
            kind: TraceEdgeKind::ResultReceived,
            trace_id: eval_id,
            eval_id,
            attempt,
            worker: worker as u64,
            local_t: now,
            remote_t: ctx.map_or(0.0, |c| c.sent_at),
        });
        self.rec
            .flight("net.result_received", now, eval_id, worker as u64, 0.0);
        now
    }

    fn absorb_duplicate(&mut self, _worker: usize, _eval_id: u64, _ready_at: f64) -> f64 {
        self.pending = None;
        self.wire_duplicates += 1;
        self.rec.counter(metrics::DUPLICATES, 1);
        self.now()
    }

    fn ping(&mut self, _worker: usize) -> (f64, f64) {
        let now = self.now();
        (now, now)
    }

    fn rearm_heartbeat(&mut self, _at: f64) {}

    fn abandon(&mut self, eval_id: u64) {
        self.candidates.remove(&eval_id);
        self.latched = Some(NetError::Protocol(format!(
            "eval {eval_id} exhausted its {MAX_REISSUES} reissues"
        )));
    }

    fn unknown_result(&mut self, _worker: usize, _eval_id: u64) {
        // A result for an id the engine no longer tracks (late duplicate
        // after abandonment): absorb and count, don't fail the run.
        self.pending = None;
        self.wire_duplicates += 1;
        self.rec.counter(metrics::DUPLICATES, 1);
    }
}

/// Waits for `Hello` on a fresh connection (bounded by read timeouts).
fn await_hello(conn: &mut Conn, deadline: Instant) -> Result<u64, NetError> {
    loop {
        match conn.recv()? {
            Some(Msg::Hello { worker }) => return Ok(worker),
            Some(other) => {
                return Err(NetError::Protocol(format!(
                    "expected Hello during registration, got {other:?}"
                )))
            }
            None => {
                if Instant::now() > deadline {
                    return Err(NetError::Protocol(
                        "connection never sent Hello".to_string(),
                    ));
                }
            }
        }
    }
}

/// Accepts and registers the full worker pool. `pub(crate)` so the
/// chaos harness can register proxy-splice connections itself.
pub(crate) fn register_pool(
    listener: &NetListener,
    cfg: &ServeConfig,
) -> Result<Vec<Conn>, NetError> {
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + cfg.register_timeout;
    let mut conns: Vec<Conn> = Vec::with_capacity(cfg.workers);
    while conns.len() < cfg.workers {
        if Instant::now() > deadline {
            return Err(NetError::Protocol(format!(
                "only {}/{} workers registered within {:?}",
                conns.len(),
                cfg.workers,
                cfg.register_timeout
            )));
        }
        let Some(stream) = listener.accept(cfg.read_timeout)? else {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        let mut conn = Conn::new(stream);
        await_hello(&mut conn, deadline)?;
        let worker = conns.len() as u64;
        conn.send(&Msg::Welcome {
            worker,
            problem: cfg.problem_name.clone(),
            eval_delay_us: cfg.eval_delay.as_micros() as u64,
        })?;
        conns.push(conn);
    }
    Ok(conns)
}

/// One connection's reader loop: frames in, notes out. Exits on EOF,
/// decode error, or the stop flag.
fn reader_loop<R: Recorder + ?Sized>(
    mut conn: Conn,
    worker: usize,
    tx: &channel::Sender<Note>,
    stop: &AtomicBool,
    rec: &R,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match conn.recv() {
            Ok(Some(Msg::Outcome {
                eval_id,
                attempt,
                objectives,
                constraints,
                ctx,
                ..
            })) => {
                rec.counter(metrics::FRAMES_RECEIVED, 1);
                if ctx.is_some() {
                    rec.counter(metrics::TRACE_CTX_RECEIVED, 1);
                }
                // Trust the connection index, not the frame's claim.
                let note = Note::Result(WireResult {
                    worker,
                    eval_id,
                    attempt,
                    objectives,
                    constraints,
                    ctx,
                });
                if tx.send(note).is_err() {
                    return;
                }
            }
            Ok(Some(Msg::Heartbeat { ctx, .. })) => {
                rec.counter(metrics::HEARTBEATS, 1);
                if ctx.is_some() {
                    rec.counter(metrics::TRACE_CTX_RECEIVED, 1);
                }
                if tx.send(Note::Beat { worker, ctx }).is_err() {
                    return;
                }
            }
            Ok(Some(_)) => rec.counter(metrics::FRAMES_RECEIVED, 1),
            Ok(None) => {} // read timeout: poll the stop flag again
            Err(e) => {
                if matches!(e, NetError::Decode(_)) {
                    rec.counter(metrics::DECODE_ERRORS, 1);
                }
                let _ = tx.send(Note::Dead { worker });
                return;
            }
        }
    }
}

/// Binds, registers the pool, runs the budget, returns the report.
pub fn serve<P, R>(
    problem: &P,
    borg: BorgConfig,
    cfg: &ServeConfig,
    rec: &R,
) -> Result<ServeReport, NetError>
where
    P: Problem + ?Sized,
    R: Recorder + Sync + ?Sized,
{
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.max_nfe >= 1, "need at least one evaluation");
    let listener = NetListener::bind(&cfg.listen)?;
    let conns = register_pool(&listener, cfg)?;
    serve_registered(problem, borg, cfg, conns, rec)
}

/// [`serve`] with an already-registered pool (the chaos harness
/// registers through its proxy and hands the master-side connections
/// over directly).
pub(crate) fn serve_registered<P, R>(
    problem: &P,
    borg: BorgConfig,
    cfg: &ServeConfig,
    conns: Vec<Conn>,
    rec: &R,
) -> Result<ServeReport, NetError>
where
    P: Problem + ?Sized,
    R: Recorder + Sync + ?Sized,
{
    let workers = conns.len();
    let engine_seed = SplitMix64::new(cfg.seed).derive_seed("net-serve-engine");
    let mut writers = Vec::with_capacity(workers);
    for conn in &conns {
        writers.push(Some(conn.stream().try_clone()?));
    }
    let mut transport = NetTransport {
        start: Instant::now(),
        engine: BorgEngine::new(problem, borg, engine_seed),
        writers,
        candidates: BTreeMap::new(),
        dispatched_at: BTreeMap::new(),
        current_eval: vec![None; workers],
        dispatch_seq: vec![0; workers],
        pending: None,
        timeout: cfg.reissue_timeout,
        latched: None,
        wire_results: 0,
        wire_duplicates: 0,
        rec,
    };
    let mut proto = MasterEngine::new(borg_protocol::EngineConfig::shared_pool_async(
        workers,
        cfg.max_nfe,
        RecoveryPolicy {
            timeout: cfg.reissue_timeout.unwrap_or(f64::INFINITY),
            heartbeat_interval: f64::INFINITY,
            max_reissues: MAX_REISSUES,
        },
    ));
    let (tx, rx) = channel::unbounded::<Note>();
    let stop = AtomicBool::new(false);
    let tick = cfg.reissue_timeout.map_or(Duration::from_millis(50), |t| {
        Duration::from_secs_f64((t / 4.0).clamp(0.001, 0.1))
    });

    let run = std::thread::scope(|scope| -> Result<(f64, u64), NetError> {
        for (worker, conn) in conns.into_iter().enumerate() {
            let tx = tx.clone();
            let stop = &stop;
            scope.spawn(move || reader_loop(conn, worker, &tx, stop, rec));
        }
        drop(tx);

        let result = drive_master(&mut proto, &mut transport, &rx, cfg, workers, tick, rec);

        // Orderly teardown regardless of outcome: tell live workers the
        // run is over, then sever every connection so blocked reader
        // threads return immediately and the scope join cannot hang.
        let shutdown_frame = codec::encode(&Msg::Shutdown);
        for writer in transport.writers.iter_mut().flatten() {
            let _ = writer.write_all(&shutdown_frame);
        }
        stop.store(true, Ordering::SeqCst);
        for writer in transport.writers.iter().flatten() {
            writer.shutdown();
        }
        result
    });
    let (elapsed, wire_heartbeats) = run?;

    let mut fault_log = proto.into_log();
    fault_log.finalize(elapsed);
    rec.gauge("master.busy_seconds", elapsed);
    rec.gauge("master.utilization", 1.0);
    rec.counter(
        "archive.box_probes",
        transport.engine.archive().box_probes(),
    );
    Ok(ServeReport {
        engine: transport.engine,
        elapsed,
        fault_log,
        wire_results: transport.wire_results,
        wire_duplicates: transport.wire_duplicates,
        wire_heartbeats,
    })
}

/// The note→event pump. Split out so teardown runs on every exit path.
#[allow(clippy::too_many_arguments)]
fn drive_master<R: Recorder + Sync + ?Sized>(
    proto: &mut MasterEngine,
    transport: &mut NetTransport<'_, R>,
    rx: &channel::Receiver<Note>,
    cfg: &ServeConfig,
    workers: usize,
    tick: Duration,
    rec: &R,
) -> Result<(f64, u64), NetError> {
    let mut alive = vec![true; workers];
    let mut last_seen = vec![transport.now(); workers];
    let mut wire_heartbeats = 0u64;

    proto.seed(transport, rec);
    if let Some(err) = transport.latched.take() {
        return Err(err);
    }

    while !proto.finished() {
        if alive.iter().all(|a| !*a) {
            return Err(NetError::AllWorkersLost {
                completed: transport.engine.nfe(),
                target: cfg.max_nfe,
            });
        }
        let note = match rx.recv_timeout(tick) {
            Ok(note) => note,
            Err(channel::RecvTimeoutError::Timeout) => {
                let now = transport.now();
                for (eval_id, worker, deadline_bits) in proto.expired_deadlines(now) {
                    proto.handle(
                        Event::DeadlineFired {
                            eval_id,
                            worker,
                            deadline_bits,
                            at: now,
                        },
                        transport,
                        rec,
                    );
                    if let Some(err) = transport.latched.take() {
                        return Err(err);
                    }
                }
                if cfg.heartbeat_timeout.is_finite() {
                    for worker in 0..workers {
                        if alive[worker] && now - last_seen[worker] > cfg.heartbeat_timeout {
                            alive[worker] = false;
                            declare_dead(proto, transport, worker, FaultKind::Hang, rec);
                            if let Some(err) = transport.latched.take() {
                                return Err(err);
                            }
                        }
                    }
                }
                continue;
            }
            Err(channel::RecvTimeoutError::Disconnected) => {
                return Err(NetError::AllWorkersLost {
                    completed: transport.engine.nfe(),
                    target: cfg.max_nfe,
                });
            }
        };
        match note {
            Note::Result(result) => {
                let (worker, eval_id) = (result.worker, result.eval_id);
                if !alive[worker] {
                    // A result from a worker already declared dead:
                    // stale by definition (its eval was reissued).
                    continue;
                }
                let at = transport.now();
                last_seen[worker] = at;
                transport.pending = Some(result);
                proto.handle(
                    Event::ResultArrived {
                        worker,
                        eval_id,
                        at,
                    },
                    transport,
                    rec,
                );
                transport.pending = None;
                if let Some(err) = transport.latched.take() {
                    return Err(err);
                }
            }
            Note::Beat { worker, ctx } => {
                wire_heartbeats += 1;
                last_seen[worker] = transport.now();
                // A heartbeat carrying a context is a clock probe: echo
                // it back with the probe's send time preserved in
                // `parent_span` (bit pattern) plus our own clock, so the
                // worker can compute RTT and clock offset. Written from
                // this thread only — the single-writer discipline keeps
                // frames from interleaving with dispatches.
                if let Some(probe) = ctx {
                    let echo = codec::encode(&Msg::Heartbeat {
                        worker: worker as u64,
                        ctx: Some(TraceCtx {
                            trace_id: probe.trace_id,
                            parent_span: probe.sent_at.to_bits(),
                            sent_at: transport.now(),
                        }),
                    });
                    if let Some(stream) = transport.writers[worker].as_mut() {
                        if stream.write_all(&echo).is_ok() {
                            rec.counter(metrics::TRACE_PROBE_ECHOES, 1);
                            rec.counter(metrics::FRAMES_SENT, 1);
                            rec.counter(metrics::BYTES_SENT, echo.len() as u64);
                        } else {
                            transport.writers[worker] = None;
                        }
                    }
                }
            }
            Note::Dead { worker } => {
                if alive[worker] {
                    alive[worker] = false;
                    declare_dead(proto, transport, worker, FaultKind::Crash, rec);
                    if let Some(err) = transport.latched.take() {
                        return Err(err);
                    }
                }
            }
        }
    }
    Ok((transport.now(), wire_heartbeats))
}

/// Records a physically observed death in the ledger and lets the
/// engine's recovery machinery (retire + immediate reissue of the lost
/// evaluation) act on it.
fn declare_dead<R: Recorder + Sync + ?Sized>(
    proto: &mut MasterEngine,
    transport: &mut NetTransport<'_, R>,
    worker: usize,
    kind: FaultKind,
    rec: &R,
) {
    let at = transport.now();
    let lost_eval = transport.current_eval[worker];
    proto
        .log_mut()
        .inject(kind, worker, lost_eval.unwrap_or(0), at);
    transport.writers[worker] = None;
    rec.counter(metrics::WORKER_DEATHS, 1);
    rec.flight(
        "net.worker_death",
        at,
        worker as u64,
        lost_eval.unwrap_or(u64::MAX),
        match kind {
            FaultKind::Hang => 1.0,
            _ => 0.0,
        },
    );
    proto.handle(
        Event::WorkerDied {
            worker,
            at,
            will_respawn: false,
            lost_eval,
        },
        transport,
        rec,
    );
}
