//! Socket plumbing: address parsing, TCP/Unix listeners and streams,
//! bounded-exponential reconnect backoff, and the framed [`Conn`].
//!
//! This module is the only place in the crate that opens raw sockets —
//! every connection acquired here has a read timeout installed before it
//! is handed out, so no blocking read in the crate can stall forever
//! (the wire half of rule BORG-L013).

use crate::codec::{self, DecodeError, FrameReader, Msg};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Everything that can go wrong on the wire. Socket I/O in this crate
/// never panics: every failure surfaces here.
#[derive(Debug)]
pub enum NetError {
    /// An OS-level socket error, with where it happened.
    Io {
        context: &'static str,
        kind: ErrorKind,
        detail: String,
    },
    /// The peer sent bytes that do not decode.
    Decode(DecodeError),
    /// The peer sent a well-formed frame the protocol does not allow
    /// here (e.g. a `Work` frame before registration).
    Protocol(String),
    /// Reconnect gave up after exhausting its bounded backoff schedule.
    ConnectFailed { attempts: u32, last: String },
    /// An address string did not parse (`tcp:HOST:PORT` / `unix:PATH`).
    BadAddr(String),
    /// A result the master was blocked on never arrived.
    ResultTimeout { eval_id: u64, waited: Duration },
    /// The peer closed the connection mid-conversation.
    Disconnected { context: &'static str },
    /// Every worker died (or never registered) before the evaluation
    /// budget completed.
    AllWorkersLost { completed: u64, target: u64 },
}

impl NetError {
    pub(crate) fn io(context: &'static str, err: &std::io::Error) -> Self {
        NetError::Io {
            context,
            kind: err.kind(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io {
                context,
                kind,
                detail,
            } => write!(f, "socket error during {context}: {kind:?}: {detail}"),
            NetError::Decode(e) => write!(f, "wire decode error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::ConnectFailed { attempts, last } => {
                write!(f, "connect failed after {attempts} attempts: {last}")
            }
            NetError::BadAddr(s) => {
                write!(f, "bad address {s:?} (expected tcp:HOST:PORT or unix:PATH)")
            }
            NetError::ResultTimeout { eval_id, waited } => {
                write!(
                    f,
                    "result for eval {eval_id} not received within {waited:?}"
                )
            }
            NetError::Disconnected { context } => {
                write!(f, "peer disconnected during {context}")
            }
            NetError::AllWorkersLost { completed, target } => {
                write!(f, "all workers lost after {completed}/{target} evaluations")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        NetError::Decode(e)
    }
}

/// A transport endpoint: `tcp:HOST:PORT` or `unix:PATH`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAddr {
    Tcp(String),
    Unix(PathBuf),
}

impl NetAddr {
    /// Parses the `tcp:`/`unix:` prefix syntax used on the CLI.
    pub fn parse(s: &str) -> Result<Self, NetError> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err(NetError::BadAddr(s.to_string()));
            }
            Ok(NetAddr::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err(NetError::BadAddr(s.to_string()));
            }
            Ok(NetAddr::Unix(PathBuf::from(rest)))
        } else {
            Err(NetError::BadAddr(s.to_string()))
        }
    }
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetAddr::Tcp(hp) => write!(f, "tcp:{hp}"),
            NetAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A bound listener over either address family.
pub enum NetListener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl NetListener {
    /// Binds `addr`. For Unix sockets a stale path from a previous run
    /// is removed first (bind fails otherwise).
    pub fn bind(addr: &NetAddr) -> Result<Self, NetError> {
        match addr {
            NetAddr::Tcp(hp) => TcpListener::bind(hp.as_str())
                .map(NetListener::Tcp)
                .map_err(|e| NetError::io("tcp bind", &e)),
            NetAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path).map_err(|e| NetError::io("unix unlink", &e))?;
                }
                UnixListener::bind(path)
                    .map(NetListener::Unix)
                    .map_err(|e| NetError::io("unix bind", &e))
            }
        }
    }

    /// The actual bound address (resolves `tcp:127.0.0.1:0` to the real
    /// ephemeral port so tests can connect to it).
    pub fn local_addr(&self) -> Result<NetAddr, NetError> {
        match self {
            NetListener::Tcp(l) => l
                .local_addr()
                .map(|a| NetAddr::Tcp(a.to_string()))
                .map_err(|e| NetError::io("tcp local_addr", &e)),
            NetListener::Unix(l) => {
                let addr = l
                    .local_addr()
                    .map_err(|e| NetError::io("unix local_addr", &e))?;
                match addr.as_pathname() {
                    Some(p) => Ok(NetAddr::Unix(p.to_path_buf())),
                    None => Err(NetError::Protocol("unnamed unix listener".to_string())),
                }
            }
        }
    }

    /// Puts the listener in non-blocking mode (the accept loops poll a
    /// shutdown flag between attempts instead of blocking forever).
    pub fn set_nonblocking(&self, nonblocking: bool) -> Result<(), NetError> {
        match self {
            NetListener::Tcp(l) => l.set_nonblocking(nonblocking),
            NetListener::Unix(l) => l.set_nonblocking(nonblocking),
        }
        .map_err(|e| NetError::io("set_nonblocking", &e))
    }

    /// Accepts one connection and installs `read_timeout` on it before
    /// returning. In non-blocking mode `Ok(None)` means "nobody there".
    pub fn accept(&self, read_timeout: Duration) -> Result<Option<NetStream>, NetError> {
        let stream = match self {
            NetListener::Tcp(l) => match l.accept() {
                Ok((s, _)) => NetStream::Tcp(s),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(NetError::io("tcp accept", &e)),
            },
            NetListener::Unix(l) => match l.accept() {
                Ok((s, _)) => NetStream::Unix(s),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(NetError::io("unix accept", &e)),
            },
        };
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Some(stream))
    }
}

/// A connected socket over either address family.
#[derive(Debug)]
pub enum NetStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl NetStream {
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), NetError> {
        match self {
            NetStream::Tcp(s) => s.set_read_timeout(timeout),
            NetStream::Unix(s) => s.set_read_timeout(timeout),
        }
        .map_err(|e| NetError::io("set_read_timeout", &e))
    }

    pub fn set_nonblocking(&self, nonblocking: bool) -> Result<(), NetError> {
        match self {
            NetStream::Tcp(s) => s.set_nonblocking(nonblocking),
            NetStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
        .map_err(|e| NetError::io("set_nonblocking", &e))
    }

    /// Clones the OS handle (reader and writer halves can then live on
    /// different threads).
    pub fn try_clone(&self) -> Result<NetStream, NetError> {
        match self {
            NetStream::Tcp(s) => s.try_clone().map(NetStream::Tcp),
            NetStream::Unix(s) => s.try_clone().map(NetStream::Unix),
        }
        .map_err(|e| NetError::io("try_clone", &e))
    }

    /// Shuts down both directions; concurrent blocked reads return EOF.
    pub fn shutdown(&self) {
        // Best-effort: the peer may already be gone.
        let _ = match self {
            NetStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            NetStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            NetStream::Unix(s) => s.flush(),
        }
    }
}

/// Bounded exponential reconnect backoff: `base · 2^attempt`, capped at
/// `cap`, for at most `max_attempts` attempts — then gives up. Bounding
/// both the delay and the attempt count guarantees every reconnect loop
/// in the crate terminates.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    pub base: Duration,
    pub cap: Duration,
    pub max_attempts: u32,
    attempt: u32,
}

impl Backoff {
    pub fn new(base: Duration, cap: Duration, max_attempts: u32) -> Self {
        Backoff {
            base,
            cap,
            max_attempts,
            attempt: 0,
        }
    }

    /// Default schedule: 2 ms, 4 ms, … capped at 250 ms, 12 attempts
    /// (≈2.5 s total) — long enough to ride out a chaos-proxy connection
    /// reset, short enough that orphaned workers exit promptly.
    pub fn default_schedule() -> Self {
        Backoff::new(Duration::from_millis(2), Duration::from_millis(250), 12)
    }

    /// The delay to sleep before the next attempt, or `None` when the
    /// schedule is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        let shift = self.attempt.min(16);
        let delay = self
            .base
            .checked_mul(1u32 << shift)
            .map_or(self.cap, |d| d.min(self.cap));
        self.attempt += 1;
        Some(delay)
    }

    /// Restarts the schedule (after a successful connection).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

/// One connect attempt with the read deadline installed before the
/// stream is handed anywhere (the BORG-L013 contract: acquisition and
/// timeout guard live in the same place).
fn connect_once(addr: &NetAddr, read_timeout: Duration) -> std::io::Result<NetStream> {
    let stream = match addr {
        NetAddr::Tcp(hp) => TcpStream::connect(hp.as_str()).map(NetStream::Tcp)?,
        NetAddr::Unix(path) => UnixStream::connect(path).map(NetStream::Unix)?,
    };
    match &stream {
        NetStream::Tcp(s) => s.set_read_timeout(Some(read_timeout))?,
        NetStream::Unix(s) => s.set_read_timeout(Some(read_timeout))?,
    }
    Ok(stream)
}

/// Connects to `addr`, retrying on the given backoff schedule, and
/// installs `read_timeout` before returning. The first attempt is
/// immediate; each failure sleeps the next backoff delay.
pub fn connect_with_backoff(
    addr: &NetAddr,
    backoff: &mut Backoff,
    read_timeout: Duration,
) -> Result<NetStream, NetError> {
    loop {
        let last = match connect_once(addr, read_timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => e.to_string(),
        };
        match backoff.next_delay() {
            Some(delay) => std::thread::sleep(delay),
            None => {
                return Err(NetError::ConnectFailed {
                    attempts: backoff.attempts(),
                    last,
                })
            }
        }
    }
}

/// A framed, timeout-guarded connection: writes whole frames, reads
/// whole messages.
pub struct Conn {
    stream: NetStream,
    reader: FrameReader,
    scratch: [u8; 4096],
}

impl Conn {
    /// Wraps a stream that already has its read timeout installed
    /// (listener `accept` and `connect_with_backoff` both guarantee it).
    pub fn new(stream: NetStream) -> Self {
        Conn {
            stream,
            reader: FrameReader::new(),
            scratch: [0u8; 4096],
        }
    }

    pub fn stream(&self) -> &NetStream {
        &self.stream
    }

    /// Encodes and writes one frame. Returns the frame size in bytes.
    pub fn send(&mut self, msg: &Msg) -> Result<usize, NetError> {
        let frame = codec::encode(msg);
        self.stream
            .write_all(&frame)
            .map_err(|e| NetError::io("frame write", &e))?;
        Ok(frame.len())
    }

    /// Reads until one complete message is available or the read timeout
    /// elapses. `Ok(None)` = timeout (no partial message consumed);
    /// `Err(Disconnected)` = orderly EOF; decode errors poison the
    /// connection and the caller must drop it.
    pub fn recv(&mut self) -> Result<Option<Msg>, NetError> {
        loop {
            if let Some(msg) = self.reader.next_msg()? {
                return Ok(Some(msg));
            }
            let n = match self.stream.read(&mut self.scratch) {
                Ok(0) => {
                    if self.reader.pending_len() > 0 {
                        return Err(NetError::Decode(DecodeError::Truncated));
                    }
                    return Err(NetError::Disconnected {
                        context: "frame read",
                    });
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(NetError::io("frame read", &e)),
            };
            self.reader.feed(&self.scratch[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parse_round_trips() {
        let tcp = NetAddr::parse("tcp:127.0.0.1:7070").unwrap();
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:7070");
        let unix = NetAddr::parse("unix:/tmp/x.sock").unwrap();
        assert_eq!(unix.to_string(), "unix:/tmp/x.sock");
        assert!(NetAddr::parse("udp:nope").is_err());
        assert!(NetAddr::parse("tcp:").is_err());
        assert!(NetAddr::parse("unix:").is_err());
    }

    #[test]
    fn backoff_is_bounded_in_delay_and_attempts() {
        let mut b = Backoff::new(Duration::from_millis(2), Duration::from_millis(16), 8);
        let delays: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 8);
        assert_eq!(delays[0], Duration::from_millis(2));
        assert_eq!(delays[1], Duration::from_millis(4));
        assert!(delays.iter().all(|d| *d <= Duration::from_millis(16)));
        assert_eq!(b.next_delay(), None);
        b.reset();
        assert_eq!(b.next_delay(), Some(Duration::from_millis(2)));
    }

    #[test]
    fn connect_with_backoff_gives_up_cleanly() {
        let addr = NetAddr::Unix(PathBuf::from("/nonexistent/borg-net-test.sock"));
        let mut backoff = Backoff::new(Duration::from_micros(10), Duration::from_micros(50), 3);
        let err = connect_with_backoff(&addr, &mut backoff, Duration::from_millis(10));
        assert!(matches!(
            err,
            Err(NetError::ConnectFailed { attempts: 3, .. })
        ));
    }

    #[test]
    fn framed_conn_round_trips_over_a_real_socket_pair() {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        b.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut left = Conn::new(NetStream::Unix(a));
        let mut right = Conn::new(NetStream::Unix(b));
        left.send(&Msg::Heartbeat {
            worker: 5,
            ctx: None,
        })
        .unwrap();
        let got = right.recv().unwrap();
        assert_eq!(
            got,
            Some(Msg::Heartbeat {
                worker: 5,
                ctx: None
            })
        );
        // No more data: the read honours its timeout instead of hanging.
        assert!(right.recv().unwrap().is_none());
    }
}
