//! `borg-net`: wire-level transport for the master-slave protocol.
//!
//! Carries `borg_protocol::{Command, Event}` (and the deployment
//! envelope around them) across process and machine boundaries:
//!
//! - [`codec`] — hand-rolled length-framed binary codec (magic, version,
//!   checksum; total decode: malformed input is an error, never a panic,
//!   never an over-allocation).
//! - [`transport`] — TCP and Unix-domain-socket streams with mandatory
//!   per-connection read timeouts and bounded exponential reconnect
//!   backoff.
//! - [`worker`] — the remote evaluation loop: register, evaluate
//!   dispatched candidates, stream results, heartbeat, reconnect.
//! - [`serve`] — the real-clock master: drives
//!   `borg_protocol::MasterEngine` over live sockets (deadline reissue,
//!   EOF + heartbeat-staleness death detection, duplicate suppression).
//! - [`chaos`] — the loopback chaos harness: an interposing proxy maps
//!   the seeded `borg_desim::fault::FaultPlan` onto real sockets while
//!   the master replays the *same* plan through the DES fault engine in
//!   virtual time (`sampled_ta`), making the networked run's fault
//!   ledger and final archive bit-identical to the DES oracle.
//! - [`tap`] — the live metrics tap: a read-only side-channel streaming
//!   periodic `MetricsSnapshot` deltas (stable-schema JSONL inside
//!   [`codec::Msg::Tap`] frames) to any number of subscribers.
//!
//! Socket I/O in this crate must not `unwrap()`/`expect()` and blocking
//! reads must carry a timeout — enforced by `cargo xtask check` rule
//! BORG-L013 on top of the workspace-wide rules.

pub mod chaos;
pub mod codec;
pub mod metrics;
pub mod serve;
pub mod tap;
pub mod transport;
pub mod worker;

pub use codec::{DecodeError, FrameReader, Msg, TraceCtx};
pub use transport::{
    connect_with_backoff, Backoff, Conn, NetAddr, NetError, NetListener, NetStream,
};
