//! Loopback chaos mode: the seeded `FaultPlan` mapped onto real sockets.
//!
//! Topology (all loopback, all real sockets):
//!
//! ```text
//! worker ⇄ chaos proxy ⇄ pinned master (DES fault engine + wire hooks)
//! ```
//!
//! The master runs `borg_models::queueing::run_async_faulty` — the same
//! DES fault oracle the determinism gate replays — with hooks that
//! mirror the virtual executor's `FtBorgHooks` RNG conventions *exactly*
//! (same seed derivations, same `SplitMix64` call order, same sampled
//! `T_A` charging), except that `produce`/`reissue` physically send the
//! candidate over the wire and `consume` physically blocks until the
//! worker's result frame arrives, feeding the remote objective bits into
//! the engine. All fate decisions and ledger writes stay in the shared
//! `FaultyTransport`, so the fault ledger, recovery actions, and final
//! archive are bit-identical to the DES oracle by construction — while
//! the wire stays load-bearing: every consumed objective travelled
//! through two real sockets and an interposing proxy.
//!
//! The proxy consults the *same* `FaultPlan` from the frame coordinates
//! (`Work.seq` mirrors the engine's per-worker dispatch counter,
//! `Outcome.attempt` echoes the dispatch) and physically enacts each
//! fate: crash ⇒ the work item is not forwarded and the worker's
//! connection is reset (exercising reconnect backoff + re-registration),
//! hang ⇒ the work item is silently discarded, drop ⇒ the result frame
//! is swallowed, duplicate ⇒ the result frame is forwarded twice. Its
//! wire-side ledger must agree with the oracle's per fault kind.

use crate::codec::{self, Msg, TraceCtx, UNASSIGNED};
use crate::metrics;
use crate::serve::register_pool;
use crate::serve::ServeConfig;
use crate::transport::{
    connect_with_backoff, Backoff, Conn, NetAddr, NetError, NetListener, NetStream,
};
use crate::worker::{run_worker, WorkerOptions};
use borg_core::algorithm::{BorgConfig, BorgEngine, Candidate};
use borg_core::problem::Problem;
use borg_core::rng::SplitMix64;
use borg_desim::fault::{DispatchFate, FaultConfig, FaultKind, FaultLog, FaultPlan, MessageFate};
use borg_models::dist::Dist;
use borg_models::queueing::{run_async_faulty, FaultTolerantHooks, RunOutcome};
use borg_obs::{Recorder, TraceEdge, TraceEdgeKind};
use borg_parallel::virtual_exec::{default_recovery_policy, fault_plan_for, TaMode, VirtualConfig};
use crossbeam::channel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::Scope;
use std::time::{Duration, Instant};

/// Socket-level knobs for the chaos harness.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Public (worker-facing) endpoint the proxy listens on.
    pub listen: NetAddr,
    /// Master-facing endpoint (the proxy dials this). For Unix sockets
    /// derive it from `listen`; for TCP use an ephemeral port.
    pub master_listen: NetAddr,
    /// Worker threads to spawn in-process (`0` = external worker
    /// processes are expected to connect to `listen`).
    pub in_process_workers: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Longest the pinned master will block for one wire result before
    /// latching an error and falling back to local evaluation.
    pub result_wait: Duration,
    /// Whether a crash fate physically resets the worker's connection
    /// (exercises reconnect backoff + re-registration).
    pub reset_on_crash: bool,
}

impl ChaosConfig {
    /// Loopback defaults over Unix sockets under `dir`; `tag`
    /// disambiguates concurrent harnesses in one test process.
    pub fn loopback(dir: &std::path::Path, tag: &str, in_process_workers: usize) -> Self {
        let base = dir.join(format!("borg-net-{}-{tag}", std::process::id()));
        ChaosConfig {
            listen: NetAddr::Unix(base.with_extension("pub.sock")),
            master_listen: NetAddr::Unix(base.with_extension("master.sock")),
            in_process_workers,
            read_timeout: Duration::from_millis(25),
            result_wait: Duration::from_secs(30),
            reset_on_crash: true,
        }
    }
}

/// What a chaos-mode networked run produced.
pub struct ChaosRunResult {
    /// Timing/throughput aggregates in *virtual* seconds (the DES
    /// clock), bit-comparable to the oracle's.
    pub outcome: RunOutcome,
    /// Final engine state (archive, NFE).
    pub engine: BorgEngine,
    /// The authoritative recovery ledger (DES-side) — must equal the
    /// oracle's bit for bit.
    pub fault_log: FaultLog,
    /// The proxy's wire-side ledger: faults it physically enacted on the
    /// sockets. Record times are wall-clock, so it is compared to the
    /// oracle per fault kind, not per record.
    pub wire_log: FaultLog,
    /// Sampled `T_A`/`T_F` draws (parity with `VirtualRunResult`).
    pub ta_samples: Vec<f64>,
    pub tf_samples: Vec<f64>,
    /// Results consumed off the wire (0 would mean the wire was not
    /// load-bearing — asserted against by callers).
    pub wire_results: u64,
    /// Extra result frames received (chaos duplication).
    pub wire_duplicates: u64,
    /// Re-registrations performed by in-process workers (crash resets).
    pub worker_reconnects: u64,
    /// Error latched during the run, if any: the run result is then
    /// *not* oracle-comparable (some objectives were evaluated locally
    /// to keep the engine alive).
    pub degraded: Option<String>,
}

// ---------------------------------------------------------------------------
// Pinned-mode hooks: FtBorgHooks with the evaluation moved onto the wire
// ---------------------------------------------------------------------------

/// A decoded result frame waiting for its `consume`.
struct WireOutcome {
    eval_id: u64,
    attempt: u32,
    objectives: Vec<f64>,
    constraints: Vec<f64>,
    ctx: Option<TraceCtx>,
}

enum MasterNote {
    Outcome(WireOutcome),
    Dead,
}

/// `FaultTolerantHooks` whose RNG stream is call-for-call identical to
/// the virtual executor's `FtBorgHooks` (seed derivations
/// `virtual-engine`/`virtual-delays`, sampled-`T_A` charging on the
/// first `workers` productions and on every consume, `T_F` draw per
/// `evaluation_time`, `T_C` draw per `comm_time`, reissues free) — but
/// `produce`/`reissue` send the candidate over a real socket and
/// `consume` blocks until the result frame returns.
struct NetFtHooks<'p, 'w, P: Problem + ?Sized, R: Recorder + ?Sized> {
    engine: BorgEngine,
    problem: &'p P,
    pending: BTreeMap<u64, Candidate>,
    /// Mirror of the engine's per-eval attempt counter (carried in
    /// `Work.attempt` so the proxy can key `message_fate`).
    attempts: BTreeMap<u64, u32>,
    /// Mirror of the engine's per-worker dispatch counter (carried in
    /// `Work.seq` so the proxy can key `dispatch_fate`).
    dispatch_seq: Vec<u64>,
    writers: Vec<NetStream>,
    rx: channel::Receiver<MasterNote>,
    buffered: BTreeMap<u64, Vec<WireOutcome>>,
    t_f: Dist,
    t_c: Dist,
    t_a: Dist,
    rng: StdRng,
    ta_samples: Vec<f64>,
    tf_samples: Vec<f64>,
    objs_buf: Vec<f64>,
    cons_buf: Vec<f64>,
    initial_productions: usize,
    workers: usize,
    result_wait: Duration,
    error: Option<NetError>,
    wire_results: u64,
    wire_duplicates: u64,
    rec: &'w R,
}

impl<'p, 'w, P: Problem + ?Sized, R: Recorder + ?Sized> NetFtHooks<'p, 'w, P, R> {
    fn new(
        problem: &'p P,
        config: &VirtualConfig,
        borg: BorgConfig,
        writers: Vec<NetStream>,
        rx: channel::Receiver<MasterNote>,
        result_wait: Duration,
        rec: &'w R,
    ) -> Self {
        let TaMode::Sampled(t_a) = config.t_a else {
            panic!("chaos loopback requires pinned timing (TaMode::Sampled)");
        };
        let mut split = SplitMix64::new(config.seed);
        let engine_seed = split.derive_seed("virtual-engine");
        let rng = split.derive("virtual-delays");
        let workers = (config.processors - 1) as usize;
        NetFtHooks {
            engine: BorgEngine::new(problem, borg, engine_seed),
            problem,
            pending: BTreeMap::new(),
            attempts: BTreeMap::new(),
            dispatch_seq: vec![0; workers],
            writers,
            rx,
            buffered: BTreeMap::new(),
            t_f: config.t_f,
            t_c: config.t_c,
            t_a,
            rng,
            ta_samples: Vec::new(),
            tf_samples: Vec::new(),
            objs_buf: vec![0.0; problem.num_objectives()],
            cons_buf: vec![0.0; problem.num_constraints()],
            initial_productions: 0,
            workers,
            result_wait,
            error: None,
            wire_results: 0,
            wire_duplicates: 0,
            rec,
        }
    }

    fn charge_ta(&mut self) -> f64 {
        let t = self.t_a.sample(&mut self.rng);
        self.ta_samples.push(t);
        t
    }

    /// `now` is the DES virtual clock: trace stamps and flight events on
    /// the pinned master stay deterministic for a fixed seed.
    fn send_work(
        &mut self,
        worker: usize,
        eval_id: u64,
        attempt: u32,
        variables: Vec<f64>,
        now: f64,
    ) {
        let seq = self.dispatch_seq[worker];
        self.dispatch_seq[worker] += 1;
        let frame = codec::encode(&Msg::Work {
            eval_id,
            attempt,
            seq,
            variables,
            ctx: Some(TraceCtx {
                trace_id: eval_id,
                parent_span: codec::span_id(eval_id, attempt, 0),
                sent_at: now,
            }),
        });
        if self.writers[worker].write_all(&frame).is_ok() {
            self.rec.counter(metrics::DISPATCHES, 1);
            self.rec.counter(metrics::FRAMES_SENT, 1);
            self.rec.counter(metrics::BYTES_SENT, frame.len() as u64);
            self.rec.counter(metrics::TRACE_CTX_SENT, 1);
            self.rec.trace_edge(TraceEdge {
                kind: TraceEdgeKind::DispatchSent,
                trace_id: eval_id,
                eval_id,
                attempt,
                worker: worker as u64,
                local_t: now,
                remote_t: 0.0,
            });
            self.rec
                .flight("net.work_sent", now, eval_id, worker as u64, attempt.into());
        } else if self.error.is_none() {
            self.error = Some(NetError::Disconnected {
                context: "chaos dispatch write",
            });
        }
    }

    /// Blocks until the result frame for `eval_id` arrives (buffering
    /// out-of-order arrivals for their own consumes). Once an error is
    /// latched the wait is skipped entirely: the caller falls back to
    /// local evaluation so the run still terminates.
    fn await_outcome(&mut self, eval_id: u64) -> Result<WireOutcome, NetError> {
        if let Some(list) = self.buffered.get_mut(&eval_id) {
            if !list.is_empty() {
                let outcome = list.remove(0);
                if list.is_empty() {
                    self.buffered.remove(&eval_id);
                }
                return Ok(outcome);
            }
        }
        if self.error.is_some() {
            return Err(NetError::ResultTimeout {
                eval_id,
                waited: Duration::ZERO,
            });
        }
        let started = Instant::now();
        loop {
            match self.rx.recv_timeout(Duration::from_millis(25)) {
                Ok(MasterNote::Outcome(outcome)) => {
                    self.rec.counter(metrics::RESULTS, 1);
                    if outcome.eval_id == eval_id {
                        self.rec.observe(
                            metrics::RESULT_WAIT_SECONDS,
                            started.elapsed().as_secs_f64(),
                        );
                        return Ok(outcome);
                    }
                    self.buffered
                        .entry(outcome.eval_id)
                        .or_default()
                        .push(outcome);
                }
                Ok(MasterNote::Dead) => {} // a master-side conn died; keep draining the rest
                Err(channel::RecvTimeoutError::Timeout) => {
                    if started.elapsed() > self.result_wait {
                        return Err(NetError::ResultTimeout {
                            eval_id,
                            waited: started.elapsed(),
                        });
                    }
                }
                Err(channel::RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Disconnected {
                        context: "chaos result channel",
                    });
                }
            }
        }
    }
}

impl<P: Problem + ?Sized, R: Recorder + ?Sized> FaultTolerantHooks for NetFtHooks<'_, '_, P, R> {
    fn produce(&mut self, worker: usize, eval_id: u64, now: f64) -> f64 {
        let candidate = self.engine.produce();
        self.attempts.insert(eval_id, 0);
        self.send_work(worker, eval_id, 0, candidate.variables.clone(), now);
        self.pending.insert(eval_id, candidate);
        // Sampled-T_A charging convention shared with FtBorgHooks: the
        // initial per-worker seeding productions each draw a sample,
        // every later produce is free (consume draws instead).
        if self.initial_productions < self.workers {
            self.initial_productions += 1;
            self.charge_ta()
        } else {
            0.0
        }
    }

    fn reissue(&mut self, worker: usize, eval_id: u64, now: f64) -> f64 {
        let attempt = self
            .attempts
            .entry(eval_id)
            .and_modify(|a| *a += 1)
            .or_insert(1);
        let attempt = *attempt;
        match self.pending.get(&eval_id) {
            Some(candidate) => {
                let variables = candidate.variables.clone();
                self.send_work(worker, eval_id, attempt, variables, now);
            }
            None => {
                if self.error.is_none() {
                    self.error = Some(NetError::Protocol(format!(
                        "reissue of eval {eval_id} with no pending candidate"
                    )));
                }
            }
        }
        // Reissues are free, like the FaultTolerantHooks default: the
        // candidate already exists, only comm_time is charged (by the
        // transport). No RNG draw.
        0.0
    }

    fn evaluation_time(&mut self, _worker: usize, _eval_id: u64) -> f64 {
        let t = self.t_f.sample(&mut self.rng);
        self.tf_samples.push(t);
        t
    }

    fn consume(&mut self, worker: usize, eval_id: u64, now: f64) -> f64 {
        let Some(candidate) = self.pending.remove(&eval_id) else {
            if self.error.is_none() {
                self.error = Some(NetError::Protocol(format!(
                    "consume of eval {eval_id} with no pending candidate"
                )));
            }
            return self.charge_ta();
        };
        let (objectives, constraints) = match self.await_outcome(eval_id) {
            Ok(outcome) => {
                self.wire_results += 1;
                // Only consumed wire results close a trace chain (the
                // local-fallback path below is a degraded run, not a
                // cross-process evaluation).
                self.rec.trace_edge(TraceEdge {
                    kind: TraceEdgeKind::ResultReceived,
                    trace_id: eval_id,
                    eval_id,
                    attempt: outcome.attempt,
                    worker: worker as u64,
                    local_t: now,
                    remote_t: outcome.ctx.map_or(0.0, |c| c.sent_at),
                });
                self.rec
                    .flight("net.result_received", now, eval_id, worker as u64, 0.0);
                (outcome.objectives, outcome.constraints)
            }
            Err(err) => {
                // Keep the run alive on a local evaluation; the latched
                // error marks the result non-oracle-comparable.
                if self.error.is_none() {
                    self.error = Some(err);
                }
                self.problem
                    .evaluate(&candidate.variables, &mut self.objs_buf, &mut self.cons_buf);
                (self.objs_buf.clone(), self.cons_buf.clone())
            }
        };
        let solution = self
            .engine
            .make_solution(candidate, objectives, constraints);
        self.engine.consume(solution);
        self.charge_ta()
    }

    fn comm_time(&mut self) -> f64 {
        self.t_c.sample(&mut self.rng)
    }
}

// ---------------------------------------------------------------------------
// The interposing chaos proxy
// ---------------------------------------------------------------------------

struct Link {
    conn: Option<NetStream>,
    /// Encoded frames dispatched while the worker was reconnecting.
    queue: Vec<Vec<u8>>,
}

struct ProxyWorker {
    idx: usize,
    link: Mutex<Link>,
    master_writer: Mutex<NetStream>,
    welcome: Msg,
}

impl ProxyWorker {
    /// Writes an encoded frame toward the worker, queueing it if the
    /// worker is mid-reconnect.
    fn to_worker(&self, frame: Vec<u8>) {
        let mut link = self.link.lock();
        let delivered = match link.conn.as_mut() {
            Some(conn) => conn.write_all(&frame).is_ok(),
            None => false,
        };
        if !delivered {
            if let Some(dead) = link.conn.take() {
                dead.shutdown();
            }
            link.queue.push(frame);
        }
    }

    fn to_master(&self, frame: &[u8]) {
        // Best-effort: if the master is gone the run is ending.
        let _ = self.master_writer.lock().write_all(frame);
    }
}

struct ProxyShared<'a, R: Recorder + Sync + ?Sized> {
    plan: &'a FaultPlan,
    wire_log: Mutex<FaultLog>,
    start: Instant,
    stop: AtomicBool,
    reset_on_crash: bool,
    read_timeout: Duration,
    workers: Mutex<Vec<Arc<ProxyWorker>>>,
    rec: &'a R,
}

impl<R: Recorder + Sync + ?Sized> ProxyShared<'_, R> {
    fn wall(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn inject(&self, kind: FaultKind, worker: usize, eval_id: u64) {
        let at = self.wall();
        self.wire_log.lock().inject(kind, worker, eval_id, at);
        self.rec.counter(metrics::CHAOS_INJECTIONS, 1);
    }
}

/// Relays master→worker traffic for one worker, enacting dispatch fates.
fn relay_master_to_worker<R: Recorder + Sync + ?Sized>(
    mut conn: Conn,
    pw: &ProxyWorker,
    shared: &ProxyShared<'_, R>,
) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match conn.recv() {
            Ok(Some(msg @ Msg::Work { .. })) => {
                let Msg::Work {
                    eval_id,
                    attempt: _,
                    seq,
                    ..
                } = &msg
                else {
                    continue;
                };
                match shared.plan.dispatch_fate(pw.idx, *seq) {
                    DispatchFate::Normal => pw.to_worker(codec::encode(&msg)),
                    DispatchFate::Straggle { .. } => {
                        shared.inject(FaultKind::Straggler, pw.idx, *eval_id);
                        pw.to_worker(codec::encode(&msg));
                    }
                    DispatchFate::CrashDuring { .. } => {
                        // The worker "dies" mid-evaluation: the work item
                        // never completes. Physically: don't forward it,
                        // and (optionally) reset the connection so the
                        // worker exercises reconnect backoff.
                        shared.inject(FaultKind::Crash, pw.idx, *eval_id);
                        if shared.reset_on_crash {
                            let mut link = pw.link.lock();
                            if let Some(dead) = link.conn.take() {
                                dead.shutdown();
                            }
                        }
                    }
                    DispatchFate::HangDuring => {
                        // A hang never completes and never recovers:
                        // swallow the work item, leave the socket up.
                        shared.inject(FaultKind::Hang, pw.idx, *eval_id);
                    }
                }
            }
            Ok(Some(other)) => pw.to_worker(codec::encode(&other)),
            Ok(None) => {}
            Err(_) => break,
        }
    }
    // Master side is gone (teardown or failure): sever the worker so its
    // loop unblocks and exits.
    let mut link = pw.link.lock();
    if let Some(conn) = link.conn.take() {
        conn.shutdown();
    }
}

/// Relays worker→master traffic for one worker socket generation,
/// enacting result-message fates.
fn relay_worker_to_master<R: Recorder + Sync + ?Sized>(
    mut conn: Conn,
    pw: &ProxyWorker,
    shared: &ProxyShared<'_, R>,
) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match conn.recv() {
            Ok(Some(msg @ Msg::Outcome { .. })) => {
                let Msg::Outcome {
                    eval_id, attempt, ..
                } = &msg
                else {
                    continue;
                };
                let frame = codec::encode(&msg);
                match shared.plan.message_fate(*eval_id, *attempt) {
                    MessageFate::Deliver => pw.to_master(&frame),
                    MessageFate::Drop => {
                        shared.inject(FaultKind::MessageDrop, pw.idx, *eval_id);
                    }
                    MessageFate::Duplicate => {
                        shared.inject(FaultKind::MessageDuplicate, pw.idx, *eval_id);
                        pw.to_master(&frame);
                        pw.to_master(&frame);
                    }
                }
            }
            Ok(Some(other)) => pw.to_master(&codec::encode(&other)),
            Ok(None) => {}
            Err(_) => return, // worker reconnecting or gone
        }
    }
}

/// Waits for `Hello` on a fresh proxy-side connection.
fn proxy_await_hello(conn: &mut Conn, shared_stop: &AtomicBool) -> Result<u64, NetError> {
    for _ in 0..200 {
        if shared_stop.load(Ordering::SeqCst) {
            break;
        }
        match conn.recv()? {
            Some(Msg::Hello { worker }) => return Ok(worker),
            Some(other) => {
                return Err(NetError::Protocol(format!(
                    "proxy expected Hello, got {other:?}"
                )))
            }
            None => {}
        }
    }
    Err(NetError::Protocol("proxy handshake timed out".to_string()))
}

/// One accepted worker-side socket: registration or re-registration.
fn proxy_admit<'s, R: Recorder + Sync + ?Sized>(
    scope: &'s Scope<'s, '_>,
    shared: &'s ProxyShared<'s, R>,
    master_addr: &NetAddr,
    stream: NetStream,
) -> Result<(), NetError> {
    let writer = stream.try_clone()?;
    let mut conn = Conn::new(stream);
    let hello = proxy_await_hello(&mut conn, &shared.stop)?;
    if hello == UNASSIGNED {
        // Fresh registration: splice a master-side connection through.
        let idx = shared.workers.lock().len();
        let mut backoff = Backoff::default_schedule();
        let mstream = connect_with_backoff(master_addr, &mut backoff, shared.read_timeout)?;
        let mut mconn = Conn::new(mstream);
        mconn.send(&Msg::Hello { worker: UNASSIGNED })?;
        let welcome = loop {
            match mconn.recv()? {
                Some(msg @ Msg::Welcome { .. }) => break msg,
                Some(other) => {
                    return Err(NetError::Protocol(format!(
                        "master sent {other:?} instead of Welcome"
                    )))
                }
                None => {
                    if shared.stop.load(Ordering::SeqCst) {
                        return Err(NetError::Protocol("proxy stopping".to_string()));
                    }
                }
            }
        };
        if let Msg::Welcome { worker, .. } = &welcome {
            if *worker != idx as u64 {
                return Err(NetError::Protocol(format!(
                    "master assigned index {worker}, proxy expected {idx}"
                )));
            }
        }
        let master_writer = mconn.stream().try_clone()?;
        let pw = Arc::new(ProxyWorker {
            idx,
            link: Mutex::new(Link {
                conn: Some(writer),
                queue: Vec::new(),
            }),
            master_writer: Mutex::new(master_writer),
            welcome: welcome.clone(),
        });
        pw.to_worker(codec::encode(&welcome));
        shared.workers.lock().push(Arc::clone(&pw));
        {
            let pw = Arc::clone(&pw);
            scope.spawn(move || relay_master_to_worker(mconn, &pw, shared));
        }
        scope.spawn(move || relay_worker_to_master(conn, &pw, shared));
        Ok(())
    } else {
        // Re-registration after a chaos reset: swap the socket, absorb
        // the handshake (the master never sees reconnect churn), flush
        // anything dispatched while the worker was away.
        let pw = {
            let workers = shared.workers.lock();
            let idx = usize::try_from(hello)
                .ok()
                .filter(|i| *i < workers.len())
                .ok_or_else(|| {
                    NetError::Protocol(format!("reconnect for unknown worker {hello}"))
                })?;
            Arc::clone(&workers[idx])
        };
        let queued = {
            let mut link = pw.link.lock();
            if let Some(old) = link.conn.take() {
                old.shutdown();
            }
            link.conn = Some(writer);
            std::mem::take(&mut link.queue)
        };
        pw.to_worker(codec::encode(&pw.welcome));
        for frame in queued {
            pw.to_worker(frame);
        }
        scope.spawn(move || relay_worker_to_master(conn, &pw, shared));
        Ok(())
    }
}

/// The proxy's accept loop: admits workers until the stop flag rises.
fn proxy_accept_loop<'s, R: Recorder + Sync + ?Sized>(
    scope: &'s Scope<'s, '_>,
    shared: &'s ProxyShared<'s, R>,
    listener: &NetListener,
    master_addr: &NetAddr,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept(shared.read_timeout) {
            Ok(Some(stream)) => {
                // A failed handshake abandons that socket, not the proxy.
                let _ = proxy_admit(scope, shared, master_addr, stream);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
    }
    // Sever every live worker link so their loops unblock.
    for pw in shared.workers.lock().iter() {
        let mut link = pw.link.lock();
        if let Some(conn) = link.conn.take() {
            conn.shutdown();
        }
    }
}

/// Master-side reader: decodes result frames into the hooks' channel.
fn master_reader<R: Recorder + Sync + ?Sized>(
    mut conn: Conn,
    tx: &channel::Sender<MasterNote>,
    stop: &AtomicBool,
    rec: &R,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match conn.recv() {
            Ok(Some(Msg::Outcome {
                eval_id,
                attempt,
                objectives,
                constraints,
                ctx,
                ..
            })) => {
                rec.counter(metrics::FRAMES_RECEIVED, 1);
                if ctx.is_some() {
                    rec.counter(metrics::TRACE_CTX_RECEIVED, 1);
                }
                let note = MasterNote::Outcome(WireOutcome {
                    eval_id,
                    attempt,
                    objectives,
                    constraints,
                    ctx,
                });
                if tx.send(note).is_err() {
                    return;
                }
            }
            Ok(Some(Msg::Heartbeat { .. })) => rec.counter(metrics::HEARTBEATS, 1),
            Ok(Some(_)) => rec.counter(metrics::FRAMES_RECEIVED, 1),
            Ok(None) => {}
            Err(e) => {
                if matches!(e, NetError::Decode(_)) {
                    rec.counter(metrics::DECODE_ERRORS, 1);
                }
                let _ = tx.send(MasterNote::Dead);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The harness
// ---------------------------------------------------------------------------

/// Runs a pinned-timing networked chaos run and returns its result.
///
/// `resolve` maps the announced problem name to instances for the
/// in-process worker threads (and must resolve `problem_name`).
/// Requires `config.t_a` to be `TaMode::Sampled` — wall-clock must not
/// leak into the virtual timeline, or bit-identity with the oracle is
/// impossible by construction.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_loopback<P, R>(
    problem: &P,
    borg: BorgConfig,
    config: &VirtualConfig,
    faults: &FaultConfig,
    chaos: &ChaosConfig,
    problem_name: &str,
    resolve: &(dyn Fn(&str) -> Option<Box<dyn Problem>> + Sync),
    rec: &R,
) -> Result<ChaosRunResult, NetError>
where
    P: Problem + ?Sized,
    R: Recorder + Sync + ?Sized,
{
    assert!(
        config.processors >= 2,
        "need a master and at least one worker"
    );
    let workers = (config.processors - 1) as usize;
    let plan = fault_plan_for(config, faults);
    let policy = default_recovery_policy(config);

    let master_listener = NetListener::bind(&chaos.master_listen)?;
    let master_addr = master_listener.local_addr()?;
    let public_listener = NetListener::bind(&chaos.listen)?;
    let public_addr = public_listener.local_addr()?;

    let shared = ProxyShared {
        plan: &plan,
        wire_log: Mutex::new(FaultLog::default()),
        start: Instant::now(),
        stop: AtomicBool::new(false),
        reset_on_crash: chaos.reset_on_crash,
        read_timeout: chaos.read_timeout,
        workers: Mutex::new(Vec::new()),
        rec,
    };
    let serve_cfg = ServeConfig {
        listen: chaos.master_listen.clone(),
        workers,
        max_nfe: config.max_nfe,
        seed: config.seed,
        problem_name: problem_name.to_string(),
        eval_delay: Duration::ZERO,
        reissue_timeout: None,
        heartbeat_timeout: f64::INFINITY,
        register_timeout: Duration::from_secs(30),
        read_timeout: chaos.read_timeout,
    };
    let reader_stop = AtomicBool::new(false);

    let run = std::thread::scope(|scope| -> Result<RunBundle, NetError> {
        scope.spawn(|| proxy_accept_loop(scope, &shared, &public_listener, &master_addr));

        let mut worker_handles = Vec::new();
        for _ in 0..chaos.in_process_workers {
            let opts = WorkerOptions {
                connect: public_addr.clone(),
                read_timeout: chaos.read_timeout,
                heartbeat_every: Duration::from_millis(100),
                backoff: Backoff::default_schedule(),
            };
            worker_handles.push(scope.spawn(move || run_worker(&opts, resolve, rec)));
        }

        // The pool registers through the proxy; the master sees ordinary
        // registrations on its own listener.
        let conns = register_pool(&master_listener, &serve_cfg)?;
        let mut writers = Vec::with_capacity(conns.len());
        for conn in &conns {
            writers.push(conn.stream().try_clone()?);
        }
        let (tx, rx) = channel::unbounded::<MasterNote>();
        for conn in conns {
            let tx = tx.clone();
            let reader_stop = &reader_stop;
            scope.spawn(move || master_reader(conn, &tx, reader_stop, rec));
        }
        drop(tx);

        let mut hooks = NetFtHooks::new(problem, config, borg, writers, rx, chaos.result_wait, rec);
        let faulty = run_async_faulty(&mut hooks, workers, config.max_nfe, &plan, policy, rec);

        // Teardown: tell workers the run is over, then sever everything
        // so every blocked thread unblocks and the scope join is prompt.
        let shutdown_frame = codec::encode(&Msg::Shutdown);
        for pw in shared.workers.lock().iter() {
            pw.to_worker(shutdown_frame.clone());
        }
        shared.stop.store(true, Ordering::SeqCst);
        reader_stop.store(true, Ordering::SeqCst);
        for writer in &hooks.writers {
            writer.shutdown();
        }

        // Drain late frames (second copies of duplicated results).
        while let Ok(note) = hooks.rx.try_recv() {
            if let MasterNote::Outcome(_) = note {
                hooks.wire_duplicates += 1;
            }
        }
        for list in hooks.buffered.values() {
            hooks.wire_duplicates += list.len() as u64;
        }

        let mut worker_reconnects = 0u64;
        for handle in worker_handles {
            if let Ok(Ok(report)) = handle.join() {
                worker_reconnects += report.reconnects;
                rec.counter(metrics::RECONNECTS, report.reconnects);
            }
        }

        Ok(RunBundle {
            faulty_outcome: faulty.outcome,
            fault_log: faulty.fault_log,
            engine: hooks.engine,
            ta_samples: hooks.ta_samples,
            tf_samples: hooks.tf_samples,
            wire_results: hooks.wire_results,
            wire_duplicates: hooks.wire_duplicates,
            worker_reconnects,
            degraded: hooks.error.map(|e| e.to_string()),
        })
    });
    let bundle = run?;

    // Remove Unix socket files; harmless if already gone.
    for addr in [&chaos.listen, &chaos.master_listen] {
        if let NetAddr::Unix(path) = addr {
            let _ = std::fs::remove_file(path);
        }
    }

    Ok(ChaosRunResult {
        outcome: bundle.faulty_outcome,
        engine: bundle.engine,
        fault_log: bundle.fault_log,
        wire_log: shared.wire_log.into_inner(),
        ta_samples: bundle.ta_samples,
        tf_samples: bundle.tf_samples,
        wire_results: bundle.wire_results,
        wire_duplicates: bundle.wire_duplicates,
        worker_reconnects: bundle.worker_reconnects,
        degraded: bundle.degraded,
    })
}

/// Intermediate carrier across the scope boundary.
struct RunBundle {
    faulty_outcome: RunOutcome,
    fault_log: FaultLog,
    engine: BorgEngine,
    ta_samples: Vec<f64>,
    tf_samples: Vec<f64>,
    wire_results: u64,
    wire_duplicates: u64,
    worker_reconnects: u64,
    degraded: Option<String>,
}
