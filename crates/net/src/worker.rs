//! The worker side of the deployment pair: connect, register, evaluate
//! dispatched candidates, stream results back, heartbeat while idle,
//! and reconnect (bounded backoff) when the connection drops.

use crate::codec::{self, Msg, TraceCtx, UNASSIGNED};
use crate::metrics;
use crate::transport::{connect_with_backoff, Backoff, Conn, NetAddr, NetError};
use borg_core::problem::Problem;
use borg_obs::{Activity, Actor, Recorder, TraceEdge, TraceEdgeKind};
use std::time::{Duration, Instant};

/// How a worker connects and paces itself.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Master (or chaos proxy) endpoint.
    pub connect: NetAddr,
    /// Per-read socket timeout; also the idle-loop tick.
    pub read_timeout: Duration,
    /// Send a heartbeat frame after this much idle time.
    pub heartbeat_every: Duration,
    /// Reconnect schedule (applies to the initial connect too).
    pub backoff: Backoff,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect: NetAddr::Tcp("127.0.0.1:0".to_string()),
            read_timeout: Duration::from_millis(50),
            heartbeat_every: Duration::from_millis(100),
            backoff: Backoff::default_schedule(),
        }
    }
}

/// What a worker did over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Index the master assigned at registration.
    pub worker: u64,
    /// Evaluations completed (results sent, delivered or not).
    pub evaluated: u64,
    /// Successful re-registrations after a connection drop.
    pub reconnects: u64,
    /// Heartbeat frames sent.
    pub heartbeats_sent: u64,
}

/// Maximum consecutive read timeouts while waiting for `Welcome` before
/// declaring registration failed (~10 s at the 50 ms default timeout).
const REGISTRATION_READS: u32 = 200;

fn await_welcome(conn: &mut Conn) -> Result<(u64, String, u64), NetError> {
    for _ in 0..REGISTRATION_READS {
        match conn.recv()? {
            Some(Msg::Welcome {
                worker,
                problem,
                eval_delay_us,
            }) => return Ok((worker, problem, eval_delay_us)),
            Some(other) => {
                return Err(NetError::Protocol(format!(
                    "expected Welcome during registration, got {other:?}"
                )))
            }
            None => {} // timeout tick; keep waiting
        }
    }
    Err(NetError::Protocol(
        "no Welcome within the registration window".to_string(),
    ))
}

fn connect_and_register(
    opts: &WorkerOptions,
    announce: u64,
) -> Result<(Conn, u64, String, u64), NetError> {
    let mut backoff = opts.backoff;
    let stream = connect_with_backoff(&opts.connect, &mut backoff, opts.read_timeout)?;
    let mut conn = Conn::new(stream);
    conn.send(&Msg::Hello { worker: announce })?;
    let (worker, problem, eval_delay_us) = await_welcome(&mut conn)?;
    Ok((conn, worker, problem, eval_delay_us))
}

/// Runs the worker loop until the master sends `Shutdown` or goes away.
///
/// `resolve` maps the problem name announced in `Welcome` to a live
/// [`Problem`] instance (keeps this crate independent of any particular
/// problem suite). A master that disappears *after* registration ends
/// the run cleanly with the report so far — operationally the master
/// finishing and closing sockets is a normal way for a worker to learn
/// the run is over; failing to register at all is an error.
pub fn run_worker<R: Recorder + ?Sized>(
    opts: &WorkerOptions,
    resolve: &dyn Fn(&str) -> Option<Box<dyn Problem>>,
    rec: &R,
) -> Result<WorkerReport, NetError> {
    let mut report = WorkerReport::default();
    let (mut conn, worker, problem_name, eval_delay_us) = connect_and_register(opts, UNASSIGNED)?;
    report.worker = worker;
    let problem = resolve(&problem_name)
        .ok_or_else(|| NetError::Protocol(format!("cannot resolve problem {problem_name:?}")))?;
    let eval_delay = Duration::from_micros(eval_delay_us);
    let mut objs = vec![0.0; problem.num_objectives()];
    let mut cons = vec![0.0; problem.num_constraints()];
    // The worker's own trace clock: seconds on its private epoch. The
    // merge aligns it to the master clock from heartbeat-probe samples.
    let epoch = Instant::now();
    let mut last_beat = Instant::now();
    let mut probe_seq = 0u64;
    // A result that could not be written before the connection dropped;
    // re-sent after re-registration (the master suppresses duplicates by
    // eval id, so re-sending is always safe).
    let mut unsent: Option<Msg> = None;

    'session: loop {
        if let Some(mut msg) = unsent.take() {
            // Stamp the context at the moment the frame actually goes to
            // the wire (resends after a reconnect get a fresh stamp).
            let send_at = epoch.elapsed().as_secs_f64();
            if let Msg::Outcome { ctx: Some(c), .. } = &mut msg {
                c.sent_at = send_at;
            }
            if conn.send(&msg).is_err() {
                unsent = Some(msg);
                match reconnect(opts, worker, &mut report) {
                    Some(c) => {
                        conn = c;
                        rec.counter(metrics::RECONNECTS, 1);
                        continue 'session;
                    }
                    None => return Ok(report),
                }
            }
            rec.counter(metrics::FRAMES_SENT, 1);
            if let Msg::Outcome {
                eval_id, attempt, ..
            } = &msg
            {
                rec.counter(metrics::TRACE_CTX_SENT, 1);
                rec.trace_edge(TraceEdge {
                    kind: TraceEdgeKind::ResultSent,
                    trace_id: *eval_id,
                    eval_id: *eval_id,
                    attempt: *attempt,
                    worker,
                    local_t: send_at,
                    remote_t: 0.0,
                });
                rec.flight("net.result_sent", send_at, *eval_id, worker, 0.0);
            }
        }
        match conn.recv() {
            Ok(Some(Msg::Work {
                eval_id,
                attempt,
                seq: _,
                variables,
                ctx,
            })) => {
                rec.counter(metrics::FRAMES_RECEIVED, 1);
                let received_at = epoch.elapsed().as_secs_f64();
                if ctx.is_some() {
                    rec.counter(metrics::TRACE_CTX_RECEIVED, 1);
                }
                rec.trace_edge(TraceEdge {
                    kind: TraceEdgeKind::WorkReceived,
                    trace_id: ctx.map_or(eval_id, |c| c.trace_id),
                    eval_id,
                    attempt,
                    worker,
                    local_t: received_at,
                    remote_t: ctx.map_or(0.0, |c| c.sent_at),
                });
                rec.flight("net.work_received", received_at, eval_id, worker, 0.0);
                if eval_delay > Duration::ZERO {
                    std::thread::sleep(eval_delay);
                }
                if variables.len() != problem.num_variables() {
                    return Err(NetError::Protocol(format!(
                        "work item has {} variables, problem {problem_name:?} wants {}",
                        variables.len(),
                        problem.num_variables()
                    )));
                }
                problem.evaluate(&variables, &mut objs, &mut cons);
                report.evaluated += 1;
                let done_at = epoch.elapsed().as_secs_f64();
                rec.span(
                    Actor::Worker(worker as usize),
                    Activity::Evaluation,
                    received_at,
                    done_at,
                );
                unsent = Some(Msg::Outcome {
                    worker,
                    eval_id,
                    attempt,
                    objectives: objs.clone(),
                    constraints: cons.clone(),
                    ctx: Some(TraceCtx {
                        trace_id: eval_id,
                        parent_span: codec::span_id(eval_id, attempt, 2),
                        sent_at: done_at,
                    }),
                });
            }
            Ok(Some(Msg::Shutdown)) => {
                rec.counter(metrics::FRAMES_RECEIVED, 1);
                return Ok(report);
            }
            Ok(Some(Msg::Heartbeat {
                ctx: Some(echo), ..
            })) => {
                // The master echoed one of our clock probes: our send
                // time came back in `parent_span` (bit pattern), the
                // master's clock in `sent_at`. Estimate the offset at
                // the probe midpoint (symmetric-path assumption).
                rec.counter(metrics::FRAMES_RECEIVED, 1);
                let t1 = epoch.elapsed().as_secs_f64();
                let t0 = f64::from_bits(echo.parent_span);
                let rtt = t1 - t0;
                let offset = echo.sent_at - (t0 + t1) / 2.0;
                rec.observe(metrics::TRACE_PROBE_RTT_SECONDS, rtt);
                rec.trace_edge(TraceEdge {
                    kind: TraceEdgeKind::ClockSample,
                    trace_id: echo.trace_id,
                    eval_id: u64::MAX,
                    attempt: 0,
                    worker,
                    local_t: rtt,
                    remote_t: offset,
                });
            }
            Ok(Some(_)) => rec.counter(metrics::FRAMES_RECEIVED, 1),
            Ok(None) => {
                // Idle tick: heartbeat if due. Every idle heartbeat
                // doubles as a clock probe.
                if last_beat.elapsed() >= opts.heartbeat_every {
                    last_beat = Instant::now();
                    probe_seq += 1;
                    let beat = Msg::Heartbeat {
                        worker,
                        ctx: Some(TraceCtx {
                            trace_id: probe_seq,
                            parent_span: 0,
                            sent_at: epoch.elapsed().as_secs_f64(),
                        }),
                    };
                    if conn.send(&beat).is_ok() {
                        report.heartbeats_sent += 1;
                        rec.counter(metrics::HEARTBEATS, 1);
                        rec.counter(metrics::TRACE_CTX_SENT, 1);
                    }
                    // A failed heartbeat write is caught by the next
                    // recv returning an error.
                }
            }
            Err(_) => match reconnect(opts, worker, &mut report) {
                Some(c) => {
                    conn = c;
                    rec.counter(metrics::RECONNECTS, 1);
                }
                None => return Ok(report),
            },
        }
    }
}

/// One bounded reconnect + re-registration round. `None` means the
/// master is gone for good (schedule exhausted or registration refused)
/// — the worker should exit with its report.
fn reconnect(opts: &WorkerOptions, worker: u64, report: &mut WorkerReport) -> Option<Conn> {
    match connect_and_register(opts, worker) {
        Ok((conn, assigned, _, _)) if assigned == worker => {
            report.reconnects += 1;
            Some(conn)
        }
        _ => None,
    }
}
