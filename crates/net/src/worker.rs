//! The worker side of the deployment pair: connect, register, evaluate
//! dispatched candidates, stream results back, heartbeat while idle,
//! and reconnect (bounded backoff) when the connection drops.

use crate::codec::{Msg, UNASSIGNED};
use crate::metrics;
use crate::transport::{connect_with_backoff, Backoff, Conn, NetAddr, NetError};
use borg_core::problem::Problem;
use borg_obs::Recorder;
use std::time::{Duration, Instant};

/// How a worker connects and paces itself.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Master (or chaos proxy) endpoint.
    pub connect: NetAddr,
    /// Per-read socket timeout; also the idle-loop tick.
    pub read_timeout: Duration,
    /// Send a heartbeat frame after this much idle time.
    pub heartbeat_every: Duration,
    /// Reconnect schedule (applies to the initial connect too).
    pub backoff: Backoff,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect: NetAddr::Tcp("127.0.0.1:0".to_string()),
            read_timeout: Duration::from_millis(50),
            heartbeat_every: Duration::from_millis(100),
            backoff: Backoff::default_schedule(),
        }
    }
}

/// What a worker did over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Index the master assigned at registration.
    pub worker: u64,
    /// Evaluations completed (results sent, delivered or not).
    pub evaluated: u64,
    /// Successful re-registrations after a connection drop.
    pub reconnects: u64,
    /// Heartbeat frames sent.
    pub heartbeats_sent: u64,
}

/// Maximum consecutive read timeouts while waiting for `Welcome` before
/// declaring registration failed (~10 s at the 50 ms default timeout).
const REGISTRATION_READS: u32 = 200;

fn await_welcome(conn: &mut Conn) -> Result<(u64, String, u64), NetError> {
    for _ in 0..REGISTRATION_READS {
        match conn.recv()? {
            Some(Msg::Welcome {
                worker,
                problem,
                eval_delay_us,
            }) => return Ok((worker, problem, eval_delay_us)),
            Some(other) => {
                return Err(NetError::Protocol(format!(
                    "expected Welcome during registration, got {other:?}"
                )))
            }
            None => {} // timeout tick; keep waiting
        }
    }
    Err(NetError::Protocol(
        "no Welcome within the registration window".to_string(),
    ))
}

fn connect_and_register(
    opts: &WorkerOptions,
    announce: u64,
) -> Result<(Conn, u64, String, u64), NetError> {
    let mut backoff = opts.backoff;
    let stream = connect_with_backoff(&opts.connect, &mut backoff, opts.read_timeout)?;
    let mut conn = Conn::new(stream);
    conn.send(&Msg::Hello { worker: announce })?;
    let (worker, problem, eval_delay_us) = await_welcome(&mut conn)?;
    Ok((conn, worker, problem, eval_delay_us))
}

/// Runs the worker loop until the master sends `Shutdown` or goes away.
///
/// `resolve` maps the problem name announced in `Welcome` to a live
/// [`Problem`] instance (keeps this crate independent of any particular
/// problem suite). A master that disappears *after* registration ends
/// the run cleanly with the report so far — operationally the master
/// finishing and closing sockets is a normal way for a worker to learn
/// the run is over; failing to register at all is an error.
pub fn run_worker<R: Recorder + ?Sized>(
    opts: &WorkerOptions,
    resolve: &dyn Fn(&str) -> Option<Box<dyn Problem>>,
    rec: &R,
) -> Result<WorkerReport, NetError> {
    let mut report = WorkerReport::default();
    let (mut conn, worker, problem_name, eval_delay_us) = connect_and_register(opts, UNASSIGNED)?;
    report.worker = worker;
    let problem = resolve(&problem_name)
        .ok_or_else(|| NetError::Protocol(format!("cannot resolve problem {problem_name:?}")))?;
    let eval_delay = Duration::from_micros(eval_delay_us);
    let mut objs = vec![0.0; problem.num_objectives()];
    let mut cons = vec![0.0; problem.num_constraints()];
    let mut last_beat = Instant::now();
    // A result that could not be written before the connection dropped;
    // re-sent after re-registration (the master suppresses duplicates by
    // eval id, so re-sending is always safe).
    let mut unsent: Option<Msg> = None;

    'session: loop {
        if let Some(msg) = unsent.take() {
            if conn.send(&msg).is_err() {
                unsent = Some(msg);
                match reconnect(opts, worker, &mut report) {
                    Some(c) => {
                        conn = c;
                        rec.counter(metrics::RECONNECTS, 1);
                        continue 'session;
                    }
                    None => return Ok(report),
                }
            }
            rec.counter(metrics::FRAMES_SENT, 1);
        }
        match conn.recv() {
            Ok(Some(Msg::Work {
                eval_id,
                attempt,
                seq: _,
                variables,
            })) => {
                rec.counter(metrics::FRAMES_RECEIVED, 1);
                if eval_delay > Duration::ZERO {
                    std::thread::sleep(eval_delay);
                }
                if variables.len() != problem.num_variables() {
                    return Err(NetError::Protocol(format!(
                        "work item has {} variables, problem {problem_name:?} wants {}",
                        variables.len(),
                        problem.num_variables()
                    )));
                }
                problem.evaluate(&variables, &mut objs, &mut cons);
                report.evaluated += 1;
                unsent = Some(Msg::Outcome {
                    worker,
                    eval_id,
                    attempt,
                    objectives: objs.clone(),
                    constraints: cons.clone(),
                });
            }
            Ok(Some(Msg::Shutdown)) => {
                rec.counter(metrics::FRAMES_RECEIVED, 1);
                return Ok(report);
            }
            Ok(Some(_)) => rec.counter(metrics::FRAMES_RECEIVED, 1),
            Ok(None) => {
                // Idle tick: heartbeat if due.
                if last_beat.elapsed() >= opts.heartbeat_every {
                    last_beat = Instant::now();
                    if conn.send(&Msg::Heartbeat { worker }).is_ok() {
                        report.heartbeats_sent += 1;
                        rec.counter(metrics::HEARTBEATS, 1);
                    }
                    // A failed heartbeat write is caught by the next
                    // recv returning an error.
                }
            }
            Err(_) => match reconnect(opts, worker, &mut report) {
                Some(c) => {
                    conn = c;
                    rec.counter(metrics::RECONNECTS, 1);
                }
                None => return Ok(report),
            },
        }
    }
}

/// One bounded reconnect + re-registration round. `None` means the
/// master is gone for good (schedule exhausted or registration refused)
/// — the worker should exit with its report.
fn reconnect(opts: &WorkerOptions, worker: u64, report: &mut WorkerReport) -> Option<Conn> {
    match connect_and_register(opts, worker) {
        Ok((conn, assigned, _, _)) if assigned == worker => {
            report.reconnects += 1;
            Some(conn)
        }
        _ => None,
    }
}
