//! The `net.*` metric catalogue (see DESIGN §11 for the house
//! conventions): counter/gauge/histogram names this crate feeds through
//! the `borg_obs::Recorder` facade. Centralised so exporters, docs, and
//! tests reference one vocabulary.

/// Frames written to a socket (any message type, either role).
pub const FRAMES_SENT: &str = "net.frames_sent";
/// Frames successfully decoded off a socket.
pub const FRAMES_RECEIVED: &str = "net.frames_received";
/// Bytes written (frame-complete).
pub const BYTES_SENT: &str = "net.bytes_sent";
/// Bytes received in decoded frames.
pub const BYTES_RECEIVED: &str = "net.bytes_received";
/// Work items dispatched over the wire.
pub const DISPATCHES: &str = "net.dispatches";
/// Result frames consumed by the master.
pub const RESULTS: &str = "net.results";
/// Duplicate result frames absorbed (chaos duplication, reissue races).
pub const DUPLICATES: &str = "net.duplicates";
/// Heartbeat frames received by the master.
pub const HEARTBEATS: &str = "net.heartbeats";
/// Successful (re)connections, worker side.
pub const RECONNECTS: &str = "net.reconnects";
/// Frames that failed to decode (connection subsequently dropped).
pub const DECODE_ERRORS: &str = "net.decode_errors";
/// Worker deaths detected by the master (EOF or stale heartbeat).
pub const WORKER_DEATHS: &str = "net.worker_deaths";
/// Faults the chaos proxy physically injected on the wire.
pub const CHAOS_INJECTIONS: &str = "net.chaos_injections";
/// Histogram: wall-clock seconds from dispatch write to result decode.
pub const RTT_SECONDS: &str = "net.rtt_seconds";
/// Histogram: wall-clock seconds the master blocked waiting for a
/// pinned-mode wire result.
pub const RESULT_WAIT_SECONDS: &str = "net.result_wait_seconds";
/// Trace contexts stamped onto outgoing frames (either role).
pub const TRACE_CTX_SENT: &str = "net.trace.ctx_sent";
/// Trace contexts observed on incoming frames (either role).
pub const TRACE_CTX_RECEIVED: &str = "net.trace.ctx_received";
/// Heartbeat clock-probe echoes the master sent back.
pub const TRACE_PROBE_ECHOES: &str = "net.trace.probe_echoes";
/// Histogram: heartbeat probe round-trip seconds (worker side).
pub const TRACE_PROBE_RTT_SECONDS: &str = "net.trace.probe_rtt_seconds";
/// Tap frames streamed to live metrics subscribers.
pub const TAP_FRAMES: &str = "net.tap.frames";
/// Tap subscriber connections accepted.
pub const TAP_SUBSCRIBERS: &str = "net.tap.subscribers";
/// Flight-recorder events captured into the ring (any process).
pub const FLIGHT_EVENTS: &str = "flight.events";
/// Flight-recorder dumps written (worker death, sever, panic, shutdown).
pub const FLIGHT_DUMPS: &str = "flight.dumps";
