//! Live metrics streaming: a read-only side-channel next to the serving
//! master.
//!
//! The tap listens on its own endpoint and periodically broadcasts one
//! [`Msg::Tap`] frame to every subscriber, carrying a
//! [`MetricsSnapshot`] *delta* (what changed since the previous tick)
//! pre-rendered as metrics JSONL. Deltas use
//! `MetricsSnapshot::delta_since`, whose schema is stable: every metric
//! key present in the cumulative snapshot appears on every tick, with
//! zero counts where nothing happened, so downstream consumers never see
//! keys flicker in and out. The first tick after the tap starts is the
//! full cumulative snapshot (a delta against the empty snapshot).
//!
//! Subscribers are passive: the tap never reads from them, a failed
//! write silently drops the subscriber, and no subscriber can slow the
//! serving master (the tap runs on its own thread and snapshots through
//! a caller-provided closure).

use crate::codec::{self, Msg};
use crate::metrics;
use crate::serve::{serve, ServeConfig, ServeReport};
use crate::transport::{NetAddr, NetError, NetListener, NetStream};
use borg_core::algorithm::BorgConfig;
use borg_core::problem::Problem;
use borg_obs::{MetricsSnapshot, Recorder};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How the live metrics tap runs.
#[derive(Debug, Clone)]
pub struct TapConfig {
    /// Endpoint the tap listens on for subscribers.
    pub listen: NetAddr,
    /// Delta-tick period.
    pub interval: Duration,
    /// Accept-poll tick (also bounds shutdown latency).
    pub read_timeout: Duration,
}

impl TapConfig {
    pub fn new(listen: NetAddr) -> Self {
        TapConfig {
            listen,
            interval: Duration::from_millis(250),
            read_timeout: Duration::from_millis(25),
        }
    }
}

/// The tap broadcast loop: accepts subscribers, ticks deltas. Runs until
/// `stop` rises; owned by [`serve_with_tap`] but public for harnesses
/// that drive [`serve`](crate::serve::serve) themselves.
pub fn tap_loop<R: Recorder + ?Sized>(
    listener: &NetListener,
    cfg: &TapConfig,
    snap: &(dyn Fn() -> MetricsSnapshot + Sync),
    stop: &AtomicBool,
    rec: &R,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let start = Instant::now();
    let mut subs: Vec<NetStream> = Vec::new();
    let mut prev = MetricsSnapshot::default();
    let mut seq = 0u64;
    let mut last_tick = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept(cfg.read_timeout) {
            Ok(Some(stream)) => {
                rec.counter(metrics::TAP_SUBSCRIBERS, 1);
                subs.push(stream);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
        // Tick only while someone is listening: the first frame a
        // subscriber sees is then the full cumulative state (delta
        // against whatever `prev` had accumulated to).
        if !subs.is_empty() && last_tick.elapsed() >= cfg.interval {
            last_tick = Instant::now();
            let cur = snap();
            let delta = cur.delta_since(&prev);
            prev = cur;
            let jsonl = borg_obs::export::metrics_jsonl(&[], &delta);
            let frame = codec::encode(&Msg::Tap {
                seq,
                at: start.elapsed().as_secs_f64(),
                jsonl,
            });
            seq += 1;
            subs.retain_mut(|s| s.write_all(&frame).is_ok());
            rec.counter(metrics::TAP_FRAMES, subs.len() as u64);
        }
    }
    for s in &subs {
        s.shutdown();
    }
}

/// [`serve`] with a live metrics tap alongside: binds `tap.listen`,
/// runs the broadcast loop on a scoped thread for the duration of the
/// serve call, and tears it down with the run. `snap` converts the
/// shared recorder into a [`MetricsSnapshot`] (the [`Recorder`] facade
/// itself has no snapshot method — only concrete sinks do).
pub fn serve_with_tap<P, R>(
    problem: &P,
    borg: BorgConfig,
    cfg: &ServeConfig,
    tap: &TapConfig,
    snap: &(dyn Fn() -> MetricsSnapshot + Sync),
    rec: &R,
) -> Result<ServeReport, NetError>
where
    P: Problem + ?Sized,
    R: Recorder + Sync + ?Sized,
{
    let listener = NetListener::bind(&tap.listen)?;
    let stop = AtomicBool::new(false);
    let result = std::thread::scope(|scope| {
        let handle = scope.spawn(|| tap_loop(&listener, tap, snap, &stop, rec));
        let result = serve(problem, borg, cfg, rec);
        stop.store(true, Ordering::SeqCst);
        let _ = handle.join();
        result
    });
    if let NetAddr::Unix(path) = &tap.listen {
        let _ = std::fs::remove_file(path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{connect_with_backoff, Backoff, Conn};
    use borg_obs::InMemoryRecorder;

    #[test]
    fn tap_streams_stable_schema_deltas_to_a_subscriber() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("borg-tap-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let addr = NetAddr::Unix(path.clone());
        let listener = NetListener::bind(&addr).unwrap();
        let cfg = TapConfig {
            listen: addr.clone(),
            interval: Duration::from_millis(10),
            read_timeout: Duration::from_millis(5),
        };
        let rec = InMemoryRecorder::new();
        rec.counter("net.frames_sent", 3);
        rec.observe("net.rtt_seconds", 0.25);
        let stop = AtomicBool::new(false);
        let frames = std::thread::scope(|scope| {
            scope.spawn(|| tap_loop(&listener, &cfg, &|| rec.snapshot(), &stop, &rec));
            let mut backoff = Backoff::default_schedule();
            let stream =
                connect_with_backoff(&addr, &mut backoff, Duration::from_millis(50)).unwrap();
            let mut conn = Conn::new(stream);
            let mut frames = Vec::new();
            for _ in 0..400 {
                match conn.recv() {
                    Ok(Some(Msg::Tap { seq, jsonl, .. })) => {
                        frames.push((seq, jsonl));
                        if frames.len() >= 2 {
                            break;
                        }
                        // Touch a counter between ticks: the next delta
                        // must still carry every key.
                        rec.counter("net.frames_sent", 1);
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            stop.store(true, Ordering::SeqCst);
            frames
        });
        let _ = std::fs::remove_file(&path);
        assert!(frames.len() >= 2, "subscriber saw {} frames", frames.len());
        assert_eq!(frames[0].0 + 1, frames[1].0);
        // First frame is the full cumulative state; both frames carry the
        // same key set (stable schema), histograms included.
        for (_, jsonl) in &frames {
            assert!(jsonl.contains("net.frames_sent"), "missing counter key");
            assert!(jsonl.contains("net.rtt_seconds"), "missing histogram key");
        }
    }
}
