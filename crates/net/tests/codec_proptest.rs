//! Codec robustness properties: every message round-trips bit-exactly,
//! and *no* malformed input — truncation, single-bit corruption,
//! oversized length fields, random garbage — ever panics or decodes to
//! a message. Decode is total.
//!
//! The single-bit-flip property leans on FNV-1a's per-step bijectivity:
//! XOR-with-a-byte and multiply-by-an-odd-prime are both bijections on
//! the hash state, so two payloads differing in one byte can never hash
//! to the same checksum.

use borg_net::codec::{
    decode, decode_complete, encode, DecodeError, Msg, TraceCtx, HEADER_LEN, MAGIC, MAX_PAYLOAD,
    UNASSIGNED, VERSION,
};
use borg_protocol::{Command, Event};
use proptest::prelude::*;
use proptest::strategy::Union;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1.0e9f64..1.0e9
}

fn f64_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(finite_f64(), 0..12)
}

/// Strings over a range that includes two-byte UTF-8 code points.
fn name_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x24F, 0..12)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

fn command_strategy() -> Union<Command> {
    prop_oneof![
        (0usize..64, 0u64..1_000_000, 0u32..8).prop_map(|(worker, eval_id, attempt)| {
            Command::Dispatch {
                worker,
                eval_id,
                attempt,
            }
        }),
        (0usize..64, 0u64..1_000_000)
            .prop_map(|(worker, eval_id)| Command::Consume { worker, eval_id }),
        (0usize..64, 0u64..1_000_000)
            .prop_map(|(worker, eval_id)| Command::SuppressDuplicate { worker, eval_id }),
        (0usize..64).prop_map(|worker| Command::Ping { worker }),
        (0usize..64).prop_map(|worker| Command::RetireWorker { worker }),
        (0u64..1_000_000).prop_map(|eval_id| Command::Abandon { eval_id }),
        Just(Command::RearmHeartbeat),
        Just(Command::Finish),
    ]
}

fn event_strategy() -> Union<Event> {
    prop_oneof![
        (0usize..64, 0u64..1_000_000, finite_f64()).prop_map(|(worker, eval_id, at)| {
            Event::ResultArrived {
                worker,
                eval_id,
                at,
            }
        }),
        (0u64..1_000_000, 0usize..64, 0u64..u64::MAX, finite_f64()).prop_map(
            |(eval_id, worker, deadline_bits, at)| Event::DeadlineFired {
                eval_id,
                worker,
                deadline_bits,
                at,
            }
        ),
        finite_f64().prop_map(|at| Event::HeartbeatTick { at }),
        (0usize..64, finite_f64(), 0u8..2, 0u8..2, 0u64..1_000_000).prop_map(
            |(worker, at, respawn, has_lost, lost)| Event::WorkerDied {
                worker,
                at,
                will_respawn: respawn == 1,
                lost_eval: (has_lost == 1).then_some(lost),
            }
        ),
        (0usize..64, finite_f64()).prop_map(|(worker, at)| Event::WorkerRespawned { worker, at }),
    ]
}

/// Optional trace context, absent half the time: absent-context frames
/// exercise the backward-compatible (legacy wire bytes) form.
fn ctx_strategy() -> impl Strategy<Value = Option<TraceCtx>> {
    prop_oneof![
        Just(None),
        (0u64..1_000_000, 0u64..u64::MAX, finite_f64()).prop_map(
            |(trace_id, parent_span, sent_at)| Some(TraceCtx {
                trace_id,
                parent_span,
                sent_at,
            })
        ),
    ]
}

/// Every `Msg` variant, including the full `Command`/`Event` vocabulary.
fn msg_strategy() -> Union<Msg> {
    prop_oneof![
        (0u64..1_000).prop_map(|worker| Msg::Hello { worker }),
        Just(Msg::Hello { worker: UNASSIGNED }),
        (0u64..1_000, name_string(), 0u64..1_000_000).prop_map(
            |(worker, problem, eval_delay_us)| Msg::Welcome {
                worker,
                problem,
                eval_delay_us,
            }
        ),
        (
            0u64..1_000_000,
            0u32..8,
            0u64..1_000_000,
            f64_vec(),
            ctx_strategy()
        )
            .prop_map(|(eval_id, attempt, seq, variables, ctx)| Msg::Work {
                eval_id,
                attempt,
                seq,
                variables,
                ctx,
            }),
        (
            0u64..1_000,
            0u64..1_000_000,
            0u32..8,
            f64_vec(),
            f64_vec(),
            ctx_strategy()
        )
            .prop_map(|(worker, eval_id, attempt, objectives, constraints, ctx)| {
                Msg::Outcome {
                    worker,
                    eval_id,
                    attempt,
                    objectives,
                    constraints,
                    ctx,
                }
            }),
        (0u64..1_000, ctx_strategy()).prop_map(|(worker, ctx)| Msg::Heartbeat { worker, ctx }),
        (0u64..1_000_000, finite_f64(), name_string()).prop_map(|(seq, at, jsonl)| Msg::Tap {
            seq,
            at,
            jsonl
        }),
        Just(Msg::Shutdown),
        command_strategy().prop_map(Msg::Cmd),
        event_strategy().prop_map(Msg::Evt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn round_trip_is_identity(msg in msg_strategy()) {
        let frame = encode(&msg);
        prop_assert!(frame.len() >= HEADER_LEN);
        // Streaming decode consumes exactly the frame...
        prop_assert_eq!(decode(&frame), Ok(Some((msg.clone(), frame.len()))));
        // ...and the at-EOF form agrees.
        prop_assert_eq!(decode_complete(&frame), Ok(msg));
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic(msg in msg_strategy()) {
        let frame = encode(&msg);
        for cut in 0..frame.len() {
            let prefix = &frame[..cut];
            // At EOF a partial frame can never complete.
            prop_assert!(
                decode_complete(prefix).is_err(),
                "prefix of {cut}/{} bytes decoded",
                frame.len()
            );
            // Mid-stream it may legitimately wait for more bytes, but it
            // must never yield a message.
            prop_assert!(
                !matches!(decode(prefix), Ok(Some(_))),
                "streaming decode yielded a message from a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn single_bit_flips_never_decode(msg in msg_strategy(), sel in 0.0f64..1.0) {
        let frame = encode(&msg);
        let bit = ((frame.len() * 8) as f64 * sel) as usize;
        let mut corrupted = frame.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            decode_complete(&corrupted).is_err(),
            "flipping bit {bit} went undetected (frame {} bytes)",
            frame.len()
        );
        prop_assert!(
            !matches!(decode(&corrupted), Ok(Some(_))),
            "streaming decode yielded a message from a corrupted frame (bit {bit})"
        );
    }

    #[test]
    fn oversized_length_is_rejected_from_the_header_alone(
        excess in 1u32..(u32::MAX - (1 << 20)),
    ) {
        let declared = MAX_PAYLOAD as u32 + excess;
        let mut buf = Vec::with_capacity(HEADER_LEN);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(VERSION);
        buf.extend_from_slice(&declared.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        // The header alone must produce the error — an implementation
        // that waited for (or allocated) the declared payload would
        // return Ok(None) here and buffer up to 4 GiB of attacker-chosen
        // length.
        prop_assert_eq!(decode(&buf), Err(DecodeError::Oversized(declared)));
        prop_assert_eq!(decode_complete(&buf), Err(DecodeError::Oversized(declared)));
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(0u8..=255u8, 0..64)) {
        let _ = decode(&bytes);
        let _ = decode_complete(&bytes);
    }
}

/// `NaN`/`±inf`/`-0.0` defeat `PartialEq`, so the round trip for
/// non-finite payloads is checked at the byte level instead.
#[test]
fn non_finite_payloads_round_trip_at_the_bit_level() {
    let msg = Msg::Work {
        eval_id: 7,
        attempt: 1,
        seq: 3,
        variables: vec![
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
        ],
        ctx: Some(TraceCtx {
            trace_id: 7,
            parent_span: 0,
            sent_at: f64::NAN,
        }),
    };
    let frame = encode(&msg);
    let back = decode_complete(&frame).expect("non-finite frame must decode");
    assert_eq!(encode(&back), frame, "re-encode changed the bit pattern");
}
