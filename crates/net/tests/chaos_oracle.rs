//! The headline claim of the networked transport: under pinned timing
//! (`TaMode::Sampled`), a chaos-mode loopback run — real sockets, real
//! worker threads, a chaos proxy physically enacting the seeded
//! `FaultPlan` — produces a fault ledger, recovery actions, and final
//! archive **bit-for-bit identical** to the DES fault oracle fed the
//! same plan.

use borg_core::algorithm::BorgConfig;
use borg_core::problem::Problem;
use borg_desim::fault::{FaultConfig, FaultKind};
use borg_models::dist::Dist;
use borg_net::chaos::{run_chaos_loopback, ChaosConfig};
use borg_obs::NoopRecorder;
use borg_parallel::virtual_exec::{run_virtual_async_faulty, TaMode, VirtualConfig};
use borg_problems::dtlz::Dtlz;

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn resolve(name: &str) -> Option<Box<dyn Problem>> {
    (name == "dtlz2-5").then(|| Box::new(Dtlz::dtlz2_5()) as Box<dyn Problem>)
}

fn gate_config(seed: u64) -> VirtualConfig {
    VirtualConfig {
        processors: 8,
        max_nfe: 1_200,
        t_f: Dist::normal_cv(0.001, 0.1),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
        seed,
    }
}

#[test]
fn chaos_loopback_matches_des_oracle_bit_for_bit() {
    let config = gate_config(0xB0C4_2026);
    let faults = FaultConfig {
        crash_rate: 0.25,
        drop_rate: 0.05,
        duplicate_rate: 0.02,
        ..FaultConfig::default()
    };
    let problem = Dtlz::dtlz2_5();
    let borg = BorgConfig::new(5, 0.06);
    let rec = NoopRecorder;

    let oracle =
        run_virtual_async_faulty(&problem, borg.clone(), &config, &faults, &rec, |_, _| {});
    assert!(
        oracle.fault_log.injected() > 0,
        "fault config must actually inject for the comparison to mean anything"
    );

    let chaos = ChaosConfig::loopback(&std::env::temp_dir(), "oracle-test", 7);
    let net = run_chaos_loopback(
        &problem, borg, &config, &faults, &chaos, "dtlz2-5", &resolve, &rec,
    )
    .expect("chaos loopback run failed");

    assert_eq!(net.degraded, None, "run fell back to local evaluation");
    assert!(
        net.wire_results > 0,
        "wire must be load-bearing: no result frame was ever consumed"
    );

    // The recovery ledger: injected faults, detection/recovery stamps,
    // reissues, suppressed duplicates, wasted NFE — all bit-identical.
    assert_eq!(
        net.fault_log, oracle.fault_log,
        "networked fault ledger diverged from the DES oracle"
    );

    // The run outcome: elapsed virtual time to the bit, NFE, archive.
    assert_eq!(
        net.outcome.elapsed.to_bits(),
        oracle.outcome.elapsed.to_bits(),
        "elapsed virtual time diverged: {} vs {}",
        net.outcome.elapsed,
        oracle.outcome.elapsed
    );
    assert_eq!(net.engine.nfe(), oracle.engine.nfe(), "NFE diverged");
    let arch_net = net.engine.archive().solutions();
    let arch_oracle = oracle.engine.archive().solutions();
    assert_eq!(arch_net.len(), arch_oracle.len(), "archive size diverged");
    for (i, (a, b)) in arch_net.iter().zip(arch_oracle.iter()).enumerate() {
        assert!(
            bits_eq(a.objectives(), b.objectives()),
            "archive member {i} objectives diverged: {:?} vs {:?}",
            a.objectives(),
            b.objectives()
        );
        assert!(
            bits_eq(a.variables(), b.variables()),
            "archive member {i} variables diverged"
        );
    }

    // The sampled timing streams consumed in the same order.
    assert!(
        bits_eq(&net.ta_samples, &oracle.ta_samples),
        "T_A stream diverged"
    );
    assert!(
        bits_eq(&net.tf_samples, &oracle.tf_samples),
        "T_F stream diverged"
    );

    // The proxy's wire-side ledger physically enacted the same faults,
    // kind for kind (its timestamps are wall-clock, so the full records
    // are not comparable — the counts per kind are).
    for kind in [
        FaultKind::Crash,
        FaultKind::Hang,
        FaultKind::Straggler,
        FaultKind::MessageDrop,
        FaultKind::MessageDuplicate,
    ] {
        assert_eq!(
            net.wire_log.injected_of(kind),
            oracle.fault_log.injected_of(kind),
            "wire ledger count for {kind:?} diverged from the oracle"
        );
    }

    // Crash resets must have pushed at least one worker through the
    // reconnect/backoff/re-registration path.
    let crashes = oracle.fault_log.injected_of(FaultKind::Crash);
    if crashes > 0 {
        assert!(
            net.worker_reconnects >= 1,
            "{crashes} crash(es) enacted but no worker ever re-registered"
        );
    }
}

#[test]
fn chaos_loopback_fault_free_matches_oracle_too() {
    let config = gate_config(0x5EED_0007);
    let faults = FaultConfig::default();
    let problem = Dtlz::dtlz2_5();
    let borg = BorgConfig::new(5, 0.06);
    let rec = NoopRecorder;

    let oracle =
        run_virtual_async_faulty(&problem, borg.clone(), &config, &faults, &rec, |_, _| {});
    assert_eq!(oracle.fault_log.injected(), 0);

    let chaos = ChaosConfig::loopback(&std::env::temp_dir(), "quiet-test", 7);
    let net = run_chaos_loopback(
        &problem, borg, &config, &faults, &chaos, "dtlz2-5", &resolve, &rec,
    )
    .expect("fault-free loopback run failed");

    assert_eq!(net.degraded, None);
    assert_eq!(net.wire_log.injected(), 0, "quiet plan must inject nothing");
    assert_eq!(net.fault_log, oracle.fault_log);
    assert_eq!(net.engine.nfe(), oracle.engine.nfe());
    assert_eq!(
        net.outcome.elapsed.to_bits(),
        oracle.outcome.elapsed.to_bits()
    );
    assert_eq!(
        net.engine.archive().solutions().len(),
        oracle.engine.archive().solutions().len()
    );
    assert_eq!(
        net.wire_results,
        net.engine.nfe(),
        "every NFE came off the wire"
    );
}
