//! Cross-process distributed tracing under chaos: every process records
//! only the trace edges it observed (master shard + one shard per
//! external worker thread with its own recorder), and the deterministic
//! merge must reconstruct **exactly one** connected dispatch → evaluate →
//! consume chain per completed evaluation — despite crashes, reconnects,
//! dropped results, and duplicated frames on the wire.

use borg_core::algorithm::BorgConfig;
use borg_core::problem::Problem;
use borg_desim::fault::FaultConfig;
use borg_models::dist::Dist;
use borg_net::chaos::{run_chaos_loopback, ChaosConfig};
use borg_net::transport::Backoff;
use borg_net::worker::{run_worker, WorkerOptions};
use borg_obs::{merge_shards, InMemoryRecorder, TraceShard};
use borg_parallel::virtual_exec::{TaMode, VirtualConfig};
use borg_problems::dtlz::Dtlz;
use std::time::Duration;

fn resolve(name: &str) -> Option<Box<dyn Problem>> {
    (name == "dtlz2-5").then(|| Box::new(Dtlz::dtlz2_5()) as Box<dyn Problem>)
}

#[test]
fn merged_trace_has_one_chain_per_completed_eval_under_chaos() {
    let workers = 3usize;
    let config = VirtualConfig {
        processors: workers as u32 + 1,
        max_nfe: 400,
        t_f: Dist::normal_cv(0.001, 0.1),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
        seed: 0x7ACE_CA11,
    };
    let faults = FaultConfig {
        crash_rate: 0.2,
        drop_rate: 0.05,
        duplicate_rate: 0.05,
        ..FaultConfig::default()
    };
    let problem = Dtlz::dtlz2_5();
    let borg = BorgConfig::new(5, 0.06);

    // External workers with private recorders: each process (thread,
    // here) sees only its own side of the wire.
    let chaos = ChaosConfig::loopback(&std::env::temp_dir(), "trace-chain", 0);
    let master_rec = InMemoryRecorder::new();
    let worker_recs: Vec<InMemoryRecorder> =
        (0..workers).map(|_| InMemoryRecorder::new()).collect();

    let (net, reports) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for rec in &worker_recs {
            let opts = WorkerOptions {
                connect: chaos.listen.clone(),
                read_timeout: Duration::from_millis(25),
                heartbeat_every: Duration::from_millis(100),
                backoff: Backoff::default_schedule(),
            };
            handles.push(scope.spawn(move || run_worker(&opts, &resolve, rec)));
        }
        let net = run_chaos_loopback(
            &problem,
            borg,
            &config,
            &faults,
            &chaos,
            "dtlz2-5",
            &resolve,
            &master_rec,
        )
        .expect("chaos loopback run failed");
        let reports: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        (net, reports)
    });

    assert_eq!(net.degraded, None, "run fell back to local evaluation");
    assert!(net.wire_results > 0, "wire was not load-bearing");

    // One shard per process, merged on the master clock.
    let mut shards = vec![TraceShard::new(
        "master",
        None,
        master_rec.take_trace_edges(),
    )];
    for (rec, report) in worker_recs.iter().zip(&reports) {
        let report = report.as_ref().expect("worker errored");
        shards.push(TraceShard::new(
            format!("worker{}", report.worker),
            Some(report.worker),
            rec.take_trace_edges(),
        ));
    }

    // The shard JSONL round-trip is part of the pipeline (borg-exp
    // writes shards to disk before merging): merge the re-parsed form.
    let reparsed: Vec<TraceShard> = shards
        .iter()
        .map(|s| TraceShard::from_jsonl(&s.to_jsonl()).expect("shard reparse"))
        .collect();
    let merged = merge_shards(&reparsed).expect("merge");

    // Exactly one connected chain per completed evaluation, and one
    // completed evaluation per consumed wire result — chaos reissues and
    // duplicated frames must not fabricate extra chains.
    assert_eq!(
        merged.chains.len() as u64,
        net.wire_results,
        "chain count != consumed wire results (incomplete: {})",
        merged.incomplete
    );
    for (eval, n) in merged.chains_per_eval() {
        assert_eq!(n, 1, "eval {eval} reconstructed {n} chains");
    }

    // The crash/drop plan must have left some incomplete groups behind
    // (a dispatch that never completed), or the chaos did nothing.
    assert!(
        net.wire_log.injected() > 0,
        "fault plan injected nothing; weaken the rates and re-seed"
    );

    // The Chrome render carries the per-eval decomposition for every
    // chain and nothing else.
    let json = merged.chrome_json();
    assert_eq!(
        json.matches("\"name\":\"evaluate\"").count(),
        merged.chains.len()
    );
    assert!(json.contains("\"t_c_out\""));
}
