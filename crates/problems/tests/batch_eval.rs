//! Differential test: every `evaluate_batch` override must agree exactly
//! with per-row `evaluate` (the batch path feeds the benchmark suite and
//! any future vectorized evaluators, so bit-identity is the contract).

use borg_core::matrix::ObjectiveMatrix;
use borg_core::problem::Problem;
use borg_problems::prelude::*;

/// Tiny deterministic generator so the test needs no RNG dependency.
fn next_unit(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

fn check_batch<P: Problem>(p: &P) {
    let l = p.num_variables();
    let rows = 64;
    let mut vars = ObjectiveMatrix::new(l);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut row = vec![0.0; l];
    for _ in 0..rows {
        for (i, slot) in row.iter_mut().enumerate() {
            let b = p.bounds(i);
            *slot = b.lower + next_unit(&mut state) * b.range();
        }
        vars.push_row(&row);
    }

    let mut objs = ObjectiveMatrix::new(0);
    let mut cons = ObjectiveMatrix::new(0);
    p.evaluate_batch(&vars, &mut objs, &mut cons);
    assert_eq!(objs.rows(), rows, "{}", p.name());
    assert_eq!(objs.stride(), p.num_objectives(), "{}", p.name());
    assert_eq!(cons.rows(), rows, "{}", p.name());
    assert_eq!(cons.stride(), p.num_constraints(), "{}", p.name());

    let mut o = vec![0.0; p.num_objectives()];
    let mut c = vec![0.0; p.num_constraints()];
    for i in 0..rows {
        p.evaluate(vars.row(i), &mut o, &mut c);
        assert_eq!(objs.row(i), &o[..], "{} objective row {i}", p.name());
        assert_eq!(cons.row(i), &c[..], "{} constraint row {i}", p.name());
    }

    // Re-running on the same (non-empty) output matrices must reset them,
    // not append.
    p.evaluate_batch(&vars, &mut objs, &mut cons);
    assert_eq!(objs.rows(), rows);
}

#[test]
fn dtlz_batch_matches_per_row() {
    check_batch(&Dtlz::dtlz2_5());
    check_batch(&Dtlz::new(DtlzVariant::Dtlz1, 3));
    check_batch(&Dtlz::new(DtlzVariant::Dtlz7, 4));
}

#[test]
fn uf_batch_matches_per_row() {
    check_batch(&Uf::new(UfVariant::Uf1));
    check_batch(&Uf::new(UfVariant::Uf8));
}

#[test]
fn wfg_batch_matches_per_row() {
    check_batch(&Wfg::new(WfgVariant::Wfg1, 3, 4, 6));
    check_batch(&Wfg::new(WfgVariant::Wfg9, 3, 4, 6));
}

#[test]
fn default_batch_on_dyn_problem_matches_per_row() {
    // The trait default (one dynamic dispatch per row) must agree too.
    let p: &dyn Problem = &Zdt::new(ZdtVariant::Zdt1);
    check_batch(&p);
}
