//! Decision-space rotation: turns separable problems into non-separable
//! ones.
//!
//! The CEC 2009 competition built UF11/UF12 by rotating (and scaling) the
//! decision space of DTLZ2/DTLZ3. The official rotation matrices were
//! distributed as data files; we generate a deterministic random orthogonal
//! matrix instead (QR-style Gram-Schmidt of a seeded Gaussian matrix),
//! which produces the same qualitative effect — every variable interacts
//! with every other, defeating coordinate-wise search (see DESIGN.md §2).

use borg_core::problem::{Bounds, Problem};
use borg_core::rng::SplitMix64;
use rand::Rng;

/// A dense orthogonal matrix with `R Rᵀ = I`.
#[derive(Debug, Clone)]
pub struct OrthogonalMatrix {
    n: usize,
    /// Row-major entries.
    rows: Vec<Vec<f64>>,
}

impl OrthogonalMatrix {
    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let rows = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        Self { n, rows }
    }

    /// Deterministic random orthogonal matrix via Gram-Schmidt on a seeded
    /// Gaussian matrix (Haar-like; exact Haar would require sign fixing from
    /// the R diagonal, which is irrelevant here).
    pub fn random(n: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = SplitMix64::new(seed).derive("rotation");
        loop {
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
            let mut ok = true;
            'gen: for _ in 0..n {
                // Gaussian row via Box-Muller pairs.
                let mut v: Vec<f64> = (0..n)
                    .map(|_| {
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen();
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    })
                    .collect();
                // Orthogonalize against previous rows.
                for r in &rows {
                    let c: f64 = v.iter().zip(r).map(|(a, b)| a * b).sum();
                    for (x, y) in v.iter_mut().zip(r) {
                        *x -= c * y;
                    }
                }
                let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm < 1e-8 {
                    ok = false;
                    break 'gen;
                }
                for x in &mut v {
                    *x /= norm;
                }
                rows.push(v);
            }
            if ok {
                return Self { n, rows };
            }
            // Astronomically unlikely degenerate draw: retry with the same
            // rng stream (state already advanced).
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Computes `y = R x`.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        for (yi, row) in y.iter_mut().zip(&self.rows) {
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Computes `y = Rᵀ x` (the inverse transform, since R is orthogonal).
    pub fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        y.iter_mut().for_each(|v| *v = 0.0);
        for (xi, row) in x.iter().zip(&self.rows) {
            for (yj, rij) in y.iter_mut().zip(row) {
                *yj += xi * rij;
            }
        }
    }

    /// Maximum absolute deviation of `R Rᵀ` from the identity (test hook).
    pub fn orthogonality_error(&self) -> f64 {
        let mut err: f64 = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                let dot: f64 = self.rows[i]
                    .iter()
                    .zip(&self.rows[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                err = err.max((dot - expect).abs());
            }
        }
        err
    }
}

/// A problem whose decision space is rotated about the center of the inner
/// problem's (assumed uniform) bounds.
///
/// The outer bounds are extended by `extension` on each side so that every
/// point of the inner domain remains reachable after the inverse rotation;
/// rotated coordinates falling outside the inner bounds are clamped (the
/// CEC'09 convention).
pub struct RotatedProblem<P> {
    inner: P,
    rotation: OrthogonalMatrix,
    name: String,
    inner_bounds: Vec<Bounds>,
    outer_bounds: Vec<Bounds>,
    /// Per-objective multiplicative scale applied after evaluation.
    objective_scales: Vec<f64>,
}

impl<P: Problem> RotatedProblem<P> {
    /// Wraps `inner` with a random rotation derived from `seed`.
    pub fn new(inner: P, seed: u64) -> Self {
        Self::with_extension(inner, seed, 1.0)
    }

    /// Wraps `inner`, extending each variable's range by `extension ×
    /// range` on both sides.
    pub fn with_extension(inner: P, seed: u64, extension: f64) -> Self {
        assert!(extension >= 0.0);
        let n = inner.num_variables();
        let rotation = OrthogonalMatrix::random(n, seed);
        let inner_bounds = inner.all_bounds();
        let outer_bounds = inner_bounds
            .iter()
            .map(|b| {
                let pad = extension * b.range();
                Bounds::new(b.lower - pad, b.upper + pad)
            })
            .collect();
        let name = format!("R({})", inner.name());
        let m = inner.num_objectives();
        Self {
            inner,
            rotation,
            name,
            inner_bounds,
            outer_bounds,
            objective_scales: vec![1.0; m],
        }
    }

    /// Applies per-objective multiplicative scaling (UF11 scales its five
    /// objectives; scaling changes hypervolume bookkeeping but not the
    /// dominance structure).
    pub fn with_objective_scales(mut self, scales: Vec<f64>) -> Self {
        assert_eq!(scales.len(), self.inner.num_objectives());
        assert!(scales.iter().all(|&s| s > 0.0));
        self.objective_scales = scales;
        self
    }

    /// Overrides the display name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The rotation matrix in use.
    pub fn rotation(&self) -> &OrthogonalMatrix {
        &self.rotation
    }

    /// Objective scales in use.
    pub fn objective_scales(&self) -> &[f64] {
        &self.objective_scales
    }

    /// Access to the wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Problem> Problem for RotatedProblem<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_variables(&self) -> usize {
        self.inner.num_variables()
    }

    fn num_objectives(&self) -> usize {
        self.inner.num_objectives()
    }

    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }

    fn bounds(&self, i: usize) -> Bounds {
        self.outer_bounds[i]
    }

    fn evaluate(&self, vars: &[f64], objs: &mut [f64], cons: &mut [f64]) {
        let n = vars.len();
        // Center on the inner domain midpoint, rotate, restore, clamp.
        let mut centered = vec![0.0; n];
        for (c, (&x, b)) in centered.iter_mut().zip(vars.iter().zip(&self.inner_bounds)) {
            *c = x - 0.5 * (b.lower + b.upper);
        }
        let mut rotated = vec![0.0; n];
        self.rotation.apply(&centered, &mut rotated);
        for (r, b) in rotated.iter_mut().zip(&self.inner_bounds) {
            *r = b.clamp(*r + 0.5 * (b.lower + b.upper));
        }
        self.inner.evaluate(&rotated, objs, cons);
        for (o, &s) in objs.iter_mut().zip(&self.objective_scales) {
            *o *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtlz::Dtlz;

    #[test]
    fn random_matrix_is_orthogonal() {
        for n in [1, 2, 5, 14, 30] {
            let r = OrthogonalMatrix::random(n, 99);
            assert!(r.orthogonality_error() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn rotation_is_deterministic_in_seed() {
        let a = OrthogonalMatrix::random(6, 1);
        let b = OrthogonalMatrix::random(6, 1);
        let c = OrthogonalMatrix::random(6, 2);
        assert_eq!(a.rows, b.rows);
        assert_ne!(a.rows, c.rows);
    }

    #[test]
    fn apply_transpose_inverts_apply() {
        let r = OrthogonalMatrix::random(8, 3);
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.3 - 1.0).collect();
        let mut y = vec![0.0; 8];
        let mut back = vec![0.0; 8];
        r.apply(&x, &mut y);
        r.apply_transpose(&y, &mut back);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn identity_rotation_preserves_evaluation() {
        let inner = Dtlz::dtlz2_5();
        let mut rotated = RotatedProblem::new(Dtlz::dtlz2_5(), 7);
        rotated.rotation = OrthogonalMatrix::identity(inner.num_variables());
        let vars: Vec<f64> = (0..inner.num_variables())
            .map(|i| 0.1 + 0.05 * i as f64)
            .collect();
        let mut a = vec![0.0; 5];
        let mut b = vec![0.0; 5];
        inner.evaluate(&vars, &mut a, &mut []);
        rotated.evaluate(&vars, &mut b, &mut []);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn bounds_are_extended() {
        let p = RotatedProblem::new(Dtlz::dtlz2_5(), 7);
        let b = p.bounds(0);
        assert_eq!(b.lower, -1.0);
        assert_eq!(b.upper, 2.0);
    }

    #[test]
    fn optimum_is_reachable_after_rotation() {
        // The pre-image of the inner optimum (distance vars = 0.5) under the
        // rotation lies inside the extended bounds and evaluates to g = 0.
        let inner = Dtlz::dtlz2_5();
        let n = inner.num_variables();
        let p = RotatedProblem::new(Dtlz::dtlz2_5(), 11);
        // Inner optimum with mid positions.
        let target = vec![0.5; n];
        let centered: Vec<f64> = target.iter().map(|&x| x - 0.5).collect();
        let mut pre = vec![0.0; n];
        p.rotation().apply_transpose(&centered, &mut pre);
        let vars: Vec<f64> = pre.iter().map(|&x| x + 0.5).collect();
        for (i, &v) in vars.iter().enumerate() {
            assert!(p.bounds(i).contains(v));
        }
        let mut objs = vec![0.0; 5];
        p.evaluate(&vars, &mut objs, &mut []);
        let r2: f64 = objs.iter().map(|f| f * f).sum();
        assert!((r2 - 1.0).abs() < 1e-9, "rotated optimum off sphere: {r2}");
    }

    #[test]
    fn objective_scaling_applies() {
        let p = RotatedProblem::new(Dtlz::dtlz2_5(), 7)
            .with_objective_scales(vec![2.0, 1.0, 1.0, 1.0, 3.0]);
        let q = RotatedProblem::new(Dtlz::dtlz2_5(), 7);
        let vars = vec![0.5; 14];
        let mut a = vec![0.0; 5];
        let mut b = vec![0.0; 5];
        p.evaluate(&vars, &mut a, &mut []);
        q.evaluate(&vars, &mut b, &mut []);
        assert!((a[0] - 2.0 * b[0]).abs() < 1e-12);
        assert!((a[4] - 3.0 * b[4]).abs() < 1e-12);
        assert!((a[1] - b[1]).abs() < 1e-12);
    }

    #[test]
    fn rotation_makes_variables_interact() {
        // Perturbing one outer variable must change the value of g (i.e.
        // several inner coordinates), unlike in separable DTLZ2.
        let p = RotatedProblem::new(Dtlz::dtlz2_5(), 13);
        let base = vec![0.5; 14];
        let mut objs_a = vec![0.0; 5];
        p.evaluate(&base, &mut objs_a, &mut []);
        let mut perturbed = base.clone();
        perturbed[13] += 0.3; // a "distance" variable in the unrotated space
        let mut objs_b = vec![0.0; 5];
        p.evaluate(&perturbed, &mut objs_b, &mut []);
        // All five objectives change because the rotated perturbation leaks
        // into position variables too.
        let changed = objs_a
            .iter()
            .zip(&objs_b)
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(changed >= 4, "only {changed} objectives changed");
    }
}
