//! Small classic bi-objective problems used by examples and smoke tests.

use borg_core::problem::{Bounds, Problem};

/// Schaffer's problem: minimize `(x², (x − 2)²)` over `x ∈ [−10, 10]`.
/// Pareto set: `x ∈ [0, 2]`.
#[derive(Debug, Clone, Default)]
pub struct Schaffer;

impl Problem for Schaffer {
    fn name(&self) -> &str {
        "Schaffer"
    }
    fn num_variables(&self) -> usize {
        1
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn bounds(&self, _i: usize) -> Bounds {
        Bounds::new(-10.0, 10.0)
    }
    fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
        objs[0] = vars[0] * vars[0];
        objs[1] = (vars[0] - 2.0) * (vars[0] - 2.0);
    }
}

/// Fonseca–Fleming: two Gaussian-bump objectives, concave front.
#[derive(Debug, Clone)]
pub struct Fonseca {
    n: usize,
}

impl Fonseca {
    /// Standard 3-variable instance.
    pub fn new() -> Self {
        Self { n: 3 }
    }
}

impl Default for Fonseca {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem for Fonseca {
    fn name(&self) -> &str {
        "Fonseca"
    }
    fn num_variables(&self) -> usize {
        self.n
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn bounds(&self, _i: usize) -> Bounds {
        Bounds::new(-4.0, 4.0)
    }
    fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
        let inv = 1.0 / (self.n as f64).sqrt();
        let s1: f64 = vars.iter().map(|x| (x - inv) * (x - inv)).sum();
        let s2: f64 = vars.iter().map(|x| (x + inv) * (x + inv)).sum();
        objs[0] = 1.0 - (-s1).exp();
        objs[1] = 1.0 - (-s2).exp();
    }
}

/// A constrained bi-objective problem (Binh & Korn 1997) exercising the
/// constraint-handling paths: two quadratic objectives with two inequality
/// constraints.
#[derive(Debug, Clone, Default)]
pub struct BinhKorn;

impl Problem for BinhKorn {
    fn name(&self) -> &str {
        "BinhKorn"
    }
    fn num_variables(&self) -> usize {
        2
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        2
    }
    fn bounds(&self, i: usize) -> Bounds {
        if i == 0 {
            Bounds::new(0.0, 5.0)
        } else {
            Bounds::new(0.0, 3.0)
        }
    }
    fn evaluate(&self, vars: &[f64], objs: &mut [f64], cons: &mut [f64]) {
        let (x, y) = (vars[0], vars[1]);
        objs[0] = 4.0 * x * x + 4.0 * y * y;
        objs[1] = (x - 5.0) * (x - 5.0) + (y - 5.0) * (y - 5.0);
        // g1: (x−5)² + y² ≤ 25  → violation when positive.
        cons[0] = (x - 5.0) * (x - 5.0) + y * y - 25.0;
        // g2: (x−8)² + (y+3)² ≥ 7.7.
        cons[1] = 7.7 - ((x - 8.0) * (x - 8.0) + (y + 3.0) * (y + 3.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_core::prelude::*;

    #[test]
    fn schaffer_pareto_points() {
        let p = Schaffer;
        let mut o = [0.0; 2];
        p.evaluate(&[0.0], &mut o, &mut []);
        assert_eq!(o, [0.0, 4.0]);
        p.evaluate(&[2.0], &mut o, &mut []);
        assert_eq!(o, [4.0, 0.0]);
        p.evaluate(&[1.0], &mut o, &mut []);
        assert_eq!(o, [1.0, 1.0]);
    }

    #[test]
    fn fonseca_objectives_bounded_in_unit_interval() {
        use rand::{Rng, SeedableRng};
        let p = Fonseca::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let vars: Vec<f64> = (0..3).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let mut o = [0.0; 2];
            p.evaluate(&vars, &mut o, &mut []);
            assert!(o.iter().all(|&f| (0.0..=1.0).contains(&f)));
        }
    }

    #[test]
    fn binh_korn_constraint_signs() {
        let p = BinhKorn;
        let mut o = [0.0; 2];
        let mut c = [0.0; 2];
        // (0,0): g1 = 25 − 25 = 0 OK; g2: 7.7 − (64 + 9) < 0 OK.
        p.evaluate(&[0.0, 0.0], &mut o, &mut c);
        assert!(c[0] <= 0.0 && c[1] <= 0.0);
        // (5,3): g1 = 0 + 9 − 25 < 0 OK; g2 = 7.7 − (9 + 36) < 0 OK.
        p.evaluate(&[5.0, 3.0], &mut o, &mut c);
        assert!(c[0] <= 0.0 && c[1] <= 0.0);
    }

    #[test]
    fn borg_solves_schaffer() {
        let engine = run_serial(&Schaffer, BorgConfig::new(2, 0.05), 1, 3000, |_| {});
        // Archive solutions should have x in [0, 2] (the Pareto set).
        for s in engine.archive().solutions() {
            let x = s.variables()[0];
            assert!((-0.15..=2.15).contains(&x), "x = {x} off the Pareto set");
        }
        assert!(engine.archive().len() > 10);
    }

    #[test]
    fn borg_finds_feasible_solutions_on_binh_korn() {
        let engine = run_serial(&BinhKorn, BorgConfig::new(2, 1.0), 2, 3000, |_| {});
        assert!(!engine.archive().is_empty());
        for s in engine.archive().solutions() {
            assert!(s.is_feasible(), "archive kept infeasible solution");
        }
    }
}
