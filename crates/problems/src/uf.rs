//! The CEC 2009 unconstrained (UF) test suite (Zhang et al., tech. report
//! CES-487).
//!
//! UF1–UF7 are bi-objective, UF8–UF10 tri-objective, all with non-separable
//! variable linkage along a nonlinear Pareto-set curve. UF11 — the paper's
//! "hard" problem — is a rotated, scaled 5-objective DTLZ2 (the official
//! name is `R2_DTLZ2_M5`); UF12 is the analogous rotated DTLZ3. We build
//! UF11/UF12 from [`RotatedProblem`] with a fixed seed; see DESIGN.md §2
//! for why this substitution preserves the relevant behaviour.

use crate::dtlz::{Dtlz, DtlzVariant};
use crate::rotation::RotatedProblem;
use borg_core::matrix::ObjectiveMatrix;
use borg_core::problem::{batch_eval_loop, Bounds, Problem};
use std::f64::consts::PI;

/// Which bi-/tri-objective UF instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UfVariant {
    /// Bi-objective, convex front.
    Uf1,
    /// Bi-objective, convex front, harder linkage.
    Uf2,
    /// Bi-objective, all variables in `[0, 1]`.
    Uf3,
    /// Bi-objective, concave front.
    Uf4,
    /// Bi-objective, discrete front (21 points).
    Uf5,
    /// Bi-objective, disconnected front.
    Uf6,
    /// Bi-objective, linear front.
    Uf7,
    /// Tri-objective, spherical front.
    Uf8,
    /// Tri-objective, disconnected planar front.
    Uf9,
    /// Tri-objective, multimodal spherical front.
    Uf10,
}

/// A UF1–UF10 instance.
#[derive(Debug, Clone)]
pub struct Uf {
    variant: UfVariant,
    n: usize,
    name: &'static str,
}

impl Uf {
    /// Creates a UF instance with the standard 30 decision variables.
    pub fn new(variant: UfVariant) -> Self {
        Self::with_variables(variant, 30)
    }

    /// Creates a UF instance with a custom variable count (`n >= 3` for
    /// bi-objective, `n >= 5` recommended for tri-objective instances).
    pub fn with_variables(variant: UfVariant, n: usize) -> Self {
        assert!(n >= 4, "UF needs at least four variables");
        let name = match variant {
            UfVariant::Uf1 => "UF1",
            UfVariant::Uf2 => "UF2",
            UfVariant::Uf3 => "UF3",
            UfVariant::Uf4 => "UF4",
            UfVariant::Uf5 => "UF5",
            UfVariant::Uf6 => "UF6",
            UfVariant::Uf7 => "UF7",
            UfVariant::Uf8 => "UF8",
            UfVariant::Uf9 => "UF9",
            UfVariant::Uf10 => "UF10",
        };
        Self { variant, n, name }
    }

    fn is_triobjective(&self) -> bool {
        matches!(
            self.variant,
            UfVariant::Uf8 | UfVariant::Uf9 | UfVariant::Uf10
        )
    }

    /// Σ and count over J1/J2 for the bi-objective family, where each term
    /// is `f(y_j, j)` of the linkage residual.
    fn sums2<F: Fn(f64, usize) -> f64, Y: Fn(f64, usize) -> f64>(
        &self,
        vars: &[f64],
        y: Y,
        term: F,
    ) -> ([f64; 2], [usize; 2]) {
        let n = self.n;
        let mut sums = [0.0; 2];
        let mut counts = [0usize; 2];
        for j in 2..=n {
            let yj = y(vars[j - 1], j);
            let group = if j % 2 == 1 { 0 } else { 1 };
            sums[group] += term(yj, j);
            counts[group] += 1;
        }
        (sums, counts)
    }

    /// Product over J1/J2 of `f(y_j, j)` for UF3/UF6.
    fn prods2<F: Fn(f64, usize) -> f64, Y: Fn(f64, usize) -> f64>(
        &self,
        vars: &[f64],
        y: Y,
        term: F,
    ) -> [f64; 2] {
        let n = self.n;
        let mut prods = [1.0; 2];
        for j in 2..=n {
            let yj = y(vars[j - 1], j);
            let group = if j % 2 == 1 { 0 } else { 1 };
            prods[group] *= term(yj, j);
        }
        prods
    }

    /// Σ and count over J1/J2/J3 for the tri-objective family.
    fn sums3<F: Fn(f64) -> f64>(&self, vars: &[f64], term: F) -> ([f64; 3], [usize; 3]) {
        let n = self.n;
        let x1 = vars[0];
        let x2 = vars[1];
        let mut sums = [0.0; 3];
        let mut counts = [0usize; 3];
        for j in 3..=n {
            let yj = vars[j - 1] - 2.0 * x2 * (2.0 * PI * x1 + j as f64 * PI / n as f64).sin();
            let group = match j % 3 {
                1 => 0,
                2 => 1,
                _ => 2,
            };
            sums[group] += term(yj);
            counts[group] += 1;
        }
        (sums, counts)
    }
}

impl Problem for Uf {
    fn name(&self) -> &str {
        self.name
    }

    fn num_variables(&self) -> usize {
        self.n
    }

    fn num_objectives(&self) -> usize {
        if self.is_triobjective() {
            3
        } else {
            2
        }
    }

    fn bounds(&self, i: usize) -> Bounds {
        match self.variant {
            UfVariant::Uf3 => Bounds::unit(),
            UfVariant::Uf4 => {
                if i == 0 {
                    Bounds::unit()
                } else {
                    Bounds::new(-2.0, 2.0)
                }
            }
            UfVariant::Uf8 | UfVariant::Uf9 | UfVariant::Uf10 => {
                if i < 2 {
                    Bounds::unit()
                } else {
                    Bounds::new(-2.0, 2.0)
                }
            }
            _ => {
                if i == 0 {
                    Bounds::unit()
                } else {
                    Bounds::new(-1.0, 1.0)
                }
            }
        }
    }

    fn evaluate_batch(
        &self,
        vars: &ObjectiveMatrix,
        objs: &mut ObjectiveMatrix,
        cons: &mut ObjectiveMatrix,
    ) {
        // One virtual call per batch instead of per row: the concrete
        // kernel monomorphizes and inlines into the row loop.
        batch_eval_loop(self, vars, objs, cons, Self::evaluate);
    }

    fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
        let n = self.n as f64;
        let x1 = vars[0];
        match self.variant {
            UfVariant::Uf1 => {
                let y = |xj: f64, j: usize| xj - (6.0 * PI * x1 + j as f64 * PI / n).sin();
                let (s, c) = self.sums2(vars, y, |yj, _| yj * yj);
                objs[0] = x1 + 2.0 * s[0] / c[0] as f64;
                objs[1] = 1.0 - x1.sqrt() + 2.0 * s[1] / c[1] as f64;
            }
            UfVariant::Uf2 => {
                let y = |xj: f64, j: usize| {
                    let a =
                        0.3 * x1 * x1 * (24.0 * PI * x1 + 4.0 * j as f64 * PI / n).cos() + 0.6 * x1;
                    let phase = 6.0 * PI * x1 + j as f64 * PI / n;
                    if j % 2 == 1 {
                        xj - a * phase.cos()
                    } else {
                        xj - a * phase.sin()
                    }
                };
                let (s, c) = self.sums2(vars, y, |yj, _| yj * yj);
                objs[0] = x1 + 2.0 * s[0] / c[0] as f64;
                objs[1] = 1.0 - x1.sqrt() + 2.0 * s[1] / c[1] as f64;
            }
            UfVariant::Uf3 => {
                let y = |xj: f64, j: usize| {
                    xj - x1.powf(0.5 * (1.0 + 3.0 * (j as f64 - 2.0) / (n - 2.0)))
                };
                let (s, c) = self.sums2(vars, y, |yj, _| yj * yj);
                let p = self.prods2(vars, y, |yj, j| (20.0 * yj * PI / (j as f64).sqrt()).cos());
                objs[0] = x1 + 2.0 / c[0] as f64 * (4.0 * s[0] - 2.0 * p[0] + 2.0);
                objs[1] = 1.0 - x1.sqrt() + 2.0 / c[1] as f64 * (4.0 * s[1] - 2.0 * p[1] + 2.0);
            }
            UfVariant::Uf4 => {
                let y = |xj: f64, j: usize| xj - (6.0 * PI * x1 + j as f64 * PI / n).sin();
                let h = |t: f64| t.abs() / (1.0 + (2.0 * t.abs()).exp());
                let (s, c) = self.sums2(vars, y, |yj, _| h(yj));
                objs[0] = x1 + 2.0 * s[0] / c[0] as f64;
                objs[1] = 1.0 - x1 * x1 + 2.0 * s[1] / c[1] as f64;
            }
            UfVariant::Uf5 => {
                let y = |xj: f64, j: usize| xj - (6.0 * PI * x1 + j as f64 * PI / n).sin();
                let h = |t: f64| 2.0 * t * t - (4.0 * PI * t).cos() + 1.0;
                let (s, c) = self.sums2(vars, y, |yj, _| h(yj));
                let (big_n, eps) = (10.0, 0.1);
                let bump = (1.0 / (2.0 * big_n) + eps) * (2.0 * big_n * PI * x1).sin().abs();
                objs[0] = x1 + bump + 2.0 * s[0] / c[0] as f64;
                objs[1] = 1.0 - x1 + bump + 2.0 * s[1] / c[1] as f64;
            }
            UfVariant::Uf6 => {
                let y = |xj: f64, j: usize| xj - (6.0 * PI * x1 + j as f64 * PI / n).sin();
                let (s, c) = self.sums2(vars, y, |yj, _| yj * yj);
                let p = self.prods2(vars, y, |yj, j| (20.0 * yj * PI / (j as f64).sqrt()).cos());
                let (big_n, eps) = (2.0, 0.1);
                let bump =
                    (2.0 * (1.0 / (2.0 * big_n) + eps) * (2.0 * big_n * PI * x1).sin()).max(0.0);
                objs[0] = x1 + bump + 2.0 / c[0] as f64 * (4.0 * s[0] - 2.0 * p[0] + 2.0);
                objs[1] = 1.0 - x1 + bump + 2.0 / c[1] as f64 * (4.0 * s[1] - 2.0 * p[1] + 2.0);
            }
            UfVariant::Uf7 => {
                let y = |xj: f64, j: usize| xj - (6.0 * PI * x1 + j as f64 * PI / n).sin();
                let (s, c) = self.sums2(vars, y, |yj, _| yj * yj);
                let root = x1.powf(0.2);
                objs[0] = root + 2.0 * s[0] / c[0] as f64;
                objs[1] = 1.0 - root + 2.0 * s[1] / c[1] as f64;
            }
            UfVariant::Uf8 => {
                let x2 = vars[1];
                let (s, c) = self.sums3(vars, |y| y * y);
                objs[0] = (0.5 * x1 * PI).cos() * (0.5 * x2 * PI).cos() + 2.0 * s[0] / c[0] as f64;
                objs[1] = (0.5 * x1 * PI).cos() * (0.5 * x2 * PI).sin() + 2.0 * s[1] / c[1] as f64;
                objs[2] = (0.5 * x1 * PI).sin() + 2.0 * s[2] / c[2] as f64;
            }
            UfVariant::Uf9 => {
                let x2 = vars[1];
                let eps = 0.1;
                let (s, c) = self.sums3(vars, |y| y * y);
                let t = ((1.0 + eps) * (1.0 - 4.0 * (2.0 * x1 - 1.0) * (2.0 * x1 - 1.0))).max(0.0);
                objs[0] = 0.5 * (t + 2.0 * x1) * x2 + 2.0 * s[0] / c[0] as f64;
                objs[1] = 0.5 * (t - 2.0 * x1 + 2.0) * x2 + 2.0 * s[1] / c[1] as f64;
                objs[2] = 1.0 - x2 + 2.0 * s[2] / c[2] as f64;
            }
            UfVariant::Uf10 => {
                let x2 = vars[1];
                let h = |y: f64| 4.0 * y * y - (8.0 * PI * y).cos() + 1.0;
                let (s, c) = self.sums3(vars, h);
                objs[0] = (0.5 * x1 * PI).cos() * (0.5 * x2 * PI).cos() + 2.0 * s[0] / c[0] as f64;
                objs[1] = (0.5 * x1 * PI).cos() * (0.5 * x2 * PI).sin() + 2.0 * s[1] / c[1] as f64;
                objs[2] = (0.5 * x1 * PI).sin() + 2.0 * s[2] / c[2] as f64;
            }
        }
    }
}

/// The seed fixing the UF11/UF12 rotation matrices (stands in for the CEC'09
/// data files; any fixed dense rotation works — see DESIGN.md §2).
pub const UF_ROTATION_SEED: u64 = 0x2009_CEC0;

/// UF11: the rotated, scaled 5-objective DTLZ2 (`R2_DTLZ2_M5`) used as the
/// paper's non-separable hard problem.
///
/// Objective scales follow the CEC'09 convention of non-uniform objective
/// magnitudes; dominance structure (and thus algorithm behaviour) is
/// unaffected, and the normalized hypervolume pipeline in `borg-metrics`
/// removes the scaling again.
pub fn uf11() -> RotatedProblem<Dtlz> {
    RotatedProblem::new(Dtlz::new(DtlzVariant::Dtlz2, 5), UF_ROTATION_SEED)
        .with_objective_scales(vec![1.0, 2.0, 3.0, 4.0, 5.0])
        .named("UF11")
}

/// UF12: the rotated 5-objective DTLZ3 (`R3_DTLZ3_M5`).
pub fn uf12() -> RotatedProblem<Dtlz> {
    RotatedProblem::new(Dtlz::new(DtlzVariant::Dtlz3, 5), UF_ROTATION_SEED ^ 0xDEAD)
        .with_objective_scales(vec![1.0, 2.0, 3.0, 4.0, 5.0])
        .named("UF12")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(p: &Uf, vars: &[f64]) -> Vec<f64> {
        let mut objs = vec![0.0; p.num_objectives()];
        p.evaluate(vars, &mut objs, &mut []);
        objs
    }

    /// Decision vector on the known Pareto set of UF1/UF2-style problems:
    /// x_j = sin(6πx1 + jπ/n).
    fn uf1_optimal(n: usize, x1: f64) -> Vec<f64> {
        let mut v = vec![x1];
        for j in 2..=n {
            v.push((6.0 * PI * x1 + j as f64 * PI / n as f64).sin());
        }
        v
    }

    #[test]
    fn uf1_front_is_one_minus_sqrt() {
        let p = Uf::new(UfVariant::Uf1);
        for x1 in [0.0, 0.3, 0.77, 1.0] {
            let o = eval(&p, &uf1_optimal(30, x1));
            assert!((o[0] - x1).abs() < 1e-10);
            assert!((o[1] - (1.0 - x1.sqrt())).abs() < 1e-10);
        }
    }

    #[test]
    fn uf1_off_set_points_are_dominated() {
        let p = Uf::new(UfVariant::Uf1);
        let mut v = uf1_optimal(30, 0.5);
        v[10] += 0.5;
        let off = eval(&p, &v);
        let on = eval(&p, &uf1_optimal(30, 0.5));
        assert!(off[0] >= on[0] && off[1] >= on[1]);
        assert!(off[0] > on[0] || off[1] > on[1]);
    }

    #[test]
    fn uf4_front_is_concave() {
        let p = Uf::new(UfVariant::Uf4);
        // On the optimal set y_j = 0 ⇒ f2 = 1 − f1².
        let v = uf1_optimal(30, 0.6);
        let o = eval(&p, &v);
        assert!((o[0] - 0.6).abs() < 1e-10);
        assert!((o[1] - (1.0 - 0.36)).abs() < 1e-10);
    }

    #[test]
    fn uf7_front_is_linear() {
        let p = Uf::new(UfVariant::Uf7);
        let v = uf1_optimal(30, 0.4);
        let o = eval(&p, &v);
        let r = 0.4f64.powf(0.2);
        assert!((o[0] - r).abs() < 1e-10);
        assert!((o[1] - (1.0 - r)).abs() < 1e-10);
        assert!((o[0] + o[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn uf5_bump_vanishes_at_grid_points() {
        // sin(2Nπ x1) = 0 at x1 = k/(2N); the front is 21 isolated points.
        let p = Uf::new(UfVariant::Uf5);
        let x1 = 5.0 / 20.0;
        let v = uf1_optimal(30, x1);
        let o = eval(&p, &v);
        assert!((o[0] - x1).abs() < 1e-9);
        assert!((o[1] - (1.0 - x1)).abs() < 1e-9);
    }

    #[test]
    fn uf8_front_is_unit_sphere() {
        let p = Uf::new(UfVariant::Uf8);
        let n = 30;
        for (x1, x2) in [(0.3, 0.7), (0.0, 0.0), (1.0, 1.0), (0.5, 0.25)] {
            let mut v = vec![x1, x2];
            for j in 3..=n {
                v.push(2.0 * x2 * (2.0 * PI * x1 + j as f64 * PI / n as f64).sin());
            }
            // Some linkage targets fall outside [-2, 2]; they are still
            // valid inputs mathematically, but clamp check: all within.
            let o = eval(&p, &v);
            let r2: f64 = o.iter().map(|f| f * f).sum();
            assert!((r2 - 1.0).abs() < 1e-9, "r² = {r2} at ({x1},{x2})");
        }
    }

    #[test]
    fn uf9_third_objective_depends_on_x2() {
        let p = Uf::new(UfVariant::Uf9);
        let n = 30;
        let build = |x1: f64, x2: f64| {
            let mut v = vec![x1, x2];
            for j in 3..=n {
                v.push(2.0 * x2 * (2.0 * PI * x1 + j as f64 * PI / n as f64).sin());
            }
            v
        };
        let o = eval(&p, &build(0.5, 0.8));
        assert!((o[2] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn uf10_equals_uf8_shape_with_harder_distance() {
        let p8 = Uf::new(UfVariant::Uf8);
        let p10 = Uf::new(UfVariant::Uf10);
        let n = 30;
        // On the optimal set (y = 0) both reduce to the same sphere point.
        let (x1, x2) = (0.4, 0.6);
        let mut v = vec![x1, x2];
        for j in 3..=n {
            v.push(2.0 * x2 * (2.0 * PI * x1 + j as f64 * PI / n as f64).sin());
        }
        let a = eval(&p8, &v);
        let b = eval(&p10, &v);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
        // Off the optimal set UF10's h() penalizes much harder.
        let mut v_off = v.clone();
        v_off[10] += 0.25;
        let a_off = eval(&p8, &v_off);
        let b_off = eval(&p10, &v_off);
        let pen8: f64 = a_off.iter().zip(&a).map(|(x, y)| x - y).sum();
        let pen10: f64 = b_off.iter().zip(&b).map(|(x, y)| x - y).sum();
        assert!(pen10 > pen8);
    }

    #[test]
    fn uf11_is_five_objective_nonseparable() {
        let p = uf11();
        assert_eq!(p.name(), "UF11");
        assert_eq!(p.num_objectives(), 5);
        assert_eq!(p.num_variables(), 14);
        assert_eq!(p.objective_scales(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn uf12_uses_dtlz3() {
        let p = uf12();
        assert_eq!(p.name(), "UF12");
        assert_eq!(p.inner().variant(), DtlzVariant::Dtlz3);
    }

    #[test]
    fn uf11_is_deterministic() {
        let a = uf11();
        let b = uf11();
        let vars: Vec<f64> = (0..14).map(|i| 0.1 * i as f64 - 0.3).collect();
        let mut oa = vec![0.0; 5];
        let mut ob = vec![0.0; 5];
        a.evaluate(&vars, &mut oa, &mut []);
        b.evaluate(&vars, &mut ob, &mut []);
        assert_eq!(oa, ob);
    }

    #[test]
    fn all_uf_finite_on_random_inputs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for v in [
            UfVariant::Uf1,
            UfVariant::Uf2,
            UfVariant::Uf3,
            UfVariant::Uf4,
            UfVariant::Uf5,
            UfVariant::Uf6,
            UfVariant::Uf7,
            UfVariant::Uf8,
            UfVariant::Uf9,
            UfVariant::Uf10,
        ] {
            let p = Uf::new(v);
            for _ in 0..100 {
                let vars: Vec<f64> = (0..p.num_variables())
                    .map(|i| {
                        let b = p.bounds(i);
                        rng.gen_range(b.lower..=b.upper)
                    })
                    .collect();
                let o = eval(&p, &vars);
                assert!(o.iter().all(|f| f.is_finite()), "{v:?} produced NaN");
            }
        }
    }

    #[test]
    fn group_sizes_are_balanced() {
        let p = Uf::new(UfVariant::Uf1);
        let (_, c) = p.sums2(&vec![0.5; 30], |x, _| x, |y, _| y);
        assert_eq!(c[0] + c[1], 29);
        assert_eq!(c[0], 14); // odd j in 2..=30: 3,5,…,29
        assert_eq!(c[1], 15); // even j: 2,4,…,30
    }
}
