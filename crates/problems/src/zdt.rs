//! The ZDT bi-objective test suite (Zitzler, Deb & Thiele 2000).
//!
//! Included as supplementary workloads for examples and convergence tests;
//! the paper's experiments use DTLZ2 and UF11, but the ZDT problems are the
//! standard smoke tests for any MOEA implementation.

use borg_core::problem::{Bounds, Problem};
use std::f64::consts::PI;

/// Which ZDT instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZdtVariant {
    /// Convex front.
    Zdt1,
    /// Concave front.
    Zdt2,
    /// Disconnected front.
    Zdt3,
    /// Multimodal (21^9 local fronts).
    Zdt4,
    /// Nonuniformly spaced front.
    Zdt6,
}

/// A ZDT problem instance.
#[derive(Debug, Clone)]
pub struct Zdt {
    variant: ZdtVariant,
    n: usize,
    name: &'static str,
}

impl Zdt {
    /// Creates a ZDT instance with the standard variable count
    /// (30 for ZDT1–3, 10 for ZDT4/6).
    pub fn new(variant: ZdtVariant) -> Self {
        let (n, name) = match variant {
            ZdtVariant::Zdt1 => (30, "ZDT1"),
            ZdtVariant::Zdt2 => (30, "ZDT2"),
            ZdtVariant::Zdt3 => (30, "ZDT3"),
            ZdtVariant::Zdt4 => (10, "ZDT4"),
            ZdtVariant::Zdt6 => (10, "ZDT6"),
        };
        Self { variant, n, name }
    }

    /// Creates a ZDT instance with a custom variable count (`n >= 2`).
    pub fn with_variables(variant: ZdtVariant, n: usize) -> Self {
        assert!(n >= 2, "ZDT needs at least two variables");
        let mut p = Self::new(variant);
        p.n = n;
        p
    }

    /// True Pareto-front objective pair for a given `f1` (where defined);
    /// used to build reference sets and convergence assertions.
    pub fn front_f2(&self, f1: f64) -> f64 {
        match self.variant {
            ZdtVariant::Zdt1 | ZdtVariant::Zdt4 => 1.0 - f1.sqrt(),
            ZdtVariant::Zdt2 | ZdtVariant::Zdt6 => 1.0 - f1 * f1,
            ZdtVariant::Zdt3 => 1.0 - f1.sqrt() - f1 * (10.0 * PI * f1).sin(),
        }
    }
}

impl Problem for Zdt {
    fn name(&self) -> &str {
        self.name
    }

    fn num_variables(&self) -> usize {
        self.n
    }

    fn num_objectives(&self) -> usize {
        2
    }

    fn bounds(&self, i: usize) -> Bounds {
        match self.variant {
            ZdtVariant::Zdt4 if i > 0 => Bounds::new(-5.0, 5.0),
            _ => Bounds::unit(),
        }
    }

    fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
        let n = vars.len();
        let tail = &vars[1..];
        match self.variant {
            ZdtVariant::Zdt1 | ZdtVariant::Zdt2 | ZdtVariant::Zdt3 => {
                let g = 1.0 + 9.0 * tail.iter().sum::<f64>() / (n - 1) as f64;
                let f1 = vars[0];
                let h = match self.variant {
                    ZdtVariant::Zdt1 => 1.0 - (f1 / g).sqrt(),
                    ZdtVariant::Zdt2 => 1.0 - (f1 / g) * (f1 / g),
                    _ => 1.0 - (f1 / g).sqrt() - (f1 / g) * (10.0 * PI * f1).sin(),
                };
                objs[0] = f1;
                objs[1] = g * h;
            }
            ZdtVariant::Zdt4 => {
                let g = 1.0
                    + 10.0 * (n - 1) as f64
                    + tail
                        .iter()
                        .map(|&x| x * x - 10.0 * (4.0 * PI * x).cos())
                        .sum::<f64>();
                let f1 = vars[0];
                objs[0] = f1;
                objs[1] = g * (1.0 - (f1 / g).sqrt());
            }
            ZdtVariant::Zdt6 => {
                let f1 = 1.0 - (-4.0 * vars[0]).exp() * (6.0 * PI * vars[0]).sin().powi(6);
                let g = 1.0 + 9.0 * (tail.iter().sum::<f64>() / (n - 1) as f64).powf(0.25);
                objs[0] = f1;
                objs[1] = g * (1.0 - (f1 / g) * (f1 / g));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(p: &Zdt, vars: &[f64]) -> [f64; 2] {
        let mut objs = [0.0; 2];
        p.evaluate(vars, &mut objs, &mut []);
        objs
    }

    #[test]
    fn standard_dimensions() {
        assert_eq!(Zdt::new(ZdtVariant::Zdt1).num_variables(), 30);
        assert_eq!(Zdt::new(ZdtVariant::Zdt4).num_variables(), 10);
        assert_eq!(Zdt::with_variables(ZdtVariant::Zdt1, 6).num_variables(), 6);
    }

    #[test]
    fn zdt1_front_points() {
        let p = Zdt::with_variables(ZdtVariant::Zdt1, 5);
        for f1 in [0.0, 0.25, 1.0] {
            let mut vars = vec![f1];
            vars.extend(std::iter::repeat_n(0.0, 4));
            let [o1, o2] = eval(&p, &vars);
            assert_eq!(o1, f1);
            assert!((o2 - p.front_f2(f1)).abs() < 1e-12);
        }
    }

    #[test]
    fn zdt2_front_is_concave() {
        let p = Zdt::with_variables(ZdtVariant::Zdt2, 5);
        let mut vars = vec![0.5, 0.0, 0.0, 0.0, 0.0];
        let [_, o2] = eval(&p, &vars);
        assert!((o2 - 0.75).abs() < 1e-12);
        vars[1] = 1.0; // off-front
        let [_, o2b] = eval(&p, &vars);
        assert!(o2b > o2);
    }

    #[test]
    fn zdt3_front_can_dip_negative() {
        let p = Zdt::with_variables(ZdtVariant::Zdt3, 5);
        // At f1 ≈ 0.85 the sine term makes f2 negative on the true front.
        let mut found_negative = false;
        for i in 0..100 {
            let f1 = i as f64 / 100.0;
            let vars = {
                let mut v = vec![f1];
                v.extend(std::iter::repeat_n(0.0, 4));
                v
            };
            if eval(&p, &vars)[1] < 0.0 {
                found_negative = true;
            }
        }
        assert!(found_negative);
    }

    #[test]
    fn zdt4_bounds_are_mixed() {
        let p = Zdt::new(ZdtVariant::Zdt4);
        assert_eq!(p.bounds(0), Bounds::unit());
        assert_eq!(p.bounds(1), Bounds::new(-5.0, 5.0));
        // g is minimized at tail = 0 where the front matches ZDT1's.
        let mut vars = vec![0.36];
        vars.extend(std::iter::repeat_n(0.0, 9));
        let [o1, o2] = eval(&p, &vars);
        assert!((o2 - (1.0 - o1.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn zdt6_first_objective_is_nonlinear_in_x0() {
        let p = Zdt::new(ZdtVariant::Zdt6);
        let mut vars = vec![0.0; 10];
        let [o1, _] = eval(&p, &vars);
        assert!((o1 - 1.0).abs() < 1e-12); // sin(0)^6 = 0 ⇒ f1 = 1
        vars[0] = 0.08; // near the first sine peak, f1 drops well below 1
        let [o1b, _] = eval(&p, &vars);
        assert!(o1b < 0.9);
    }

    #[test]
    fn finite_on_random_inputs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for v in [
            ZdtVariant::Zdt1,
            ZdtVariant::Zdt2,
            ZdtVariant::Zdt3,
            ZdtVariant::Zdt4,
            ZdtVariant::Zdt6,
        ] {
            let p = Zdt::new(v);
            for _ in 0..100 {
                let vars: Vec<f64> = (0..p.num_variables())
                    .map(|i| {
                        let b = p.bounds(i);
                        rng.gen_range(b.lower..=b.upper)
                    })
                    .collect();
                let o = eval(&p, &vars);
                assert!(o.iter().all(|f| f.is_finite()));
            }
        }
    }
}
