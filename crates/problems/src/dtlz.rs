//! The DTLZ test suite (Deb, Thiele, Laumanns & Zitzler, CEC 2002).
//!
//! Scalable-objective test problems. The paper's primary workload is the
//! 5-objective DTLZ2, a separable problem considered easy for MOEAs; its
//! Pareto front is the positive orthant of the unit hypersphere.
//!
//! Conventions: `m` objectives, `k` distance variables, `L = m − 1 + k`
//! decision variables in `[0, 1]`. Standard `k`: 5 for DTLZ1, 10 for
//! DTLZ2–6, 20 for DTLZ7.

use borg_core::matrix::ObjectiveMatrix;
use borg_core::problem::{batch_eval_loop, Bounds, Problem};
use std::f64::consts::{FRAC_PI_2, PI};

/// Which DTLZ instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DtlzVariant {
    /// Linear front, multimodal `g` (11^k local fronts).
    Dtlz1,
    /// Spherical front, unimodal; the paper's "simple" problem.
    Dtlz2,
    /// Spherical front with DTLZ1's multimodal `g`.
    Dtlz3,
    /// DTLZ2 with biased density (α = 100).
    Dtlz4,
    /// Degenerate curve front.
    Dtlz5,
    /// DTLZ5 with a harder `g`.
    Dtlz6,
    /// Disconnected front.
    Dtlz7,
}

impl DtlzVariant {
    /// Standard number of distance variables for this variant.
    pub fn standard_k(self) -> usize {
        match self {
            DtlzVariant::Dtlz1 => 5,
            DtlzVariant::Dtlz7 => 20,
            _ => 10,
        }
    }
}

/// A DTLZ problem instance.
#[derive(Debug, Clone)]
pub struct Dtlz {
    variant: DtlzVariant,
    m: usize,
    k: usize,
    name: String,
}

impl Dtlz {
    /// Creates a DTLZ instance with `m` objectives and the standard number
    /// of distance variables.
    pub fn new(variant: DtlzVariant, m: usize) -> Self {
        Self::with_k(variant, m, variant.standard_k())
    }

    /// Creates a DTLZ instance with an explicit distance-variable count.
    pub fn with_k(variant: DtlzVariant, m: usize, k: usize) -> Self {
        assert!(m >= 2, "DTLZ needs at least two objectives");
        assert!(k >= 1, "DTLZ needs at least one distance variable");
        let idx = match variant {
            DtlzVariant::Dtlz1 => 1,
            DtlzVariant::Dtlz2 => 2,
            DtlzVariant::Dtlz3 => 3,
            DtlzVariant::Dtlz4 => 4,
            DtlzVariant::Dtlz5 => 5,
            DtlzVariant::Dtlz6 => 6,
            DtlzVariant::Dtlz7 => 7,
        };
        Self {
            variant,
            m,
            k,
            name: format!("DTLZ{idx}_{m}"),
        }
    }

    /// The 5-objective DTLZ2 used throughout the paper.
    pub fn dtlz2_5() -> Self {
        Self::new(DtlzVariant::Dtlz2, 5)
    }

    /// The variant of this instance.
    pub fn variant(&self) -> DtlzVariant {
        self.variant
    }

    /// Number of distance variables `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    fn g1(&self, xm: &[f64]) -> f64 {
        // Multimodal Rastrigin-like distance function (DTLZ1/DTLZ3).
        100.0
            * (xm.len() as f64
                + xm.iter()
                    .map(|&x| (x - 0.5) * (x - 0.5) - (20.0 * PI * (x - 0.5)).cos())
                    .sum::<f64>())
    }

    fn g2(&self, xm: &[f64]) -> f64 {
        // Unimodal spherical distance function (DTLZ2/4/5).
        xm.iter().map(|&x| (x - 0.5) * (x - 0.5)).sum()
    }
}

impl Problem for Dtlz {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_variables(&self) -> usize {
        self.m - 1 + self.k
    }

    fn num_objectives(&self) -> usize {
        self.m
    }

    fn bounds(&self, _i: usize) -> Bounds {
        Bounds::unit()
    }

    fn evaluate_batch(
        &self,
        vars: &ObjectiveMatrix,
        objs: &mut ObjectiveMatrix,
        cons: &mut ObjectiveMatrix,
    ) {
        // One virtual call per batch instead of per row: the concrete
        // kernel monomorphizes and inlines into the row loop.
        batch_eval_loop(self, vars, objs, cons, Self::evaluate);
    }

    fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
        let m = self.m;
        let (pos, xm) = vars.split_at(m - 1);
        match self.variant {
            DtlzVariant::Dtlz1 => {
                let g = self.g1(xm);
                for i in 0..m {
                    let mut f = 0.5 * (1.0 + g);
                    for &x in pos.iter().take(m - 1 - i) {
                        f *= x;
                    }
                    if i > 0 {
                        f *= 1.0 - pos[m - 1 - i];
                    }
                    objs[i] = f;
                }
            }
            DtlzVariant::Dtlz2 | DtlzVariant::Dtlz3 | DtlzVariant::Dtlz4 => {
                let g = if self.variant == DtlzVariant::Dtlz3 {
                    self.g1(xm)
                } else {
                    self.g2(xm)
                };
                let alpha = if self.variant == DtlzVariant::Dtlz4 {
                    100.0
                } else {
                    1.0
                };
                for i in 0..m {
                    let mut f = 1.0 + g;
                    for &x in pos.iter().take(m - 1 - i) {
                        f *= (x.powf(alpha) * FRAC_PI_2).cos();
                    }
                    if i > 0 {
                        f *= (pos[m - 1 - i].powf(alpha) * FRAC_PI_2).sin();
                    }
                    objs[i] = f;
                }
            }
            DtlzVariant::Dtlz5 | DtlzVariant::Dtlz6 => {
                let g = if self.variant == DtlzVariant::Dtlz6 {
                    xm.iter().map(|&x| x.powf(0.1)).sum::<f64>()
                } else {
                    self.g2(xm)
                };
                // Map positions to meta-angles θ: θ_0 = x_0 π/2, the rest
                // collapse toward π/4 as g → 0.
                let theta: Vec<f64> = pos
                    .iter()
                    .enumerate()
                    .map(|(j, &x)| {
                        if j == 0 {
                            x * FRAC_PI_2
                        } else {
                            PI / (4.0 * (1.0 + g)) * (1.0 + 2.0 * g * x)
                        }
                    })
                    .collect();
                for i in 0..m {
                    let mut f = 1.0 + g;
                    for &t in theta.iter().take(m - 1 - i) {
                        f *= t.cos();
                    }
                    if i > 0 {
                        f *= theta[m - 1 - i].sin();
                    }
                    objs[i] = f;
                }
            }
            DtlzVariant::Dtlz7 => {
                let g = 1.0 + 9.0 * xm.iter().sum::<f64>() / self.k as f64;
                objs[..m - 1].copy_from_slice(pos);
                let h = m as f64
                    - pos
                        .iter()
                        .map(|&f| f / (1.0 + g) * (1.0 + (3.0 * PI * f).sin()))
                        .sum::<f64>();
                objs[m - 1] = (1.0 + g) * h;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(p: &Dtlz, vars: &[f64]) -> Vec<f64> {
        let mut objs = vec![0.0; p.num_objectives()];
        p.evaluate(vars, &mut objs, &mut []);
        objs
    }

    #[test]
    fn dimensions_follow_convention() {
        let p = Dtlz::dtlz2_5();
        assert_eq!(p.num_variables(), 14); // M − 1 + k = 4 + 10
        assert_eq!(p.num_objectives(), 5);
        assert_eq!(p.name(), "DTLZ2_5");
        let p1 = Dtlz::new(DtlzVariant::Dtlz1, 3);
        assert_eq!(p1.num_variables(), 7); // 2 + 5
        let p7 = Dtlz::new(DtlzVariant::Dtlz7, 3);
        assert_eq!(p7.num_variables(), 22); // 2 + 20
    }

    #[test]
    fn dtlz2_optimal_points_lie_on_unit_sphere() {
        // With all distance variables at 0.5, g = 0 and Σ f_i² = 1.
        let p = Dtlz::dtlz2_5();
        for pos in [
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![0.3, 0.7, 0.2, 0.9],
        ] {
            let mut vars = pos.clone();
            vars.extend(std::iter::repeat_n(0.5, 10));
            let objs = eval(&p, &vars);
            let r2: f64 = objs.iter().map(|f| f * f).sum();
            assert!((r2 - 1.0).abs() < 1e-10, "|f|² = {r2}");
            assert!(objs.iter().all(|&f| f >= -1e-12));
        }
    }

    #[test]
    fn dtlz2_corner_points() {
        let p = Dtlz::new(DtlzVariant::Dtlz2, 3);
        // pos = (0,0): f = (1, 0, 0).
        let mut vars = vec![0.0, 0.0];
        vars.extend(std::iter::repeat_n(0.5, 10));
        let objs = eval(&p, &vars);
        assert!((objs[0] - 1.0).abs() < 1e-12);
        assert!(objs[1].abs() < 1e-12 && objs[2].abs() < 1e-12);
        // pos = (1, anything): f_2 = ... f with x0 = 1: cos(π/2) = 0 ⇒ f0 = 0.
        let mut vars = vec![1.0, 0.0];
        vars.extend(std::iter::repeat_n(0.5, 10));
        let objs = eval(&p, &vars);
        assert!(objs[0].abs() < 1e-12);
    }

    #[test]
    fn dtlz2_distance_variables_inflate_objectives() {
        let p = Dtlz::dtlz2_5();
        let mut near = vec![0.3; 4];
        near.extend(std::iter::repeat_n(0.5, 10));
        let mut far = vec![0.3; 4];
        far.extend(std::iter::repeat_n(0.9, 10));
        let n: f64 = eval(&p, &near).iter().map(|f| f * f).sum::<f64>();
        let f: f64 = eval(&p, &far).iter().map(|f| f * f).sum::<f64>();
        assert!(f > n, "distance vars must worsen objectives");
    }

    #[test]
    fn dtlz1_optimal_front_is_linear() {
        // With g = 0 (x_M = 0.5), Σ f_i = 0.5.
        let p = Dtlz::new(DtlzVariant::Dtlz1, 3);
        for pos in [[0.2, 0.8], [0.5, 0.5], [0.0, 1.0]] {
            let mut vars = pos.to_vec();
            vars.extend(std::iter::repeat_n(0.5, 5));
            let objs = eval(&p, &vars);
            let sum: f64 = objs.iter().sum();
            assert!((sum - 0.5).abs() < 1e-10, "Σf = {sum}");
        }
    }

    #[test]
    fn dtlz3_reduces_to_sphere_at_optimum() {
        let p = Dtlz::new(DtlzVariant::Dtlz3, 3);
        let mut vars = vec![0.4, 0.6];
        vars.extend(std::iter::repeat_n(0.5, 10));
        let objs = eval(&p, &vars);
        let r2: f64 = objs.iter().map(|f| f * f).sum();
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dtlz3_is_multimodal_away_from_optimum() {
        let p = Dtlz::new(DtlzVariant::Dtlz3, 3);
        let mut vars = vec![0.4, 0.6];
        vars.extend(std::iter::repeat_n(0.0, 10));
        let objs = eval(&p, &vars);
        let r2: f64 = objs.iter().map(|f| f * f).sum::<f64>();
        assert!(r2 > 100.0, "g should be huge at x_M = 0: {r2}");
    }

    #[test]
    fn dtlz4_matches_dtlz2_at_unbiased_points() {
        // x^100 differs from x except at 0/1; at pos ∈ {0,1} they coincide.
        let p2 = Dtlz::new(DtlzVariant::Dtlz2, 3);
        let p4 = Dtlz::new(DtlzVariant::Dtlz4, 3);
        let mut vars = vec![1.0, 0.0];
        vars.extend(std::iter::repeat_n(0.5, 10));
        assert_eq!(eval(&p2, &vars), eval(&p4, &vars));
    }

    #[test]
    fn dtlz5_front_is_degenerate_curve() {
        // At the optimum all θ_j (j ≥ 1) equal π/4, so the front is a curve
        // parameterized by x_0 alone: objectives for two points with equal
        // x_0 but different other pos vars must coincide.
        let p = Dtlz::new(DtlzVariant::Dtlz5, 4);
        let mut v1 = vec![0.3, 0.1, 0.9];
        v1.extend(std::iter::repeat_n(0.5, 10));
        let mut v2 = vec![0.3, 0.7, 0.2];
        v2.extend(std::iter::repeat_n(0.5, 10));
        let o1 = eval(&p, &v1);
        let o2 = eval(&p, &v2);
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn dtlz6_optimum_is_at_zero_distance_vars() {
        // g6 = Σ x^0.1 is minimized at x = 0.
        let p = Dtlz::new(DtlzVariant::Dtlz6, 3);
        let mut vars = vec![0.5, 0.5];
        vars.extend(std::iter::repeat_n(0.0, 10));
        let objs = eval(&p, &vars);
        let r2: f64 = objs.iter().map(|f| f * f).sum();
        assert!((r2 - 1.0).abs() < 1e-9, "r² = {r2}");
    }

    #[test]
    fn dtlz7_last_objective_combines_first_ones() {
        let p = Dtlz::new(DtlzVariant::Dtlz7, 3);
        let mut vars = vec![0.2, 0.8];
        vars.extend(std::iter::repeat_n(0.0, 20));
        let objs = eval(&p, &vars);
        assert_eq!(objs[0], 0.2);
        assert_eq!(objs[1], 0.8);
        // g = 1 at x_M = 0; h = M − Σ f/(2) (1 + sin 3πf).
        let h = 3.0
            - (0.2 / 2.0 * (1.0 + (3.0 * PI * 0.2).sin())
                + 0.8 / 2.0 * (1.0 + (3.0 * PI * 0.8).sin()));
        assert!((objs[2] - 2.0 * h).abs() < 1e-10);
    }

    #[test]
    fn objectives_are_finite_on_random_inputs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for variant in [
            DtlzVariant::Dtlz1,
            DtlzVariant::Dtlz2,
            DtlzVariant::Dtlz3,
            DtlzVariant::Dtlz4,
            DtlzVariant::Dtlz5,
            DtlzVariant::Dtlz6,
            DtlzVariant::Dtlz7,
        ] {
            let p = Dtlz::new(variant, 5);
            for _ in 0..100 {
                let vars: Vec<f64> = (0..p.num_variables()).map(|_| rng.gen()).collect();
                let objs = eval(&p, &vars);
                assert!(
                    objs.iter().all(|f| f.is_finite()),
                    "{variant:?} produced NaN"
                );
            }
        }
    }
}
