//! # borg-problems
//!
//! Benchmark problems for the Borg MOEA scalability reproduction: the DTLZ
//! suite, the ZDT suite, the CEC 2009 UF suite (including the paper's UF11
//! as a rotated, scaled 5-objective DTLZ2), decision-space rotation
//! utilities, analytic reference fronts, and small classic problems for
//! examples.
//!
//! ```
//! use borg_problems::prelude::*;
//! use borg_core::problem::Problem;
//!
//! // The paper's "easy" workload: 5-objective DTLZ2.
//! let p = Dtlz::dtlz2_5();
//! let mut objs = vec![0.0; 5];
//! // All distance variables at 0.5 put the solution on the unit-sphere front.
//! let mut vars = vec![0.3, 0.7, 0.2, 0.9];
//! vars.extend(std::iter::repeat(0.5).take(10));
//! p.evaluate(&vars, &mut objs, &mut []);
//! let r2: f64 = objs.iter().map(|f| f * f).sum();
//! assert!((r2 - 1.0).abs() < 1e-9);
//!
//! // The paper's "hard" workload: the rotated, scaled UF11.
//! let hard = uf11();
//! assert_eq!(hard.num_objectives(), 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cdtlz;
pub mod dtlz;
pub mod misc;
pub mod refsets;
pub mod rotation;
pub mod uf;
pub mod wfg;
pub mod zdt;

/// Commonly used items.
pub mod prelude {
    pub use crate::cdtlz::{Cdtlz, CdtlzVariant};
    pub use crate::dtlz::{Dtlz, DtlzVariant};
    pub use crate::misc::{BinhKorn, Fonseca, Schaffer};
    pub use crate::refsets::{dtlz1_front, dtlz2_front, uf11_front, zdt_front};
    pub use crate::rotation::{OrthogonalMatrix, RotatedProblem};
    pub use crate::uf::{uf11, uf12, Uf, UfVariant};
    pub use crate::wfg::{Wfg, WfgVariant};
    pub use crate::zdt::{Zdt, ZdtVariant};
}
