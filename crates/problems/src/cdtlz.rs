//! The C-DTLZ constrained test suite (Jain & Deb, IEEE TEC 2014).
//!
//! Constrained variants of the DTLZ problems, exercising the
//! constrained-dominance path of the Borg MOEA (feasibility-first
//! comparison, infeasible-placeholder archive) on standard benchmarks:
//!
//! * **C1-DTLZ1** — type-1 (the constraint cuts away the region just above
//!   the front; the front itself stays feasible);
//! * **C1-DTLZ3** — type-1 with a feasibility *band* far from the front;
//! * **C2-DTLZ2** — type-2 (only spherical patches of the front remain
//!   feasible — a disconnected feasible front);
//! * **C3-DTLZ4** — type-3 (the constraints themselves define the new
//!   front, which lies *outside* the unconstrained one).
//!
//! Constraint convention matches `borg-core`: values `<= 0` are feasible.

use crate::dtlz::{Dtlz, DtlzVariant};
use borg_core::problem::{Bounds, Problem};

/// Which constrained variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdtlzVariant {
    /// Type-1 constraint on DTLZ1.
    C1Dtlz1,
    /// Type-1 band constraint on DTLZ3.
    C1Dtlz3,
    /// Type-2 disconnected-front constraint on DTLZ2.
    C2Dtlz2,
    /// Type-3 multi-constraint front on DTLZ4.
    C3Dtlz4,
}

/// A C-DTLZ problem instance.
#[derive(Debug, Clone)]
pub struct Cdtlz {
    variant: CdtlzVariant,
    inner: Dtlz,
    name: String,
}

impl Cdtlz {
    /// Creates a C-DTLZ instance with `m` objectives and the standard
    /// distance-variable counts of the underlying DTLZ problem.
    pub fn new(variant: CdtlzVariant, m: usize) -> Self {
        let (inner, idx) = match variant {
            CdtlzVariant::C1Dtlz1 => (Dtlz::new(DtlzVariant::Dtlz1, m), "C1-DTLZ1"),
            CdtlzVariant::C1Dtlz3 => (Dtlz::new(DtlzVariant::Dtlz3, m), "C1-DTLZ3"),
            CdtlzVariant::C2Dtlz2 => (Dtlz::new(DtlzVariant::Dtlz2, m), "C2-DTLZ2"),
            CdtlzVariant::C3Dtlz4 => (Dtlz::new(DtlzVariant::Dtlz4, m), "C3-DTLZ4"),
        };
        Self {
            variant,
            inner,
            name: format!("{idx}_{m}"),
        }
    }

    /// The variant.
    pub fn variant(&self) -> CdtlzVariant {
        self.variant
    }

    /// C2-DTLZ2's feasible-patch radius (Jain & Deb: 0.4 for M = 3,
    /// 0.5 otherwise).
    fn c2_radius(m: usize) -> f64 {
        if m == 3 {
            0.4
        } else {
            0.5
        }
    }

    /// C1-DTLZ3's band radius parameter (Jain & Deb, Table V).
    fn c1_dtlz3_radius(m: usize) -> f64 {
        match m {
            2 | 3 => 9.0,
            4..=8 => 12.5,
            _ => 15.0,
        }
    }
}

impl Problem for Cdtlz {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_variables(&self) -> usize {
        self.inner.num_variables()
    }

    fn num_objectives(&self) -> usize {
        self.inner.num_objectives()
    }

    fn num_constraints(&self) -> usize {
        match self.variant {
            CdtlzVariant::C3Dtlz4 => self.inner.num_objectives(),
            _ => 1,
        }
    }

    fn bounds(&self, i: usize) -> Bounds {
        self.inner.bounds(i)
    }

    fn evaluate(&self, vars: &[f64], objs: &mut [f64], cons: &mut [f64]) {
        self.inner.evaluate(vars, objs, &mut []);
        let m = objs.len();
        match self.variant {
            CdtlzVariant::C1Dtlz1 => {
                // Feasible when c = 1 − f_M/0.6 − Σ_{i<M} f_i/0.5 ≥ 0.
                let c =
                    1.0 - objs[m - 1] / 0.6 - objs[..m - 1].iter().map(|f| f / 0.5).sum::<f64>();
                cons[0] = -c;
            }
            CdtlzVariant::C1Dtlz3 => {
                // Feasible when (Σf² − 16)(Σf² − r²) ≥ 0: inside the inner
                // sphere (near the front) or outside the big band.
                let r = Self::c1_dtlz3_radius(m);
                let sum_sq: f64 = objs.iter().map(|f| f * f).sum();
                let c = (sum_sq - 16.0) * (sum_sq - r * r);
                cons[0] = -c;
            }
            CdtlzVariant::C2Dtlz2 => {
                // Feasible when inside one of the M spheres of radius r
                // centred at the unit axis points, or the sphere centred at
                // (1/√M, …): c = min over those distances − r² ≤ 0.
                let r = Self::c2_radius(m);
                let axis_min = (0..m)
                    .map(|i| {
                        objs.iter()
                            .enumerate()
                            .map(|(j, &f)| if i == j { (f - 1.0) * (f - 1.0) } else { f * f })
                            .sum::<f64>()
                            - r * r
                    })
                    .fold(f64::INFINITY, f64::min);
                let center = 1.0 / (m as f64).sqrt();
                let middle = objs
                    .iter()
                    .map(|&f| (f - center) * (f - center))
                    .sum::<f64>()
                    - r * r;
                cons[0] = axis_min.min(middle);
            }
            CdtlzVariant::C3Dtlz4 => {
                // Feasible when f_i²/4 + Σ_{j≠i} f_j² ≥ 1 for every i.
                for (i, con) in cons.iter_mut().enumerate().take(m) {
                    let c = objs
                        .iter()
                        .enumerate()
                        .map(|(j, &f)| if i == j { f * f / 4.0 } else { f * f })
                        .sum::<f64>()
                        - 1.0;
                    *con = -c;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(p: &Cdtlz, vars: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut objs = vec![0.0; p.num_objectives()];
        let mut cons = vec![0.0; p.num_constraints()];
        p.evaluate(vars, &mut objs, &mut cons);
        (objs, cons)
    }

    /// Optimal distance variables + given position variables.
    fn vars(p: &Cdtlz, pos: &[f64], xm: f64) -> Vec<f64> {
        let mut v = pos.to_vec();
        v.extend(std::iter::repeat_n(xm, p.num_variables() - pos.len()));
        v
    }

    #[test]
    fn names_and_dimensions() {
        let p = Cdtlz::new(CdtlzVariant::C2Dtlz2, 3);
        assert_eq!(p.name(), "C2-DTLZ2_3");
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.num_variables(), 12);
        let p3 = Cdtlz::new(CdtlzVariant::C3Dtlz4, 3);
        assert_eq!(p3.num_constraints(), 3);
    }

    #[test]
    fn c1_dtlz1_front_is_feasible_but_inflated_points_are_not() {
        let p = Cdtlz::new(CdtlzVariant::C1Dtlz1, 3);
        // On the front (g = 0, Σf = 0.5): c = 1 − f3/0.6 − (f1+f2)/0.5 …
        // with f = (0.1, 0.15, 0.25): 1 − 0.4167 − 0.5 = 0.083 ≥ 0 feasible.
        let (objs, cons) = eval(&p, &vars(&p, &[0.5, 0.6], 0.5));
        assert!((objs.iter().sum::<f64>() - 0.5).abs() < 1e-9);
        assert!(cons[0] <= 0.0, "front point infeasible: {cons:?}");
        // Far above the front (g large): infeasible.
        let (_, cons) = eval(&p, &vars(&p, &[0.5, 0.6], 0.0));
        assert!(cons[0] > 0.0, "inflated point should violate: {cons:?}");
    }

    #[test]
    fn c1_dtlz3_has_a_feasible_inner_region_and_infeasible_band() {
        let p = Cdtlz::new(CdtlzVariant::C1Dtlz3, 3);
        // On the true front Σf² = 1 < 16: feasible.
        let (_, cons) = eval(&p, &vars(&p, &[0.3, 0.7], 0.5));
        assert!(cons[0] <= 0.0);
        // In the band 16 < Σf² < 81 the product flips sign: infeasible.
        // DTLZ3's Rastrigin-like g is steep: tiny offsets from the 0.5
        // optimum already inflate Σf² into the band.
        let mut found_band = false;
        for xm in [0.5012, 0.5015, 0.502, 0.5025, 0.503] {
            let (objs, cons) = eval(&p, &vars(&p, &[0.3, 0.7], xm));
            let s: f64 = objs.iter().map(|f| f * f).sum();
            if s > 16.0 && s < 81.0 {
                found_band = true;
                assert!(cons[0] > 0.0, "band point should violate (Σf²={s})");
            }
        }
        assert!(found_band, "test never sampled the band");
    }

    #[test]
    fn c2_dtlz2_keeps_axis_patches_feasible() {
        let p = Cdtlz::new(CdtlzVariant::C2Dtlz2, 3);
        // The corner point f = (1, 0, 0) sits at an axis sphere center.
        let (objs, cons) = eval(&p, &vars(&p, &[0.0, 0.0], 0.5));
        assert!((objs[0] - 1.0).abs() < 1e-9);
        assert!(cons[0] <= 0.0, "axis patch must be feasible");
        // The middle of an edge (45° in the f1–f2 plane, f3 = 0) is outside
        // every radius-0.4 sphere: infeasible. pos = (0, 0.5) gives
        // f = (cos(π/4), sin(π/4), 0).
        let (objs, cons) = eval(&p, &vars(&p, &[0.0, 0.5], 0.5));
        assert!(objs[2] < 1e-9, "expected f3 = 0, got {objs:?}");
        assert!(
            cons[0] > 0.0,
            "edge midpoint should violate: {objs:?} {cons:?}"
        );
    }

    #[test]
    fn c3_dtlz4_unconstrained_front_is_infeasible() {
        let p = Cdtlz::new(CdtlzVariant::C3Dtlz4, 3);
        // Points on the unit sphere violate (the C3 front lies outside it)…
        let (objs, cons) = eval(&p, &vars(&p, &[1.0, 0.5], 0.5));
        let r2: f64 = objs.iter().map(|f| f * f).sum();
        assert!((r2 - 1.0).abs() < 1e-9);
        assert!(cons.iter().any(|&c| c > 0.0), "sphere point should violate");
        // …while suitably inflated points are feasible: scale objectives by
        // pushing g up. f = 2·(unit vector along f1): constraint i=0 gives
        // 4/4 + 0 − 1 = 0 (boundary-feasible), others 4 − 1 ≥ 0.
        let (objs2, cons2) = eval(&p, &vars(&p, &[0.0, 0.0], 1.0));
        let r2b: f64 = objs2.iter().map(|f| f * f).sum();
        assert!(r2b > 1.5, "inflated point expected, got {objs2:?}");
        assert!(cons2.iter().all(|&c| c <= 1e-9), "{objs2:?} {cons2:?}");
    }

    #[test]
    fn borg_finds_feasible_solutions_on_all_variants() {
        use borg_core::prelude::*;
        for (variant, eps) in [
            (CdtlzVariant::C1Dtlz1, 0.02),
            (CdtlzVariant::C2Dtlz2, 0.05),
            (CdtlzVariant::C3Dtlz4, 0.05),
        ] {
            let p = Cdtlz::new(variant, 3);
            let engine = run_serial(&p, BorgConfig::new(3, eps), 17, 8_000, |_| {});
            assert!(!engine.archive().is_empty(), "{variant:?}: empty archive");
            let feasible = engine
                .archive()
                .solutions()
                .iter()
                .filter(|s| s.is_feasible())
                .count();
            if feasible == 0 {
                // C1-DTLZ1's feasible region requires near-convergence of
                // DTLZ1's multimodal g; within a small budget the archive
                // legitimately holds only the single least-violating
                // placeholder (the documented constraint-handling rule).
                assert_eq!(
                    engine.archive().len(),
                    1,
                    "{variant:?}: infeasible archive must be a single placeholder"
                );
            } else {
                assert_eq!(
                    feasible,
                    engine.archive().len(),
                    "{variant:?}: archive mixed feasible and infeasible members"
                );
            }
            engine.archive().check_invariants().unwrap();
        }
    }

    #[test]
    fn constrained_dominance_prefers_less_violation() {
        use borg_core::dominance::{constrained_dominance, Dominance};
        use borg_core::solution::Solution;
        let p = Cdtlz::new(CdtlzVariant::C2Dtlz2, 3);
        let mk = |pos: &[f64], xm: f64| {
            let v = vars(&p, pos, xm);
            let (objs, cons) = eval(&p, &v);
            Solution::from_parts(v, objs, cons)
        };
        let feasible = mk(&[0.0, 0.0], 0.5); // axis patch
        let infeasible = mk(&[0.5, 1.0], 0.5); // edge midpoint
        assert_eq!(
            constrained_dominance(&feasible, &infeasible),
            Dominance::Dominates
        );
    }
}
