//! The WFG test suite (Huband, Hingston, Barone & While, IEEE TEC 2006).
//!
//! WFG problems compose a pipeline of *transition* transformations over
//! scaled decision variables (`z_i ∈ [0, 2i]`, normalized to `y ∈ [0,1]`),
//! then apply *shape* functions to build the objectives:
//!
//! ```text
//! z → normalize → t¹ → … → tᵖ → x → f_m = x_M + S_m h_m(x_1 … x_{M−1})
//! ```
//!
//! with `S_m = 2m`. WFG1 is reused by the CEC 2009 competition as **UF13**
//! (`WFG1_M5`); WFG2–WFG9 complete the toolkit (non-separability,
//! multimodality, deception, parameter-dependent bias, degenerate and
//! disconnected fronts).
//!
//! Conventions: `k` position parameters (a multiple of `M − 1`), `l`
//! distance parameters (even, as WFG2/3 require pairs), `n = k + l`.

use borg_core::matrix::ObjectiveMatrix;
use borg_core::problem::{batch_eval_loop, Bounds, Problem};
use std::f64::consts::PI;

// ---------------------------------------------------------------------
// Transformation functions (WFG paper, Table 1)
// ---------------------------------------------------------------------

/// `s_linear(y, A)`: shift mapping the optimum to `y = A`.
pub fn s_linear(y: f64, a: f64) -> f64 {
    (y - a).abs() / ((a - y).floor() + a).abs()
}

/// `s_decept(y, A, B, C)`: deceptive shift with a global optimum at `A`
/// and deceptive basins on either side.
pub fn s_decept(y: f64, a: f64, b: f64, c: f64) -> f64 {
    let tmp1 = (y - a + b).floor() * (1.0 - c + (a - b) / b) / (a - b);
    let tmp2 = (a + b - y).floor() * (1.0 - c + (1.0 - a - b) / b) / (1.0 - a - b);
    1.0 + ((y - a).abs() - b) * (tmp1 + tmp2 + 1.0 / b)
}

/// `s_multi(y, A, B, C)`: multimodal shift with `A` minima and hill size
/// controlled by `B`, optimum at `C`.
pub fn s_multi(y: f64, a: f64, b: f64, c: f64) -> f64 {
    let tmp1 = (y - c).abs() / (2.0 * ((c - y).floor() + c));
    let tmp2 = (4.0 * a + 2.0) * PI * (0.5 - tmp1);
    (1.0 + tmp2.cos() + 4.0 * b * tmp1 * tmp1) / (b + 2.0)
}

/// `b_flat(y, A, B, C)`: flat-region bias.
pub fn b_flat(y: f64, a: f64, b: f64, c: f64) -> f64 {
    let v = a + ((y - b).floor().min(0.0)) * a * (b - y) / b
        - ((c - y).floor().min(0.0)) * (1.0 - a) * (y - c) / (1.0 - c);
    // Numerical guard: the expression is mathematically within [0, 1].
    v.clamp(0.0, 1.0)
}

/// `b_poly(y, α)`: polynomial bias.
pub fn b_poly(y: f64, alpha: f64) -> f64 {
    y.max(0.0).powf(alpha)
}

/// `b_param(y, u, A, B, C)`: parameter-dependent bias — `y`'s effective
/// exponent depends on another (reduced) parameter `u`.
pub fn b_param(y: f64, u: f64, a: f64, b: f64, c: f64) -> f64 {
    let v = a - (1.0 - 2.0 * u) * ((0.5 - u).floor() + a).abs();
    y.max(0.0).powf(b + (c - b) * v)
}

/// `r_sum(ys, ws)`: weighted-sum reduction.
pub fn r_sum(ys: &[f64], ws: &[f64]) -> f64 {
    debug_assert_eq!(ys.len(), ws.len());
    let num: f64 = ys.iter().zip(ws).map(|(y, w)| y * w).sum();
    let den: f64 = ws.iter().sum();
    num / den
}

/// `r_nonsep(ys, A)`: non-separable reduction of degree `A`
/// (`A = 1` degenerates to the plain mean).
pub fn r_nonsep(ys: &[f64], a: usize) -> f64 {
    let n = ys.len();
    debug_assert!(a >= 1 && n.is_multiple_of(a));
    let mut num = 0.0;
    for j in 0..n {
        num += ys[j];
        for k in 0..a.saturating_sub(1) {
            num += (ys[j] - ys[(j + k + 1) % n]).abs();
        }
    }
    let half_up = a.div_ceil(2) as f64;
    let den = (n as f64 / a as f64) * half_up * (1.0 + 2.0 * a as f64 - 2.0 * half_up);
    num / den
}

// ---------------------------------------------------------------------
// Shape functions (WFG paper, Table 2)
// ---------------------------------------------------------------------

/// Linear shape `h_m` (front on the simplex Σ f_m/S_m = 1).
pub fn shape_linear(x: &[f64], m_index: usize) -> f64 {
    let m = x.len() + 1;
    let mut h = 1.0;
    for &xi in x.iter().take(m - m_index) {
        h *= xi;
    }
    if m_index > 1 {
        h *= 1.0 - x[m - m_index];
    }
    h
}

/// Convex shape `h_m`.
pub fn shape_convex(x: &[f64], m_index: usize) -> f64 {
    let m = x.len() + 1;
    let mut h = 1.0;
    for &xi in x.iter().take(m - m_index) {
        h *= 1.0 - (xi * PI / 2.0).cos();
    }
    if m_index > 1 {
        h *= 1.0 - (x[m - m_index] * PI / 2.0).sin();
    }
    h
}

/// Concave shape `h_m` (front on the unit hypersphere Σ (f_m/S_m)² = 1).
pub fn shape_concave(x: &[f64], m_index: usize) -> f64 {
    let m = x.len() + 1;
    let mut h = 1.0;
    for &xi in x.iter().take(m - m_index) {
        h *= (xi * PI / 2.0).sin();
    }
    if m_index > 1 {
        h *= (x[m - m_index] * PI / 2.0).cos();
    }
    h
}

/// Mixed convex/concave shape (A segments), used by WFG1's last objective.
pub fn shape_mixed(x1: f64, a: f64, alpha: f64) -> f64 {
    (1.0 - x1 - (2.0 * a * PI * x1 + PI / 2.0).cos() / (2.0 * a * PI))
        .max(0.0)
        .powf(alpha)
}

/// Disconnected shape (A regions), used by WFG2's last objective.
pub fn shape_disc(x1: f64, a: f64, alpha: f64, beta: f64) -> f64 {
    (1.0 - x1.powf(alpha) * (a * x1.powf(beta) * PI).cos().powi(2)).max(0.0)
}

// ---------------------------------------------------------------------
// The problems
// ---------------------------------------------------------------------

/// Which WFG instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WfgVariant {
    /// Biased (flat region + polynomial), convex/mixed front. = UF13.
    Wfg1,
    /// Non-separable, convex/disconnected front.
    Wfg2,
    /// Non-separable, linear *degenerate* front.
    Wfg3,
    /// Multimodal, concave front.
    Wfg4,
    /// Deceptive, concave front.
    Wfg5,
    /// Non-separable reduction, concave front.
    Wfg6,
    /// Parameter-dependent position bias, concave front.
    Wfg7,
    /// Parameter-dependent distance bias, concave front.
    Wfg8,
    /// Parameter-dependent bias + deception + multimodality, non-separable.
    Wfg9,
}

impl WfgVariant {
    /// All nine variants.
    pub fn all() -> [WfgVariant; 9] {
        [
            WfgVariant::Wfg1,
            WfgVariant::Wfg2,
            WfgVariant::Wfg3,
            WfgVariant::Wfg4,
            WfgVariant::Wfg5,
            WfgVariant::Wfg6,
            WfgVariant::Wfg7,
            WfgVariant::Wfg8,
            WfgVariant::Wfg9,
        ]
    }
}

/// A WFG problem instance.
#[derive(Debug, Clone)]
pub struct Wfg {
    variant: WfgVariant,
    m: usize,
    k: usize,
    l: usize,
    name: String,
}

/// Backwards-compatible alias for the WFG1 constructor type.
pub type Wfg1 = Wfg;

impl Wfg {
    /// Creates a WFG instance with `m` objectives, `k` position and `l`
    /// distance parameters. `k` must be a positive multiple of `m − 1`;
    /// `l` must be even (WFG2/3 reduce distance parameters in pairs).
    pub fn new(variant: WfgVariant, m: usize, k: usize, l: usize) -> Self {
        assert!(m >= 2, "WFG needs at least two objectives");
        assert!(
            k >= 1 && k.is_multiple_of(m - 1),
            "k must be a multiple of M - 1"
        );
        assert!(l >= 2 && l.is_multiple_of(2), "l must be even and >= 2");
        let idx = variant as usize + 1;
        Self {
            variant,
            m,
            k,
            l,
            name: format!("WFG{idx}_{m}"),
        }
    }

    /// The CEC 2009 UF13 instance: `WFG1_M5` with `k = 8`, `l = 22`.
    pub fn uf13() -> Self {
        let mut p = Self::new(WfgVariant::Wfg1, 5, 8, 22);
        p.name = "UF13".into();
        p
    }

    /// The variant.
    pub fn variant(&self) -> WfgVariant {
        self.variant
    }

    /// Number of position parameters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Degeneracy constants `A_m`: all 1 except WFG3 (`A = (1, 0, …, 0)`).
    fn degeneracy(&self, i: usize) -> f64 {
        if self.variant == WfgVariant::Wfg3 && i > 0 {
            0.0
        } else {
            1.0
        }
    }

    /// Applies the variant's transition pipeline, producing the `M`
    /// transition values `t`.
    fn transition(&self, y: &mut [f64]) -> Vec<f64> {
        let (k, l, m) = (self.k, self.l, self.m);
        let n = k + l;
        match self.variant {
            WfgVariant::Wfg1 => {
                for yi in y.iter_mut().skip(k) {
                    *yi = s_linear(*yi, 0.35);
                }
                for yi in y.iter_mut().skip(k) {
                    *yi = b_flat(*yi, 0.8, 0.75, 0.85);
                }
                for yi in y.iter_mut() {
                    *yi = b_poly(*yi, 0.02);
                }
                let mut t = self.reduce_weighted(y);
                t.push(r_sum(
                    &y[k..],
                    &(k..n).map(|j| 2.0 * (j + 1) as f64).collect::<Vec<_>>(),
                ));
                t
            }
            WfgVariant::Wfg2 | WfgVariant::Wfg3 => {
                for yi in y.iter_mut().skip(k) {
                    *yi = s_linear(*yi, 0.35);
                }
                // Pairwise non-separable reduction of the distance block.
                let mut reduced: Vec<f64> = y[..k].to_vec();
                for j in 0..l / 2 {
                    reduced.push(r_nonsep(&y[k + 2 * j..k + 2 * j + 2], 2));
                }
                let mut t = self.reduce_uniform(&reduced[..k], m, k);
                t.push(r_sum(&reduced[k..], &vec![1.0; l / 2]));
                t
            }
            WfgVariant::Wfg4 => {
                for yi in y.iter_mut() {
                    *yi = s_multi(*yi, 30.0, 10.0, 0.35);
                }
                self.reduce_with_distance(y)
            }
            WfgVariant::Wfg5 => {
                for yi in y.iter_mut() {
                    *yi = s_decept(*yi, 0.35, 0.001, 0.05);
                }
                self.reduce_with_distance(y)
            }
            WfgVariant::Wfg6 => {
                for yi in y.iter_mut().skip(k) {
                    *yi = s_linear(*yi, 0.35);
                }
                let group = k / (m - 1);
                let mut t: Vec<f64> = (0..m - 1)
                    .map(|g| r_nonsep(&y[g * group..(g + 1) * group], group))
                    .collect();
                t.push(r_nonsep(&y[k..], l));
                t
            }
            WfgVariant::Wfg7 => {
                // Position bias depends on the *sum of all later* params.
                let snapshot = y.to_vec();
                for i in 0..k {
                    let u = r_sum(&snapshot[i + 1..], &vec![1.0; n - i - 1]);
                    y[i] = b_param(y[i], u, 0.98 / 49.98, 0.02, 50.0);
                }
                for yi in y.iter_mut().skip(k) {
                    *yi = s_linear(*yi, 0.35);
                }
                self.reduce_with_distance(y)
            }
            WfgVariant::Wfg8 => {
                // Distance bias depends on the sum of all *earlier* params.
                let snapshot = y.to_vec();
                for i in k..n {
                    let u = r_sum(&snapshot[..i], &vec![1.0; i]);
                    y[i] = b_param(y[i], u, 0.98 / 49.98, 0.02, 50.0);
                }
                for yi in y.iter_mut().skip(k) {
                    *yi = s_linear(*yi, 0.35);
                }
                self.reduce_with_distance(y)
            }
            WfgVariant::Wfg9 => {
                let snapshot = y.to_vec();
                for i in 0..n - 1 {
                    let u = r_sum(&snapshot[i + 1..], &vec![1.0; n - i - 1]);
                    y[i] = b_param(y[i], u, 0.98 / 49.98, 0.02, 50.0);
                }
                for yi in y.iter_mut().take(k) {
                    *yi = s_decept(*yi, 0.35, 0.001, 0.05);
                }
                for yi in y.iter_mut().skip(k) {
                    *yi = s_multi(*yi, 30.0, 95.0, 0.35);
                }
                let group = k / (m - 1);
                let mut t: Vec<f64> = (0..m - 1)
                    .map(|g| r_nonsep(&y[g * group..(g + 1) * group], group))
                    .collect();
                t.push(r_nonsep(&y[k..], l));
                t
            }
        }
    }

    /// WFG1-style reduction: weighted sums (`w_j = 2j`) of position groups.
    fn reduce_weighted(&self, y: &[f64]) -> Vec<f64> {
        let group = self.k / (self.m - 1);
        (0..self.m - 1)
            .map(|g| {
                let lo = g * group;
                let hi = (g + 1) * group;
                let ws: Vec<f64> = (lo..hi).map(|j| 2.0 * (j + 1) as f64).collect();
                r_sum(&y[lo..hi], &ws)
            })
            .collect()
    }

    /// Uniform-weight reduction of position groups.
    fn reduce_uniform(&self, pos: &[f64], m: usize, k: usize) -> Vec<f64> {
        let group = k / (m - 1);
        (0..m - 1)
            .map(|g| r_sum(&pos[g * group..(g + 1) * group], &vec![1.0; group]))
            .collect()
    }

    /// Uniform reduction of position groups + the whole distance block.
    fn reduce_with_distance(&self, y: &[f64]) -> Vec<f64> {
        let mut t = self.reduce_uniform(&y[..self.k], self.m, self.k);
        t.push(r_sum(&y[self.k..], &vec![1.0; self.l]));
        t
    }
}

impl Problem for Wfg {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_variables(&self) -> usize {
        self.k + self.l
    }

    fn num_objectives(&self) -> usize {
        self.m
    }

    fn bounds(&self, i: usize) -> Bounds {
        Bounds::new(0.0, 2.0 * (i + 1) as f64)
    }

    fn evaluate_batch(
        &self,
        vars: &ObjectiveMatrix,
        objs: &mut ObjectiveMatrix,
        cons: &mut ObjectiveMatrix,
    ) {
        // One virtual call per batch instead of per row: the concrete
        // kernel monomorphizes and inlines into the row loop.
        batch_eval_loop(self, vars, objs, cons, Self::evaluate);
    }

    fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
        let m = self.m;
        let mut y: Vec<f64> = vars
            .iter()
            .enumerate()
            .map(|(i, &z)| (z / (2.0 * (i + 1) as f64)).clamp(0.0, 1.0))
            .collect();
        let t = self.transition(&mut y);

        let t_m = t[m - 1].clamp(0.0, 1.0);
        let x: Vec<f64> = (0..m - 1)
            .map(|i| t_m.max(self.degeneracy(i)) * (t[i].clamp(0.0, 1.0) - 0.5) + 0.5)
            .collect();

        for (idx, obj) in objs.iter_mut().enumerate() {
            let s = 2.0 * (idx + 1) as f64;
            let h = match self.variant {
                WfgVariant::Wfg1 => {
                    if idx + 1 < m {
                        shape_convex(&x, idx + 1)
                    } else {
                        shape_mixed(x[0], 5.0, 1.0)
                    }
                }
                WfgVariant::Wfg2 => {
                    if idx + 1 < m {
                        shape_convex(&x, idx + 1)
                    } else {
                        shape_disc(x[0], 5.0, 1.0, 1.0)
                    }
                }
                WfgVariant::Wfg3 => shape_linear(&x, idx + 1),
                _ => shape_concave(&x, idx + 1),
            };
            *obj = t_m + s * h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(p: &Wfg, vars: &[f64]) -> Vec<f64> {
        let mut objs = vec![0.0; p.num_objectives()];
        p.evaluate(vars, &mut objs, &mut []);
        objs
    }

    /// Distance parameters at their WFG optimum `z_i = 0.35 · 2i`.
    fn optimal_vars(p: &Wfg, pos: f64) -> Vec<f64> {
        (0..p.num_variables())
            .map(|i| {
                let scale = 2.0 * (i + 1) as f64;
                if i < p.k() {
                    pos * scale
                } else {
                    0.35 * scale
                }
            })
            .collect()
    }

    #[test]
    fn uf13_dimensions() {
        let p = Wfg::uf13();
        assert_eq!(p.name(), "UF13");
        assert_eq!(p.num_variables(), 30);
        assert_eq!(p.num_objectives(), 5);
        assert_eq!(p.bounds(0), Bounds::new(0.0, 2.0));
        assert_eq!(p.bounds(29), Bounds::new(0.0, 60.0));
    }

    #[test]
    fn transformations_have_documented_fixed_points() {
        assert!(s_linear(0.35, 0.35).abs() < 1e-12);
        assert!((s_linear(0.0, 0.35) - 1.0).abs() < 1e-12);
        assert!((s_linear(1.0, 0.35) - 1.0).abs() < 1e-12);
        assert!((b_flat(0.8, 0.8, 0.75, 0.85) - 0.8).abs() < 1e-12);
        assert!(b_flat(0.0, 0.8, 0.75, 0.85).abs() < 1e-12);
        assert!((b_flat(1.0, 0.8, 0.75, 0.85) - 1.0).abs() < 1e-12);
        assert!(b_poly(0.1, 0.02) > 0.9);
        // s_decept: global optimum at A = 0.35 maps to 0; the *deceptive*
        // endpoint basins map to ≈ C = 0.05 (nearly-optimal-looking, hence
        // the deception), while ordinary points map far from 0.
        assert!(s_decept(0.35, 0.35, 0.001, 0.05).abs() < 1e-9);
        assert!((s_decept(0.0, 0.35, 0.001, 0.05) - 0.05).abs() < 1e-9);
        assert!((s_decept(1.0, 0.35, 0.001, 0.05) - 0.05).abs() < 1e-9);
        assert!(s_decept(0.2, 0.35, 0.001, 0.05) > 0.5);
        assert!(s_decept(0.6, 0.35, 0.001, 0.05) > 0.5);
        // s_multi: optimum at C = 0.35 maps to 0.
        assert!(s_multi(0.35, 30.0, 10.0, 0.35).abs() < 1e-9);
        assert!(s_multi(0.0, 30.0, 10.0, 0.35) > 0.1);
        // b_param: at u giving v = A the exponent interpolates; in-range.
        let v = b_param(0.5, 0.3, 0.98 / 49.98, 0.02, 50.0);
        assert!(v.is_finite() && (0.0..=1.0).contains(&v));
        // r_nonsep degree 1 is the plain mean.
        assert!((r_nonsep(&[0.2, 0.4, 0.6], 1) - 0.4).abs() < 1e-12);
        // r_nonsep rewards dispersion: zeros map to 0, the maximally
        // unequal pair maps to 1, equal mid-values land in between
        // (2·0.7/3 per the official normalization).
        assert!(r_nonsep(&[0.0, 0.0], 2).abs() < 1e-12);
        assert!((r_nonsep(&[1.0, 0.0], 2) - 1.0).abs() < 1e-12);
        assert!((r_nonsep(&[0.7, 0.7], 2) - 1.4 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shape_functions_partition_correctly() {
        // Concave shapes: Σ h_m² = 1 for any position vector.
        let x = [0.3, 0.8, 0.5, 0.1];
        let m = x.len() + 1;
        let sum_sq: f64 = (1..=m).map(|i| shape_concave(&x, i).powi(2)).sum();
        assert!((sum_sq - 1.0).abs() < 1e-12, "Σh² = {sum_sq}");
        // Linear shapes: Σ h_m = 1.
        let sum: f64 = (1..=m).map(|i| shape_linear(&x, i)).sum();
        assert!((sum - 1.0).abs() < 1e-12, "Σh = {sum}");
        // All shapes within [0, 1].
        for i in 1..=m {
            for f in [
                shape_concave(&x, i),
                shape_linear(&x, i),
                shape_convex(&x, i),
            ] {
                assert!((0.0..=1.0 + 1e-12).contains(&f));
            }
        }
        assert!((0.0..=1.0).contains(&shape_mixed(0.37, 5.0, 1.0)));
        assert!((0.0..=1.0).contains(&shape_disc(0.37, 5.0, 1.0, 1.0)));
    }

    #[test]
    fn concave_variants_reach_the_unit_sphere_front() {
        // For WFG4–WFG7 the distance optimum is z_i = 0.35·2i (for WFG7 the
        // position bias does not move it), giving t_M = 0 and a front on
        // Σ (f_m/(2m))² = 1.
        for variant in [
            WfgVariant::Wfg4,
            WfgVariant::Wfg5,
            WfgVariant::Wfg6,
            WfgVariant::Wfg7,
        ] {
            let p = Wfg::new(variant, 3, 4, 6);
            for pos in [0.0, 0.3, 0.8, 1.0] {
                let objs = eval(&p, &optimal_vars(&p, pos));
                let r2: f64 = objs
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| (f / (2.0 * (i + 1) as f64)).powi(2))
                    .sum();
                assert!(
                    (r2 - 1.0).abs() < 1e-6,
                    "{variant:?} pos={pos}: Σ(f/S)² = {r2}"
                );
            }
        }
    }

    #[test]
    fn wfg3_front_is_linear_and_degenerate() {
        let p = Wfg::new(WfgVariant::Wfg3, 3, 4, 6);
        let objs = eval(&p, &optimal_vars(&p, 0.4));
        // t_M = 0 ⇒ linear shapes on a degenerate (1-D) front:
        // Σ f_m / (2m) = 1.
        let s: f64 = objs
            .iter()
            .enumerate()
            .map(|(i, &f)| f / (2.0 * (i + 1) as f64))
            .sum();
        assert!((s - 1.0).abs() < 1e-9, "Σ f/S = {s}");
        // Degeneracy: x_2.. pinned to 0.5 at the optimum, so two points
        // with different second position parameters coincide.
        let mut v1 = optimal_vars(&p, 0.4);
        let mut v2 = optimal_vars(&p, 0.4);
        // position group 2 = indices 2..4 (k = 4, M − 1 = 2 groups of 2).
        v1[2] = 0.1 * p.bounds(2).upper;
        v2[2] = 0.9 * p.bounds(2).upper;
        v1[3] = v2[3];
        let o1 = eval(&p, &v1);
        let o2 = eval(&p, &v2);
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-9, "degenerate front violated");
        }
    }

    #[test]
    fn wfg2_last_objective_is_disconnected() {
        // Sweep x1 along the front: h_M = 1 − x1 cos²(5πx1) is
        // non-monotone, producing disconnected Pareto segments.
        let p = Wfg::new(WfgVariant::Wfg2, 3, 4, 6);
        let mut last = f64::NAN;
        let mut direction_changes = 0;
        let mut prev_delta = 0.0f64;
        for i in 0..=60 {
            let pos = i as f64 / 60.0;
            let objs = eval(&p, &optimal_vars(&p, pos));
            if !last.is_nan() {
                let delta = objs[2] - last;
                if prev_delta * delta < 0.0 {
                    direction_changes += 1;
                }
                prev_delta = delta;
            }
            last = objs[2];
        }
        assert!(
            direction_changes >= 4,
            "only {direction_changes} direction changes"
        );
    }

    #[test]
    fn all_variants_finite_on_random_inputs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for variant in WfgVariant::all() {
            let p = Wfg::new(variant, 3, 4, 6);
            for _ in 0..200 {
                let vars: Vec<f64> = (0..p.num_variables())
                    .map(|i| rng.gen_range(0.0..=(2.0 * (i + 1) as f64)))
                    .collect();
                let objs = eval(&p, &vars);
                assert!(
                    objs.iter().all(|f| f.is_finite() && *f >= -1e-9),
                    "{variant:?} produced {objs:?}"
                );
            }
        }
    }

    #[test]
    fn five_objective_instances_work() {
        for variant in WfgVariant::all() {
            let p = Wfg::new(variant, 5, 8, 22);
            let objs = eval(&p, &optimal_vars(&p, 0.5));
            assert_eq!(objs.len(), 5);
            assert!(objs.iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn off_optimum_distance_params_worsen_concave_variants() {
        for variant in [WfgVariant::Wfg4, WfgVariant::Wfg6] {
            let p = Wfg::new(variant, 3, 4, 6);
            let on = eval(&p, &optimal_vars(&p, 0.5));
            let mut vars = optimal_vars(&p, 0.5);
            for (i, v) in vars.iter_mut().enumerate().skip(p.k()) {
                *v = 0.77 * 2.0 * (i + 1) as f64;
            }
            let off = eval(&p, &vars);
            let worse = on.iter().zip(&off).filter(|(a, b)| a <= b).count();
            assert!(worse >= 2, "{variant:?}: {on:?} vs {off:?}");
        }
    }

    #[test]
    fn borg_makes_progress_on_uf13() {
        use borg_core::prelude::*;
        let p = Wfg::uf13();
        let mut cfg = BorgConfig::new(5, 0.1);
        cfg.epsilons = (1..=5).map(|m| 0.05 * 2.0 * m as f64).collect();
        let engine = run_serial(&p, cfg, 11, 5_000, |_| {});
        assert!(engine.archive().len() > 3);
        engine.archive().check_invariants().unwrap();
    }

    #[test]
    fn borg_solves_wfg4_to_reasonable_quality() {
        use borg_core::prelude::*;
        // WFG4-3obj: concave sphere front scaled by (2, 4, 6).
        let p = Wfg::new(WfgVariant::Wfg4, 3, 4, 6);
        let mut cfg = BorgConfig::new(3, 0.05);
        cfg.epsilons = vec![0.1, 0.2, 0.3];
        let engine = run_serial(&p, cfg, 13, 10_000, |_| {});
        // Most archive members should be near the scaled sphere.
        let near = engine
            .archive()
            .solutions()
            .iter()
            .filter(|s| {
                let r2: f64 = s
                    .objectives()
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| (f / (2.0 * (i + 1) as f64)).powi(2))
                    .sum();
                r2 < 1.3
            })
            .count();
        assert!(
            near * 2 >= engine.archive().len(),
            "only {near}/{} near the front",
            engine.archive().len()
        );
    }

    #[test]
    #[should_panic(expected = "k must be a multiple")]
    fn invalid_k_panics() {
        Wfg::new(WfgVariant::Wfg1, 5, 7, 10);
    }

    #[test]
    #[should_panic(expected = "l must be even")]
    fn odd_l_panics() {
        Wfg::new(WfgVariant::Wfg2, 3, 4, 5);
    }
}
