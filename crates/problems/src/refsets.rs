//! Analytic reference (true Pareto front) sets.
//!
//! The paper's hypervolume metric is measured "relative to an ideal
//! mathematical baseline": both DTLZ2 and UF11 have known Pareto fronts, so
//! hypervolume 1.0 means matching the true front. This module generates
//! uniformly-spread samples of those fronts.

use crate::zdt::Zdt;

/// Generates the Das–Dennis simplex-lattice weight vectors: all `m`-vectors
/// of non-negative multiples of `1/h` summing to 1. Produces
/// `C(h + m − 1, m − 1)` points.
pub fn das_dennis_weights(m: usize, h: usize) -> Vec<Vec<f64>> {
    assert!(m >= 1);
    let mut out = Vec::new();
    let mut current = vec![0usize; m];
    fn recurse(
        m: usize,
        left: usize,
        idx: usize,
        current: &mut [usize],
        out: &mut Vec<Vec<f64>>,
        h: usize,
    ) {
        if idx == m - 1 {
            current[idx] = left;
            out.push(current.iter().map(|&c| c as f64 / h as f64).collect());
            return;
        }
        for c in 0..=left {
            current[idx] = c;
            recurse(m, left - c, idx + 1, current, out, h);
        }
    }
    recurse(m, h, 0, &mut current, &mut out, h);
    out
}

/// True front of DTLZ2/DTLZ3/DTLZ4 with `m` objectives: the positive
/// orthant of the unit sphere, sampled by radially projecting Das–Dennis
/// lattice points.
pub fn dtlz2_front(m: usize, divisions: usize) -> Vec<Vec<f64>> {
    das_dennis_weights(m, divisions)
        .into_iter()
        .map(|w| {
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm == 0.0 {
                w
            } else {
                w.into_iter().map(|x| x / norm).collect()
            }
        })
        .collect()
}

/// True front of DTLZ1 with `m` objectives: the simplex `Σ f_i = 0.5`.
pub fn dtlz1_front(m: usize, divisions: usize) -> Vec<Vec<f64>> {
    das_dennis_weights(m, divisions)
        .into_iter()
        .map(|w| w.into_iter().map(|x| 0.5 * x).collect())
        .collect()
}

/// True front of a ZDT problem sampled at `points` uniformly spaced `f1`
/// values (ZDT3's dominated sine segments are filtered out).
pub fn zdt_front(problem: &Zdt, points: usize) -> Vec<Vec<f64>> {
    assert!(points >= 2);
    let raw: Vec<Vec<f64>> = (0..points)
        .map(|i| {
            let f1 = i as f64 / (points - 1) as f64;
            vec![f1, problem.front_f2(f1)]
        })
        .collect();
    let keep = borg_core::dominance::nondominated_indices(&raw);
    keep.into_iter().map(|i| raw[i].clone()).collect()
}

/// True front of UF11: the DTLZ2 sphere with UF11's per-objective scales
/// applied (the rotation acts on decision space only).
pub fn uf11_front(divisions: usize) -> Vec<Vec<f64>> {
    let scales = crate::uf::uf11().objective_scales().to_vec();
    dtlz2_front(5, divisions)
        .into_iter()
        .map(|p| p.into_iter().zip(&scales).map(|(f, s)| f * s).collect())
        .collect()
}

/// The front of the bi-objective UF1/UF2/UF3 family: `f2 = 1 − √f1`.
pub fn uf1_front(points: usize) -> Vec<Vec<f64>> {
    (0..points)
        .map(|i| {
            let f1 = i as f64 / (points - 1) as f64;
            vec![f1, 1.0 - f1.sqrt()]
        })
        .collect()
}

/// Binomial coefficient (used to size Das–Dennis lattices in tests/docs).
pub fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zdt::ZdtVariant;

    #[test]
    fn das_dennis_counts_match_binomial() {
        for (m, h) in [(2, 10), (3, 6), (5, 4)] {
            let w = das_dennis_weights(m, h);
            assert_eq!(w.len(), binomial(h + m - 1, m - 1), "m={m} h={h}");
        }
    }

    #[test]
    fn das_dennis_weights_sum_to_one() {
        for w in das_dennis_weights(4, 5) {
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn dtlz2_front_lies_on_unit_sphere() {
        for p in dtlz2_front(5, 4) {
            let r2: f64 = p.iter().map(|x| x * x).sum();
            assert!((r2 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dtlz1_front_sums_to_half() {
        for p in dtlz1_front(3, 12) {
            let s: f64 = p.iter().sum();
            assert!((s - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn zdt3_front_is_mutually_nondominated() {
        let front = zdt_front(&Zdt::new(ZdtVariant::Zdt3), 500);
        assert!(front.len() > 100, "too much filtered: {}", front.len());
        let idx = borg_core::dominance::nondominated_indices(&front);
        assert_eq!(idx.len(), front.len());
    }

    #[test]
    fn uf11_front_is_scaled_sphere() {
        for p in uf11_front(4) {
            let r2: f64 = p
                .iter()
                .zip([1.0, 2.0, 3.0, 4.0, 5.0])
                .map(|(f, s)| (f / s) * (f / s))
                .sum();
            assert!((r2 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(8, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }
}
