//! A FIFO-queued exclusive resource, mirroring SimPy's `Resource` with
//! capacity 1 (the master node in the paper's simulation model).
//!
//! The paper's §IV-B models the master as: *request* (wait while busy) →
//! *hold* (communication + algorithm time) → *release* (next waiter is
//! activated). [`Resource`] implements exactly the request/release ledger;
//! the holding delay is the caller's event schedule.

use std::collections::VecDeque;

/// An exclusive resource with a FIFO wait queue carrying tokens of type `T`.
#[derive(Debug, Clone)]
pub struct Resource<T> {
    busy: bool,
    queue: VecDeque<T>,
    /// Total number of grants issued (statistics).
    grants: u64,
    /// Maximum queue length observed (statistics).
    max_queue: usize,
}

impl<T> Default for Resource<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Resource<T> {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self {
            busy: false,
            queue: VecDeque::new(),
            grants: 0,
            max_queue: 0,
        }
    }

    /// Requests the resource for `token`.
    ///
    /// Returns `Some(token)` if the resource was idle (the caller holds it
    /// now); otherwise the token joins the FIFO queue and `None` is
    /// returned — it will come back from a future [`Self::release`].
    pub fn request(&mut self, token: T) -> Option<T> {
        if self.busy {
            self.queue.push_back(token);
            self.max_queue = self.max_queue.max(self.queue.len());
            None
        } else {
            self.busy = true;
            self.grants += 1;
            Some(token)
        }
    }

    /// Releases the resource. If a token is waiting, the resource stays
    /// busy serving it and the token is returned; otherwise the resource
    /// becomes idle.
    ///
    /// # Panics
    /// If the resource was not held.
    pub fn release(&mut self) -> Option<T> {
        assert!(self.busy, "release of an idle resource");
        match self.queue.pop_front() {
            Some(t) => {
                self.grants += 1;
                Some(t)
            }
            None => {
                self.busy = false;
                None
            }
        }
    }

    /// Whether the resource is currently held.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total grants issued so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Longest queue observed.
    pub fn max_queue_len(&self) -> usize {
        self.max_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_grants_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.request("a"), Some("a"));
        assert!(r.is_busy());
        assert_eq!(r.grants(), 1);
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = Resource::new();
        assert_eq!(r.request(1), Some(1));
        assert_eq!(r.request(2), None);
        assert_eq!(r.request(3), None);
        assert_eq!(r.queue_len(), 2);
        assert_eq!(r.release(), Some(2));
        assert!(r.is_busy(), "stays busy while serving the queue");
        assert_eq!(r.release(), Some(3));
        assert_eq!(r.release(), None);
        assert!(!r.is_busy());
        assert_eq!(r.grants(), 3);
    }

    #[test]
    fn max_queue_tracks_contention() {
        let mut r = Resource::new();
        r.request(0);
        for i in 1..=5 {
            r.request(i);
        }
        assert_eq!(r.max_queue_len(), 5);
        while r.release().is_some() {}
        assert_eq!(r.max_queue_len(), 5);
    }

    #[test]
    #[should_panic(expected = "release of an idle resource")]
    fn double_release_panics() {
        let mut r: Resource<()> = Resource::new();
        r.request(());
        r.release();
        r.release();
    }
}
