//! # borg-desim
//!
//! A small deterministic discrete-event simulation engine, standing in for
//! the SimPy 2.3 library the paper used for its simulation model:
//!
//! * [`queue::EventQueue`] — min-heap event queue with FIFO tie-breaking
//!   and a simulation clock;
//! * [`resource::Resource`] — an exclusive FIFO resource mirroring SimPy's
//!   request/hold/release pattern (the master node);
//! * [`callback::CallbackSim`] — SimPy-flavoured chained-callback
//!   processes;
//! * [`trace::SpanTrace`] — activity-span vocabulary for the paper's
//!   timeline figures (re-exported from `borg-obs`, the workspace's
//!   observability layer);
//! * [`fault::FaultPlan`] / [`fault::FaultLog`] — deterministic fault
//!   injection (worker crashes, hangs, stragglers, message loss and
//!   duplication) and the recovery ledger shared by both executors.
//!
//! ```
//! use borg_desim::{EventQueue, Resource};
//!
//! // Two workers returning results compete for one master.
//! let mut queue = EventQueue::new();
//! queue.schedule_at(1.0, "worker0");
//! queue.schedule_at(1.5, "worker1");
//! let mut master: Resource<&str> = Resource::new();
//!
//! let (t0, w0) = queue.pop().unwrap();
//! assert_eq!((t0, w0), (1.0, "worker0"));
//! assert!(master.request(w0).is_some()); // idle master: granted
//! let (_, w1) = queue.pop().unwrap();
//! assert!(master.request(w1).is_none()); // busy: worker1 queues
//! assert_eq!(master.release(), Some("worker1")); // FIFO handoff
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callback;
pub mod fault;
pub mod queue;
pub mod resource;
pub mod trace;

pub use callback::CallbackSim;
pub use fault::{FaultConfig, FaultLog, FaultPlan};
pub use queue::{EventQueue, Time};
pub use resource::Resource;
pub use trace::{Activity, Actor, Span, SpanTrace};
