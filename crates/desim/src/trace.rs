//! Activity-span tracing for timeline diagrams (Figures 1 and 2).
//!
//! The paper's Figures 1–2 are Gantt-style timelines of the master and
//! worker nodes showing communication (`T_C`), algorithm (`T_A`),
//! evaluation (`T_F`) and idle periods. Executors record [`Span`]s into a
//! [`SpanTrace`]; the experiment harness renders them as CSV and as an
//! ASCII Gantt chart.

use crate::queue::Time;

/// Who performed an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Actor {
    /// The master node.
    Master,
    /// Worker node `i` (0-based).
    Worker(usize),
}

impl std::fmt::Display for Actor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Actor::Master => write!(f, "master"),
            Actor::Worker(i) => write!(f, "worker{i}"),
        }
    }
}

/// What kind of work a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Message transfer (`T_C`).
    Communication,
    /// Master-side algorithm work (`T_A`).
    Algorithm,
    /// Objective function evaluation (`T_F`).
    Evaluation,
    /// Waiting (explicit idle spans are optional; gaps read as idle too).
    Idle,
}

impl Activity {
    /// One-character glyph for the ASCII Gantt rendering.
    pub fn glyph(self) -> char {
        match self {
            Activity::Communication => 'C',
            Activity::Algorithm => 'A',
            Activity::Evaluation => 'F',
            Activity::Idle => '.',
        }
    }
}

/// One contiguous activity of one actor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Performing actor.
    pub actor: Actor,
    /// Activity kind.
    pub activity: Activity,
    /// Start time (inclusive).
    pub start: Time,
    /// End time (exclusive).
    pub end: Time,
}

/// A recorded collection of spans.
#[derive(Debug, Clone, Default)]
pub struct SpanTrace {
    spans: Vec<Span>,
    enabled: bool,
}

impl SpanTrace {
    /// Creates an enabled trace.
    pub fn new() -> Self {
        Self {
            spans: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace (recording is a no-op; executors pass this
    /// on hot runs where tracing overhead is unwanted).
    pub fn disabled() -> Self {
        Self {
            spans: Vec::new(),
            enabled: false,
        }
    }

    /// Records a span (no-op when disabled; zero-length spans are dropped).
    pub fn record(&mut self, actor: Actor, activity: Activity, start: Time, end: Time) {
        debug_assert!(end >= start, "span ends before it starts");
        if self.enabled && end > start {
            self.spans.push(Span {
                actor,
                activity,
                start,
                end,
            });
        }
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// End time of the latest span (0 when empty).
    pub fn horizon(&self) -> Time {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Renders the trace as CSV (`actor,activity,start,end`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("actor,activity,start,end\n");
        for s in &self.spans {
            out.push_str(&format!(
                "{},{:?},{:.9},{:.9}\n",
                s.actor, s.activity, s.start, s.end
            ));
        }
        out
    }

    /// Renders an ASCII Gantt chart with `width` time columns, one row per
    /// actor (masters first). Glyphs: `C` communication, `A` algorithm,
    /// `F` evaluation, `.` idle.
    pub fn to_ascii(&self, width: usize) -> String {
        assert!(width >= 2);
        let horizon = self.horizon();
        if horizon <= 0.0 {
            return String::new();
        }
        let mut actors: Vec<Actor> = self.spans.iter().map(|s| s.actor).collect();
        actors.sort();
        actors.dedup();
        let label_w = actors
            .iter()
            .map(|a| a.to_string().len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for actor in actors {
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.actor == actor) {
                let a = ((s.start / horizon) * width as f64).floor() as usize;
                let b = (((s.end / horizon) * width as f64).ceil() as usize).min(width);
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    *c = s.activity.glyph();
                }
            }
            out.push_str(&format!(
                "{:<label_w$} |{}|\n",
                actor.to_string(),
                row.into_iter().collect::<String>()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_horizon() {
        let mut t = SpanTrace::new();
        t.record(Actor::Master, Activity::Algorithm, 0.0, 1.0);
        t.record(Actor::Worker(0), Activity::Evaluation, 1.0, 4.0);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.horizon(), 4.0);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = SpanTrace::disabled();
        t.record(Actor::Master, Activity::Algorithm, 0.0, 1.0);
        assert!(t.spans().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn zero_length_spans_dropped() {
        let mut t = SpanTrace::new();
        t.record(Actor::Master, Activity::Communication, 1.0, 1.0);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = SpanTrace::new();
        t.record(Actor::Worker(3), Activity::Evaluation, 0.5, 2.5);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "actor,activity,start,end");
        assert!(lines[1].starts_with("worker3,Evaluation,0.5"));
    }

    #[test]
    fn ascii_chart_shows_glyphs_per_actor() {
        let mut t = SpanTrace::new();
        t.record(Actor::Master, Activity::Algorithm, 0.0, 5.0);
        t.record(Actor::Master, Activity::Communication, 5.0, 10.0);
        t.record(Actor::Worker(0), Activity::Evaluation, 0.0, 10.0);
        let chart = t.to_ascii(10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("master"));
        assert!(lines[0].contains('A') && lines[0].contains('C'));
        assert!(lines[1].contains("worker0"));
        assert!(lines[1].matches('F').count() == 10);
    }

    #[test]
    fn actors_sort_master_first() {
        let mut t = SpanTrace::new();
        t.record(Actor::Worker(1), Activity::Evaluation, 0.0, 1.0);
        t.record(Actor::Master, Activity::Algorithm, 0.0, 1.0);
        t.record(Actor::Worker(0), Activity::Evaluation, 0.0, 1.0);
        let chart = t.to_ascii(4);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].starts_with("master"));
        assert!(lines[1].starts_with("worker0"));
        assert!(lines[2].starts_with("worker1"));
    }
}
