//! Activity-span tracing (re-export).
//!
//! The span vocabulary moved to [`borg_obs::span`] so one set of
//! `Actor`/`Activity`/`Span` types serves every executor and the protocol
//! engine; this module re-exports it to keep `borg_desim::trace::...`
//! paths working. Prefer instrumenting through a [`borg_obs::Recorder`]
//! and collecting a [`SpanTrace`] from [`borg_obs::InMemoryRecorder`].

pub use borg_obs::span::{Activity, Actor, Span, SpanTrace, SpanTracker};
