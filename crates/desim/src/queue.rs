//! The deterministic event queue at the heart of every simulation here.
//!
//! Events are `(time, payload)` pairs; ties are broken by insertion order
//! (FIFO), which makes every simulation in this workspace bit-reproducible
//! regardless of floating-point time collisions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in seconds.
pub type Time = f64;

struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap event queue with a simulation clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Time,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is NaN or lies in the past.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(at.is_finite(), "non-finite event time");
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after `delay` seconds.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Peeks at the next event time without advancing the clock.
    pub fn next_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Counts pending events with timestamps `<= t` (O(n); used for
    /// sampled queue-length statistics).
    pub fn count_at_or_before(&self, t: Time) -> usize {
        self.heap.iter().filter(|e| e.time <= t).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert_eq!(q.pop().unwrap(), (1.0, "a"));
        assert_eq!(q.now(), 1.0);
        assert_eq!(q.pop().unwrap(), (2.0, "b"));
        assert_eq!(q.pop().unwrap(), (3.0, "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(2.0, "x");
        q.pop();
        q.schedule_in(3.0, "y");
        assert_eq!(q.next_time(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, ());
        q.pop();
        q.schedule_at(1.0, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(1.0, ());
        q.schedule_in(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
