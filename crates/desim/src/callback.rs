//! A SimPy-flavoured callback process API on top of [`EventQueue`].
//!
//! The paper built its simulation model in SimPy 2.3 with generator
//! processes. Rust (stable) has no generators, so processes are expressed
//! as chains of one-shot callbacks: each callback receives the simulation,
//! may inspect/mutate the shared `state`, and schedules its continuation.
//! The queueing models in `borg-models` use the typed event-loop style
//! instead; this API exists for ergonomic ad-hoc models and mirrors the
//! paper's request/hold/release snippet closely (see
//! `examples/simpy_snippet.rs`).

use crate::queue::{EventQueue, Time};

type Callback<S> = Box<dyn FnOnce(&mut CallbackSim<S>)>;

/// A callback-driven simulation with shared state `S`.
pub struct CallbackSim<S> {
    queue: EventQueue<Callback<S>>,
    /// User-defined shared simulation state.
    pub state: S,
}

impl<S> CallbackSim<S> {
    /// Creates a simulation with the given initial state.
    pub fn new(state: S) -> Self {
        Self {
            queue: EventQueue::new(),
            state,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Schedules `callback` to run after `delay` seconds of simulated time.
    pub fn schedule<F: FnOnce(&mut CallbackSim<S>) + 'static>(&mut self, delay: Time, callback: F) {
        self.queue.schedule_in(delay, Box::new(callback));
    }

    /// Runs until no events remain; returns the final simulation time.
    pub fn run(&mut self) -> Time {
        while let Some((_, cb)) = self.queue.pop() {
            cb(self);
        }
        self.now()
    }

    /// Runs until the clock would pass `until` (events at later times stay
    /// queued); returns the time of the last executed event.
    pub fn run_until(&mut self, until: Time) -> Time {
        while let Some(t) = self.queue.next_time() {
            if t > until {
                break;
            }
            let Some((_, cb)) = self.queue.pop() else {
                break;
            };
            cb(self);
        }
        self.now()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callbacks_run_in_time_order() {
        let mut sim = CallbackSim::new(Vec::<(f64, &str)>::new());
        sim.schedule(2.0, |s| {
            let t = s.now();
            s.state.push((t, "b"));
        });
        sim.schedule(1.0, |s| {
            let t = s.now();
            s.state.push((t, "a"));
        });
        let end = sim.run();
        assert_eq!(end, 2.0);
        assert_eq!(sim.state, vec![(1.0, "a"), (2.0, "b")]);
    }

    #[test]
    fn callbacks_can_chain() {
        // A three-stage "process": each stage schedules the next.
        fn stage(n: u32) -> impl FnOnce(&mut CallbackSim<Vec<u32>>) + 'static {
            move |s| {
                s.state.push(n);
                if n < 3 {
                    s.schedule(1.0, stage(n + 1));
                }
            }
        }
        let mut sim = CallbackSim::new(vec![]);
        sim.schedule(0.0, stage(1));
        let end = sim.run();
        assert_eq!(sim.state, vec![1, 2, 3]);
        assert_eq!(end, 2.0);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = CallbackSim::new(0u32);
        for i in 1..=10 {
            sim.schedule(i as f64, move |s| s.state += 1);
        }
        sim.run_until(5.0);
        assert_eq!(sim.state, 5);
        assert_eq!(sim.pending(), 5);
        sim.run();
        assert_eq!(sim.state, 10);
    }
}
