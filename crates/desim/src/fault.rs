//! Deterministic fault injection for master-slave simulations.
//!
//! The paper's experiments (and its Eq. 2–4 models) assume a perfect
//! cluster: every worker survives the run and every message is delivered
//! exactly once. This module supplies the machinery to *break* that
//! assumption reproducibly: a seeded [`FaultPlan`] decides, purely as a
//! function of `(seed, worker, dispatch index)`, which evaluations crash
//! their worker, hang, straggle, or lose/duplicate their result message.
//! Because every decision is a stateless hash of its coordinates, the same
//! plan drives both the virtual-time executor (where faults become
//! first-class DES events) and the real-thread executor (where workers
//! consult the plan as they dequeue work) — and a same-seed replay is
//! bit-identical.
//!
//! The [`FaultLog`] is the common ledger both executors fill in: every
//! injected fault is recorded with its injection, detection and recovery
//! timestamps, alongside the aggregate recovery counters (reissues,
//! suppressed duplicates, wasted NFE) that the `borg-exp faults`
//! experiment turns into effective-speedup curves.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function used to
/// derive all fault decisions statelessly. (Re-implemented here rather
/// than imported so `borg-desim` stays dependency-free.)
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit hash to the unit interval `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Domain-separation tags so independent decisions never share a stream.
const TAG_CRASH: u64 = 0x11;
const TAG_CRASH_WHEN: u64 = 0x12;
const TAG_CRASH_FRAC: u64 = 0x13;
const TAG_STRAGGLE: u64 = 0x21;
const TAG_MESSAGE: u64 = 0x31;

/// A worker crash forced at a specific point, regardless of the sampled
/// rates (used by kill-the-workers tests and targeted experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedCrash {
    /// Worker index (0-based).
    pub worker: usize,
    /// The crash strikes during this worker's `after_dispatches`-th
    /// dispatched evaluation (0-based dispatch index on that worker).
    pub after_dispatches: u64,
}

/// Configurable fault rates. All probabilities are per the unit named in
/// their doc comment; `0.0` everywhere yields a fault-free plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a given worker *crashes* at some point during the
    /// run (the paper-facing failure rate `f`). A crashed worker dies
    /// silently mid-evaluation and, if [`respawn_after`](Self::respawn_after)
    /// is set, rejoins after that downtime.
    pub crash_rate: f64,
    /// Probability that a given worker *hangs* during the run: it stops
    /// responding mid-evaluation and never returns. Hung workers are
    /// quarantined on detection and never respawn.
    pub hang_rate: f64,
    /// Per-dispatch probability that an evaluation straggles.
    pub straggler_rate: f64,
    /// Evaluation-time multiplier applied to straggling evaluations.
    pub straggler_factor: f64,
    /// Per-result probability that the result message is dropped.
    pub drop_rate: f64,
    /// Per-result probability that the result message is duplicated.
    pub duplicate_rate: f64,
    /// Downtime before a *crashed* worker rejoins (`None` = permanent).
    pub respawn_after: Option<f64>,
    /// Crashes injected unconditionally, on top of the sampled ones.
    pub forced_crashes: Vec<ForcedCrash>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            crash_rate: 0.0,
            hang_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 10.0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            respawn_after: None,
            forced_crashes: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// Whether this configuration can inject any fault at all.
    pub fn is_quiet(&self) -> bool {
        self.crash_rate <= 0.0
            && self.hang_rate <= 0.0
            && self.straggler_rate <= 0.0
            && self.drop_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.forced_crashes.is_empty()
    }

    /// The acceptance scenario of the fault experiments: crash rate `f`,
    /// 1% message loss, everything else quiet.
    pub fn degraded(f: f64) -> Self {
        Self {
            crash_rate: f,
            drop_rate: 0.01,
            ..Self::default()
        }
    }
}

/// What the plan decrees for one dispatched evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchFate {
    /// Evaluate normally.
    Normal,
    /// Evaluate, but take `factor` times as long.
    Straggle {
        /// Evaluation-time multiplier (> 1).
        factor: f64,
    },
    /// The worker dies after completing fraction `frac` of this
    /// evaluation. Respawns if the plan allows.
    CrashDuring {
        /// Fraction of the evaluation completed before death, in `(0, 1)`.
        frac: f64,
    },
    /// The worker hangs mid-evaluation and never responds again.
    HangDuring,
}

/// What the plan decrees for one result message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered exactly once.
    Deliver,
    /// Lost in transit; the master never sees it.
    Drop,
    /// Delivered twice (e.g. a retransmit racing the original).
    Duplicate,
}

/// A deterministic schedule of faults for one run.
///
/// Per-worker crash/hang points are pre-drawn at construction (so the
/// failure rate reads as "fraction of workers lost during the run");
/// per-dispatch and per-message decisions are stateless hashes, so the
/// plan can be consulted concurrently from real worker threads without
/// any shared RNG state.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
    /// Per worker: the dispatch index during which it crashes.
    crash_at: Vec<Option<u64>>,
    /// Per worker: the dispatch index during which it hangs.
    hang_at: Vec<Option<u64>>,
}

impl FaultPlan {
    /// Draws a plan for `workers` workers expected to perform about
    /// `expected_evals` evaluations in total.
    pub fn new(config: FaultConfig, workers: usize, expected_evals: u64, seed: u64) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let per_worker = (expected_evals / workers as u64).max(1);
        let mut crash_at = vec![None; workers];
        let mut hang_at = vec![None; workers];
        for w in 0..workers {
            let r = unit(mix64(seed ^ TAG_CRASH ^ ((w as u64) << 8)));
            let when = 1
                + (unit(mix64(seed ^ TAG_CRASH_WHEN ^ ((w as u64) << 8))) * (per_worker - 1) as f64)
                    as u64;
            if r < config.crash_rate {
                crash_at[w] = Some(when);
            } else if r < config.crash_rate + config.hang_rate {
                hang_at[w] = Some(when);
            }
        }
        for forced in &config.forced_crashes {
            assert!(forced.worker < workers, "forced crash on unknown worker");
            crash_at[forced.worker] = Some(forced.after_dispatches);
            hang_at[forced.worker] = None;
        }
        Self {
            config,
            seed,
            crash_at,
            hang_at,
        }
    }

    /// The configuration this plan was drawn from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Number of workers covered by the plan.
    pub fn workers(&self) -> usize {
        self.crash_at.len()
    }

    /// Workers scheduled to crash or hang at some point.
    pub fn doomed_workers(&self) -> usize {
        self.crash_at
            .iter()
            .zip(&self.hang_at)
            .filter(|(c, h)| c.is_some() || h.is_some())
            .count()
    }

    /// The fate of the `dispatch`-th evaluation dispatched to `worker`
    /// (0-based, counted per worker).
    pub fn dispatch_fate(&self, worker: usize, dispatch: u64) -> DispatchFate {
        if self.crash_at.get(worker).copied().flatten() == Some(dispatch) {
            let frac =
                unit(mix64(self.seed ^ TAG_CRASH_FRAC ^ ((worker as u64) << 8))).clamp(0.05, 0.95);
            return DispatchFate::CrashDuring { frac };
        }
        if self.hang_at.get(worker).copied().flatten() == Some(dispatch) {
            return DispatchFate::HangDuring;
        }
        let h = mix64(self.seed ^ TAG_STRAGGLE ^ ((worker as u64) << 40) ^ dispatch);
        if unit(h) < self.config.straggler_rate {
            return DispatchFate::Straggle {
                factor: self.config.straggler_factor.max(1.0),
            };
        }
        DispatchFate::Normal
    }

    /// The fate of the result message for evaluation `eval_id`, on its
    /// `attempt`-th transmission (reissues are re-rolled independently).
    pub fn message_fate(&self, eval_id: u64, attempt: u32) -> MessageFate {
        let h = mix64(self.seed ^ TAG_MESSAGE ^ (eval_id << 8) ^ u64::from(attempt));
        let r = unit(h);
        if r < self.config.drop_rate {
            MessageFate::Drop
        } else if r < self.config.drop_rate + self.config.duplicate_rate {
            MessageFate::Duplicate
        } else {
            MessageFate::Deliver
        }
    }

    /// Downtime before a crashed worker rejoins (`None` = permanent).
    pub fn respawn_after(&self) -> Option<f64> {
        self.config.respawn_after
    }
}

/// The kind of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Worker died silently mid-evaluation.
    Crash,
    /// Worker hung mid-evaluation and never responded again.
    Hang,
    /// Evaluation took `straggler_factor` times its sampled duration.
    Straggler,
    /// Result message lost in transit.
    MessageDrop,
    /// Result message delivered twice.
    MessageDuplicate,
}

impl FaultKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Crash => "crash",
            Self::Hang => "hang",
            Self::Straggler => "straggler",
            Self::MessageDrop => "drop",
            Self::MessageDuplicate => "duplicate",
        }
    }
}

/// One injected fault and the master's response to it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// What was injected.
    pub kind: FaultKind,
    /// Worker the fault struck.
    pub worker: usize,
    /// Evaluation in flight when it struck.
    pub eval_id: u64,
    /// Simulated (or wall-clock) time of injection.
    pub injected_at: f64,
    /// When the master noticed something was wrong (`None` = never).
    pub detected_at: Option<f64>,
    /// When the run stopped depending on the fault being repaired —
    /// the lost evaluation was re-consumed, the duplicate suppressed, or
    /// the run completed its budget without it (`None` = never).
    pub recovered_at: Option<f64>,
}

impl FaultRecord {
    /// Detection latency (detection − injection), if detected.
    pub fn detection_latency(&self) -> Option<f64> {
        self.detected_at.map(|d| d - self.injected_at)
    }
}

/// The ledger of injected faults and recovery actions for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    /// Every injected fault, in injection order.
    pub records: Vec<FaultRecord>,
    /// Evaluations re-sent after a timeout or detected death.
    pub reissues: u64,
    /// Result messages discarded by duplicate/stale suppression.
    pub duplicates_suppressed: u64,
    /// Worker-side evaluations whose results never advanced the run:
    /// dropped messages, suppressed duplicates, and work lost mid-crash.
    pub wasted_nfe: u64,
    /// Crashed workers that rejoined after their downtime.
    pub respawns: u64,
    /// Dead workers the master detected (ping failure or missed
    /// heartbeats).
    pub deaths_detected: u64,
}

impl FaultLog {
    /// Starts a new fault record; returns its index for later updates.
    pub fn inject(&mut self, kind: FaultKind, worker: usize, eval_id: u64, now: f64) -> usize {
        self.records.push(FaultRecord {
            kind,
            worker,
            eval_id,
            injected_at: now,
            detected_at: None,
            recovered_at: None,
        });
        self.records.len() - 1
    }

    /// Marks the first undetected record matching `eval_id` as detected.
    pub fn detect_eval(&mut self, eval_id: u64, now: f64) {
        if let Some(r) = self
            .records
            .iter_mut()
            .find(|r| r.eval_id == eval_id && r.detected_at.is_none())
        {
            r.detected_at = Some(now);
        }
    }

    /// Marks undetected crash/hang records for `worker` as detected.
    pub fn detect_worker_death(&mut self, worker: usize, now: f64) {
        for r in self.records.iter_mut().filter(|r| {
            r.worker == worker
                && matches!(r.kind, FaultKind::Crash | FaultKind::Hang)
                && r.detected_at.is_none()
        }) {
            r.detected_at = Some(now);
        }
        self.deaths_detected += 1;
    }

    /// Marks every unrecovered record tied to `eval_id` as recovered
    /// (its result was finally consumed or definitively suppressed).
    pub fn recover_eval(&mut self, eval_id: u64, now: f64) {
        for r in self
            .records
            .iter_mut()
            .filter(|r| r.eval_id == eval_id && r.recovered_at.is_none())
        {
            if r.detected_at.is_none() {
                r.detected_at = Some(now);
            }
            r.recovered_at = Some(now);
        }
    }

    /// Closes the ledger at run end: faults still pending when the
    /// evaluation budget completed are trivially resolved — the run no
    /// longer depends on them (documented in DESIGN.md §9).
    pub fn finalize(&mut self, end: f64) {
        for r in self.records.iter_mut() {
            if r.detected_at.is_none() {
                r.detected_at = Some(end);
            }
            if r.recovered_at.is_none() {
                r.recovered_at = Some(end);
            }
        }
    }

    /// Number of injected faults.
    pub fn injected(&self) -> usize {
        self.records.len()
    }

    /// Number of injected faults of `kind`.
    pub fn injected_of(&self, kind: FaultKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.detected_at.is_some())
            .count()
    }

    /// Number of recovered faults.
    pub fn recovered(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.recovered_at.is_some())
            .count()
    }

    /// Whether every injected fault was detected and recovered.
    pub fn all_recovered(&self) -> bool {
        self.records
            .iter()
            .all(|r| r.detected_at.is_some() && r.recovered_at.is_some())
    }

    /// Mean detection latency across detected faults (0 if none).
    pub fn mean_detection_latency(&self) -> f64 {
        let lat: Vec<f64> = self
            .records
            .iter()
            .filter_map(FaultRecord::detection_latency)
            .collect();
        if lat.is_empty() {
            0.0
        } else {
            lat.iter().sum::<f64>() / lat.len() as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} injected ({} crash, {} hang, {} straggler, {} drop, {} dup), \
             {} detected, {} recovered, {} reissues, {} dups suppressed, \
             {} wasted NFE, {} respawns",
            self.injected(),
            self.injected_of(FaultKind::Crash),
            self.injected_of(FaultKind::Hang),
            self.injected_of(FaultKind::Straggler),
            self.injected_of(FaultKind::MessageDrop),
            self.injected_of(FaultKind::MessageDuplicate),
            self.detected(),
            self.recovered(),
            self.reissues,
            self.duplicates_suppressed,
            self.wasted_nfe,
            self.respawns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> FaultConfig {
        FaultConfig {
            crash_rate: 0.3,
            hang_rate: 0.1,
            straggler_rate: 0.05,
            drop_rate: 0.02,
            duplicate_rate: 0.02,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::new(lossy(), 16, 10_000, 42);
        let b = FaultPlan::new(lossy(), 16, 10_000, 42);
        assert_eq!(a, b);
        for w in 0..16 {
            for d in 0..50 {
                assert_eq!(a.dispatch_fate(w, d), b.dispatch_fate(w, d));
            }
        }
        for id in 0..500 {
            assert_eq!(a.message_fate(id, 0), b.message_fate(id, 0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(lossy(), 64, 10_000, 1);
        let b = FaultPlan::new(lossy(), 64, 10_000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::new(lossy(), 1000, 100_000, 7);
        let doomed = plan.doomed_workers();
        // crash 0.3 + hang 0.1 ⇒ about 400/1000 doomed.
        assert!((300..500).contains(&doomed), "doomed = {doomed}");
        let drops = (0..100_000u64)
            .filter(|&id| plan.message_fate(id, 0) == MessageFate::Drop)
            .count();
        assert!((1_500..2_500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn quiet_config_injects_nothing() {
        let plan = FaultPlan::new(FaultConfig::default(), 32, 10_000, 3);
        assert_eq!(plan.doomed_workers(), 0);
        for w in 0..32 {
            for d in 0..400 {
                assert_eq!(plan.dispatch_fate(w, d), DispatchFate::Normal);
            }
        }
        for id in 0..1_000 {
            assert_eq!(plan.message_fate(id, 0), MessageFate::Deliver);
        }
        assert!(FaultConfig::default().is_quiet());
        assert!(!FaultConfig::degraded(0.1).is_quiet());
    }

    #[test]
    fn forced_crashes_override_sampling() {
        let cfg = FaultConfig {
            forced_crashes: vec![
                ForcedCrash {
                    worker: 0,
                    after_dispatches: 3,
                },
                ForcedCrash {
                    worker: 2,
                    after_dispatches: 5,
                },
            ],
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 4, 1_000, 9);
        assert!(matches!(
            plan.dispatch_fate(0, 3),
            DispatchFate::CrashDuring { .. }
        ));
        assert!(matches!(
            plan.dispatch_fate(2, 5),
            DispatchFate::CrashDuring { .. }
        ));
        assert_eq!(plan.dispatch_fate(1, 3), DispatchFate::Normal);
        assert_eq!(plan.doomed_workers(), 2);
    }

    #[test]
    fn reissued_messages_reroll_their_fate() {
        let cfg = FaultConfig {
            drop_rate: 0.5,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 4, 1_000, 11);
        // With a 50% drop rate, some eval must have attempt 0 dropped but
        // attempt 1 delivered — the reissue path out of a black hole.
        let rerolled = (0..200u64).any(|id| {
            plan.message_fate(id, 0) == MessageFate::Drop
                && plan.message_fate(id, 1) == MessageFate::Deliver
        });
        assert!(rerolled);
    }

    #[test]
    fn fault_log_lifecycle() {
        let mut log = FaultLog::default();
        let _ = log.inject(FaultKind::MessageDrop, 3, 17, 1.0);
        log.inject(FaultKind::Crash, 1, 20, 2.0);
        assert_eq!(log.injected(), 2);
        assert_eq!(log.detected(), 0);
        log.detect_eval(17, 1.5);
        log.recover_eval(17, 1.8);
        assert_eq!(log.detected(), 1);
        assert_eq!(log.recovered(), 1);
        assert!(!log.all_recovered());
        log.detect_worker_death(1, 2.5);
        log.recover_eval(20, 3.0);
        assert!(log.all_recovered());
        let rec = &log.records[1];
        assert_eq!(rec.detection_latency(), Some(0.5));
        assert!(log.mean_detection_latency() > 0.0);
        assert!(log.summary().contains("2 injected"));
    }

    #[test]
    fn finalize_resolves_pending_records() {
        let mut log = FaultLog::default();
        log.inject(FaultKind::MessageDuplicate, 0, 5, 1.0);
        assert!(!log.all_recovered());
        log.finalize(9.0);
        assert!(log.all_recovered());
        assert_eq!(log.records[0].recovered_at, Some(9.0));
    }
}
