//! Incremental hypervolume maintenance.
//!
//! Recomputing the WFG hypervolume from scratch after every archive change
//! costs O(full set) per sample; trajectory analyses sample it thousands of
//! times per run. [`IncrementalHv`] maintains a running value: inserting a
//! point adds its *exclusive contribution* against the current set (an
//! identity of the WFG decomposition, so the update is exact), while any
//! removal falls back to a full recompute — ε-archive evictions can free
//! volume shared with surviving members, which no local update can see.
//!
//! [`ArchiveHvTracker`] automates the choice for an
//! [`EpsilonArchive`](borg_core::archive::EpsilonArchive): it compares
//! [`ArchiveStamp`] snapshots between calls, applies per-row incremental
//! inserts across pure-append intervals, and recomputes otherwise.

use crate::hypervolume::{exclusive_hypervolume, hypervolume};
use borg_core::archive::{ArchiveStamp, EpsilonArchive};

/// A running hypervolume value with O(set) incremental inserts.
#[derive(Debug, Clone)]
pub struct IncrementalHv {
    reference: Vec<f64>,
    points: Vec<Vec<f64>>,
    value: f64,
    incremental_inserts: u64,
    full_recomputes: u64,
}

impl IncrementalHv {
    /// An empty tracker with the given reference point.
    pub fn new(reference: Vec<f64>) -> Self {
        assert!(!reference.is_empty(), "empty reference point");
        Self {
            reference,
            points: Vec::new(),
            value: 0.0,
            incremental_inserts: 0,
            full_recomputes: 0,
        }
    }

    /// Current hypervolume of the tracked set.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of tracked points (dominated members included; they simply
    /// contributed zero).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tracked set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `(incremental inserts, full recomputes)` applied so far.
    pub fn update_counts(&self) -> (u64, u64) {
        (self.incremental_inserts, self.full_recomputes)
    }

    /// Adds one point, increasing the value by its exclusive contribution
    /// against the current set. Returns that contribution.
    pub fn insert(&mut self, point: &[f64]) -> f64 {
        let delta = exclusive_hypervolume(point, &self.points, &self.reference);
        self.value += delta;
        self.points.push(point.to_vec());
        self.incremental_inserts += 1;
        delta
    }

    /// Replaces the tracked set and recomputes the value from scratch
    /// (the removal path).
    pub fn rebuild<'a, I>(&mut self, rows: I)
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        self.points.clear();
        self.points.extend(rows.into_iter().map(|r| r.to_vec()));
        self.value = hypervolume(&self.points, &self.reference);
        self.full_recomputes += 1;
    }
}

/// Stamp-driven hypervolume tracking of an ε-archive.
///
/// Call [`update`](Self::update) after engine steps; intervals in which the
/// archive only appended new-box members (the common steady-state case —
/// [`ArchiveStamp::pure_append_to`] proves it from the mutation counters)
/// cost one exclusive-contribution evaluation per new member, everything
/// else costs one full recompute.
#[derive(Debug, Clone)]
pub struct ArchiveHvTracker {
    inner: IncrementalHv,
    stamp: Option<ArchiveStamp>,
}

impl ArchiveHvTracker {
    /// A tracker computing hypervolume w.r.t. `reference`.
    pub fn new(reference: Vec<f64>) -> Self {
        Self {
            inner: IncrementalHv::new(reference),
            stamp: None,
        }
    }

    /// Synchronizes with the archive's current contents and returns the
    /// hypervolume.
    pub fn update(&mut self, archive: &EpsilonArchive) -> f64 {
        let newer = archive.stamp();
        let appended = self
            .stamp
            .as_ref()
            .and_then(|older| older.pure_append_to(&newer))
            // Only usable when our mirror matches the pre-append prefix.
            .filter(|k| self.inner.len() == archive.len() - k);
        match appended {
            Some(k) => {
                let rows = archive.objective_rows();
                for i in archive.len() - k..archive.len() {
                    self.inner.insert(rows.row(i));
                }
            }
            None => self.inner.rebuild(archive.objective_rows().iter_rows()),
        }
        self.stamp = Some(newer);
        self.inner.value()
    }

    /// Current value without resynchronizing.
    pub fn value(&self) -> f64 {
        self.inner.value()
    }

    /// `(incremental inserts, full recomputes)` applied so far.
    pub fn update_counts(&self) -> (u64, u64) {
        self.inner.update_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_core::solution::Solution;

    fn sol(objs: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), vec![])
    }

    #[test]
    fn incremental_insert_matches_full_recompute() {
        let reference = vec![1.0, 1.0];
        let pts = [
            [0.9, 0.1],
            [0.1, 0.9],
            [0.5, 0.5],
            [0.6, 0.6], // dominated: contributes zero
            [0.3, 0.4],
        ];
        let mut inc = IncrementalHv::new(reference.clone());
        let mut set: Vec<Vec<f64>> = Vec::new();
        for p in pts {
            inc.insert(&p);
            set.push(p.to_vec());
            let full = hypervolume(&set, &reference);
            assert!(
                (inc.value() - full).abs() < 1e-12,
                "incremental {} vs full {}",
                inc.value(),
                full
            );
        }
        assert_eq!(inc.update_counts(), (5, 0));
    }

    #[test]
    fn points_beyond_reference_contribute_zero() {
        let mut inc = IncrementalHv::new(vec![1.0, 1.0]);
        assert_eq!(inc.insert(&[2.0, 0.1]), 0.0);
        assert_eq!(inc.value(), 0.0);
        // And they must not corrupt later updates.
        let d = inc.insert(&[0.5, 0.5]);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rebuild_resets_to_full_value() {
        let mut inc = IncrementalHv::new(vec![1.0, 1.0]);
        inc.insert(&[0.5, 0.5]);
        inc.insert(&[0.2, 0.8]);
        let set = [&[0.1f64, 0.1][..]];
        inc.rebuild(set);
        assert!((inc.value() - 0.81).abs() < 1e-12);
        assert_eq!(inc.len(), 1);
        assert_eq!(inc.update_counts().1, 1);
    }

    #[test]
    fn tracker_follows_archive_through_appends_and_evictions() {
        let reference = vec![2.0, 2.0];
        let mut archive = EpsilonArchive::uniform(2, 0.1);
        let mut tracker = ArchiveHvTracker::new(reference.clone());

        // Pure appends: distinct nondominated boxes.
        archive.add(sol(&[0.05, 1.95]));
        archive.add(sol(&[1.95, 0.05]));
        archive.add(sol(&[1.05, 1.05]));
        let v = tracker.update(&archive);
        let full = hypervolume(&archive.objective_vectors(), &reference);
        assert!((v - full).abs() < 1e-12);
        let (inserts_a, recomputes_a) = tracker.update_counts();
        assert_eq!(recomputes_a, 1, "first sync is a rebuild");

        // More appends since the last stamp: incremental path.
        archive.add(sol(&[0.55, 1.55]));
        let v = tracker.update(&archive);
        let full = hypervolume(&archive.objective_vectors(), &reference);
        assert!((v - full).abs() < 1e-12);
        let (inserts_b, recomputes_b) = tracker.update_counts();
        assert_eq!(
            recomputes_b, recomputes_a,
            "append interval must not rebuild"
        );
        assert!(inserts_b > inserts_a);

        // A dominating insertion evicts members: full recompute.
        archive.add(sol(&[0.01, 0.01]));
        let v = tracker.update(&archive);
        let full = hypervolume(&archive.objective_vectors(), &reference);
        assert!((v - full).abs() < 1e-12);
        let (_, recomputes_c) = tracker.update_counts();
        assert_eq!(recomputes_c, recomputes_a + 1, "eviction must rebuild");
    }
}
