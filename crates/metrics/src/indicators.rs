//! Classical quality indicators: generational distance, inverted
//! generational distance, additive ε-indicator, and Schott's spacing.

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn min_distance_to_set(p: &[f64], set: &[Vec<f64>]) -> f64 {
    set.iter()
        .map(|q| euclidean(p, q))
        .fold(f64::INFINITY, f64::min)
}

/// Generational distance: mean distance from each approximation point to
/// its nearest reference point (0 = converged onto the front).
pub fn generational_distance(approx: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert!(!approx.is_empty() && !reference.is_empty());
    approx
        .iter()
        .map(|p| min_distance_to_set(p, reference))
        .sum::<f64>()
        / approx.len() as f64
}

/// Inverted generational distance: mean distance from each reference point
/// to its nearest approximation point (0 = front fully covered).
pub fn inverted_generational_distance(approx: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    generational_distance(reference, approx)
}

/// Additive ε-indicator (Zitzler et al. 2002): the smallest ε such that
/// every reference point is weakly dominated by some approximation point
/// translated by ε in every objective. 0 = the approximation covers the
/// reference set.
pub fn additive_epsilon(approx: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert!(!approx.is_empty() && !reference.is_empty());
    reference
        .iter()
        .map(|r| {
            approx
                .iter()
                .map(|a| {
                    a.iter()
                        .zip(r)
                        .map(|(x, y)| x - y)
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .fold(f64::INFINITY, f64::min)
        })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Schott's spacing: standard deviation of nearest-neighbour distances
/// (0 = perfectly uniform spread). Requires at least two points.
pub fn spacing(approx: &[Vec<f64>]) -> f64 {
    assert!(approx.len() >= 2, "spacing needs at least two points");
    // Schott uses the L1 nearest-neighbour distance.
    let d: Vec<f64> = approx
        .iter()
        .enumerate()
        .map(|(i, p)| {
            approx
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| p.iter().zip(q).map(|(x, y)| (x - y).abs()).sum::<f64>())
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mean = d.iter().sum::<f64>() / d.len() as f64;
    (d.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (d.len() - 1) as f64).sqrt()
}

/// Maximum Pareto-front error: worst-case distance from a reference point
/// to the approximation (the `L∞` analogue of IGD).
pub fn maximum_front_error(approx: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert!(!approx.is_empty() && !reference.is_empty());
    reference
        .iter()
        .map(|r| min_distance_to_set(r, approx))
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front() -> Vec<Vec<f64>> {
        vec![vec![0.0, 1.0], vec![0.5, 0.5], vec![1.0, 0.0]]
    }

    #[test]
    fn gd_zero_when_on_front() {
        assert_eq!(generational_distance(&front(), &front()), 0.0);
    }

    #[test]
    fn gd_measures_offset() {
        let approx = vec![vec![0.1, 1.1], vec![0.6, 0.6], vec![1.1, 0.1]];
        let gd = generational_distance(&approx, &front());
        let expect = (2.0f64 * 0.01).sqrt();
        assert!((gd - expect).abs() < 1e-12);
    }

    #[test]
    fn igd_detects_missing_coverage() {
        // Approximation covers only one end of the front.
        let approx = vec![vec![0.0, 1.0]];
        let igd = inverted_generational_distance(&approx, &front());
        assert!(igd > 0.4);
        // GD of the same set is 0 (the point is on the front).
        assert_eq!(generational_distance(&approx, &front()), 0.0);
    }

    #[test]
    fn epsilon_zero_iff_reference_weakly_dominated() {
        assert_eq!(additive_epsilon(&front(), &front()), 0.0);
        let shifted: Vec<Vec<f64>> = front()
            .into_iter()
            .map(|p| p.into_iter().map(|x| x + 0.2).collect())
            .collect();
        let eps = additive_epsilon(&shifted, &front());
        assert!((eps - 0.2).abs() < 1e-12);
    }

    #[test]
    fn epsilon_can_be_negative_for_dominating_sets() {
        let better: Vec<Vec<f64>> = front()
            .into_iter()
            .map(|p| p.into_iter().map(|x| x - 0.1).collect())
            .collect();
        let eps = additive_epsilon(&better, &front());
        assert!((eps + 0.1).abs() < 1e-12);
    }

    #[test]
    fn spacing_zero_for_uniform_spread() {
        let uniform = vec![
            vec![0.0, 1.0],
            vec![0.25, 0.75],
            vec![0.5, 0.5],
            vec![0.75, 0.25],
        ];
        assert!(spacing(&uniform).abs() < 1e-12);
    }

    #[test]
    fn spacing_positive_for_clustered_points() {
        let clustered = vec![vec![0.0, 1.0], vec![0.01, 0.99], vec![1.0, 0.0]];
        assert!(spacing(&clustered) > 0.1);
    }

    #[test]
    fn max_front_error_is_worst_case() {
        let approx = vec![vec![0.0, 1.0], vec![0.5, 0.5]];
        let err = maximum_front_error(&approx, &front());
        let expect = euclidean(&[1.0, 0.0], &[0.5, 0.5]);
        assert!((err - expect).abs() < 1e-12);
    }
}
