//! # borg-metrics
//!
//! Multiobjective quality indicators for the Borg MOEA scalability
//! reproduction: exact (WFG) and Monte-Carlo hypervolume, the paper's
//! reference-set-normalized hypervolume ratio, generational distance,
//! inverted generational distance, additive ε-indicator, spacing, and
//! objective normalization helpers.
//!
//! ```
//! use borg_metrics::prelude::*;
//!
//! // Exact hypervolume of two nondominated boxes.
//! let hv = hypervolume(&[vec![0.2, 0.6], vec![0.6, 0.2]], &[1.0, 1.0]);
//! assert!((hv - 0.48).abs() < 1e-12);
//!
//! // The paper's metric: normalized against a reference set, 1.0 = ideal.
//! let front = borg_problems::refsets::dtlz2_front(3, 12);
//! let metric = RelativeHypervolume::exact(&front);
//! assert!((metric.ratio(&front) - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hypervolume;
pub mod incremental;
pub mod indicators;
pub mod mc_hypervolume;
pub mod nds;
pub mod normalize;
pub mod relative;

/// Commonly used items.
pub mod prelude {
    pub use crate::hypervolume::{exclusive_hypervolume, hypervolume, hypervolume_contributions};
    pub use crate::incremental::{ArchiveHvTracker, IncrementalHv};
    pub use crate::indicators::{
        additive_epsilon, generational_distance, inverted_generational_distance,
        maximum_front_error, spacing,
    };
    pub use crate::mc_hypervolume::McHypervolume;
    pub use crate::nds::nondominated_filter;
    pub use crate::normalize::ObjectiveBounds;
    pub use crate::relative::RelativeHypervolume;
}
