//! Objective-space normalization against a reference set.
//!
//! All quality indicators in this crate operate on minimization objectives
//! normalized into `[0, 1]^m` by the ideal and nadir points of the *true*
//! Pareto front (the reference set), following the assessment methodology of
//! Zitzler et al. (2002) that the paper cites for its hypervolume metric.

/// Ideal/nadir bounds of a reference set.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveBounds {
    /// Component-wise minimum of the reference set.
    pub ideal: Vec<f64>,
    /// Component-wise maximum of the reference set.
    pub nadir: Vec<f64>,
}

impl ObjectiveBounds {
    /// Computes bounds from a non-empty reference set.
    ///
    /// # Panics
    /// If `reference` is empty or rows have inconsistent lengths.
    pub fn from_set(reference: &[Vec<f64>]) -> Self {
        assert!(!reference.is_empty(), "empty reference set");
        let m = reference[0].len();
        let mut ideal = vec![f64::INFINITY; m];
        let mut nadir = vec![f64::NEG_INFINITY; m];
        for p in reference {
            assert_eq!(p.len(), m, "inconsistent objective counts");
            for i in 0..m {
                ideal[i] = ideal[i].min(p[i]);
                nadir[i] = nadir[i].max(p[i]);
            }
        }
        Self { ideal, nadir }
    }

    /// Number of objectives.
    pub fn dim(&self) -> usize {
        self.ideal.len()
    }

    /// Normalizes one objective vector into reference coordinates
    /// (`0` = ideal, `1` = nadir). Values outside the reference range map
    /// outside `[0, 1]`; callers decide whether to clip or discard.
    pub fn normalize_point(&self, p: &[f64]) -> Vec<f64> {
        debug_assert_eq!(p.len(), self.dim());
        p.iter()
            .zip(self.ideal.iter().zip(&self.nadir))
            .map(|(&x, (&lo, &hi))| {
                let range = hi - lo;
                if range > 0.0 {
                    (x - lo) / range
                } else {
                    // Degenerate objective (constant across the front):
                    // deviation from it is pure excess.
                    x - lo
                }
            })
            .collect()
    }

    /// Normalizes a whole set.
    pub fn normalize_set(&self, set: &[Vec<f64>]) -> Vec<Vec<f64>> {
        set.iter().map(|p| self.normalize_point(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_from_simple_set() {
        let set = vec![vec![0.0, 2.0], vec![1.0, 1.0], vec![0.5, 3.0]];
        let b = ObjectiveBounds::from_set(&set);
        assert_eq!(b.ideal, vec![0.0, 1.0]);
        assert_eq!(b.nadir, vec![1.0, 3.0]);
        assert_eq!(b.dim(), 2);
    }

    #[test]
    fn normalization_maps_ideal_to_zero_and_nadir_to_one() {
        let set = vec![vec![2.0, 10.0], vec![4.0, 20.0]];
        let b = ObjectiveBounds::from_set(&set);
        assert_eq!(b.normalize_point(&[2.0, 10.0]), vec![0.0, 0.0]);
        assert_eq!(b.normalize_point(&[4.0, 20.0]), vec![1.0, 1.0]);
        assert_eq!(b.normalize_point(&[3.0, 15.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn out_of_range_points_exceed_unit_box() {
        let b = ObjectiveBounds::from_set(&[vec![0.0], vec![1.0]]);
        assert_eq!(b.normalize_point(&[2.0]), vec![2.0]);
        assert_eq!(b.normalize_point(&[-1.0]), vec![-1.0]);
    }

    #[test]
    fn degenerate_dimension_uses_raw_offset() {
        let b = ObjectiveBounds::from_set(&[vec![1.0, 5.0], vec![2.0, 5.0]]);
        let p = b.normalize_point(&[1.5, 5.25]);
        assert_eq!(p, vec![0.5, 0.25]);
    }

    #[test]
    #[should_panic(expected = "empty reference set")]
    fn empty_reference_panics() {
        ObjectiveBounds::from_set(&[]);
    }
}
