//! Monte-Carlo hypervolume estimation.
//!
//! Exact hypervolume is exponential in the objective count; the paper's
//! workloads are 5-objective and its figures need hypervolume along whole
//! search trajectories. A seeded quasi-uniform sampler gives a fast,
//! *consistent* estimator: using the same seed for every set in a
//! comparison makes the estimator's error common-mode, which is exactly
//! what threshold-crossing analyses (Figures 3–4) need.

use borg_core::rng::SplitMix64;
use rand::Rng;

/// Monte-Carlo hypervolume estimator over the box `[lower, reference]`.
#[derive(Debug, Clone)]
pub struct McHypervolume {
    samples: Vec<Vec<f64>>,
    box_volume: f64,
    reference: Vec<f64>,
}

impl McHypervolume {
    /// Creates an estimator with `n` samples drawn uniformly from the box
    /// spanned by `lower` and `reference`.
    ///
    /// # Panics
    /// If the box is degenerate or `n == 0`.
    pub fn new(lower: &[f64], reference: &[f64], n: usize, seed: u64) -> Self {
        assert_eq!(lower.len(), reference.len());
        assert!(n > 0, "need at least one sample");
        assert!(
            lower.iter().zip(reference).all(|(a, b)| a < b),
            "degenerate sampling box"
        );
        let mut rng = SplitMix64::new(seed).derive("mc-hv");
        let m = lower.len();
        let samples = (0..n)
            .map(|_| {
                (0..m)
                    .map(|i| rng.gen_range(lower[i]..reference[i]))
                    .collect()
            })
            .collect();
        let box_volume = lower.iter().zip(reference).map(|(a, b)| b - a).product();
        Self {
            samples,
            box_volume,
            reference: reference.to_vec(),
        }
    }

    /// Unit-box estimator (`[0,1]^m`), the common case after normalization.
    pub fn unit(m: usize, n: usize, seed: u64) -> Self {
        Self::new(&vec![0.0; m], &vec![1.0; m], n, seed)
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Estimates the hypervolume of `points` w.r.t. the configured
    /// reference point: `box_volume × (fraction of samples dominated)`.
    pub fn estimate(&self, points: &[Vec<f64>]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        let dominated = self
            .samples
            .iter()
            .filter(|s| {
                points
                    .iter()
                    .any(|p| p.iter().zip(s.iter()).all(|(a, b)| a <= b))
            })
            .count();
        self.box_volume * dominated as f64 / self.samples.len() as f64
    }

    /// The reference point in use.
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervolume::hypervolume;

    #[test]
    fn matches_exact_on_simple_boxes() {
        let est = McHypervolume::unit(2, 200_000, 1);
        let pts = vec![vec![0.2, 0.6], vec![0.6, 0.2]];
        let exact = hypervolume(&pts, &[1.0, 1.0]);
        let mc = est.estimate(&pts);
        assert!((mc - exact).abs() < 0.01, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn matches_exact_in_five_dimensions() {
        let est = McHypervolume::unit(5, 200_000, 2);
        let pts = vec![vec![0.5; 5], vec![0.2, 0.8, 0.5, 0.5, 0.5]];
        let exact = hypervolume(&pts, &[1.0; 5]);
        let mc = est.estimate(&pts);
        assert!((mc - exact).abs() < 0.01, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn estimator_is_deterministic_per_seed() {
        let a = McHypervolume::unit(3, 10_000, 7);
        let b = McHypervolume::unit(3, 10_000, 7);
        let pts = vec![vec![0.3, 0.3, 0.3]];
        assert_eq!(a.estimate(&pts), b.estimate(&pts));
    }

    #[test]
    fn estimate_is_monotone_in_set_growth() {
        let est = McHypervolume::unit(3, 50_000, 3);
        let small = vec![vec![0.5, 0.5, 0.5]];
        let mut bigger = small.clone();
        bigger.push(vec![0.1, 0.9, 0.4]);
        assert!(est.estimate(&bigger) >= est.estimate(&small));
    }

    #[test]
    fn empty_set_has_zero_volume() {
        let est = McHypervolume::unit(4, 1000, 4);
        assert_eq!(est.estimate(&[]), 0.0);
    }

    #[test]
    fn non_unit_box_scales_volume() {
        let est = McHypervolume::new(&[0.0, 0.0], &[2.0, 2.0], 100_000, 5);
        // Point at origin dominates the whole 2×2 box.
        let v = est.estimate(&[vec![0.0, 0.0]]);
        assert!((v - 4.0).abs() < 1e-9);
    }
}
