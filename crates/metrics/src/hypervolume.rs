//! Exact hypervolume via the WFG algorithm (While, Bradstreet & Barone,
//! IEEE TEC 2012).
//!
//! Hypervolume of a point set `S` (minimization) w.r.t. a reference point
//! `r` is the Lebesgue measure of `⋃_{p∈S} [p, r]`. The WFG algorithm
//! computes it as a sum of exclusive contributions, each obtained by
//! "limiting" the remaining points against the current one and recursing on
//! the non-dominated subset. Dedicated `m = 1` and `m = 2` base cases keep
//! the recursion shallow.

use crate::nds::nondominated_filter;

/// Exact hypervolume of `points` with respect to `reference` (minimization).
///
/// Points not strictly dominating the reference point contribute nothing
/// and are dropped. Returns 0 for an empty (effective) set.
///
/// # Panics
/// If dimensions are inconsistent.
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let m = reference.len();
    let mut set: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| {
            assert_eq!(p.len(), m, "dimension mismatch");
            p.iter().zip(reference).all(|(a, r)| a < r)
        })
        .cloned()
        .collect();
    if set.is_empty() {
        return 0.0;
    }
    set = nondominated_filter(set);
    // Sorting by the first objective descending improves limit-set pruning.
    set.sort_by(|a, b| b[0].total_cmp(&a[0]));
    wfg(&set, reference)
}

fn wfg(set: &[Vec<f64>], reference: &[f64]) -> f64 {
    match reference.len() {
        1 => {
            // 1-D: the best point determines the measure.
            let best = set.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            (reference[0] - best).max(0.0)
        }
        2 => hv2d(set, reference),
        _ => set
            .iter()
            .enumerate()
            .map(|(i, p)| exclusive_hv(p, &set[i + 1..], reference))
            .sum(),
    }
}

/// Inclusive hypervolume of a single point.
fn inclusive_hv(p: &[f64], reference: &[f64]) -> f64 {
    p.iter().zip(reference).map(|(a, r)| r - a).product()
}

/// Exclusive contribution of `p` against the later points `rest`.
fn exclusive_hv(p: &[f64], rest: &[Vec<f64>], reference: &[f64]) -> f64 {
    let incl = inclusive_hv(p, reference);
    if rest.is_empty() {
        return incl;
    }
    // Limit set: each later point clipped into p's dominated box.
    let limited: Vec<Vec<f64>> = rest
        .iter()
        .map(|q| q.iter().zip(p).map(|(&a, &b)| a.max(b)).collect())
        .collect();
    let limited = nondominated_filter(limited);
    incl - wfg(&limited, reference)
}

/// Exclusive hypervolume contribution of one extra point against an
/// existing set: `hypervolume(set ∪ {point}) − hypervolume(set)`.
///
/// This is the update step of incremental hypervolume maintenance
/// ([`crate::incremental::IncrementalHv`]): inserting into a set of size
/// `n` costs one exclusive-contribution evaluation instead of a full
/// recompute over `n + 1` points. Points at or beyond the reference point
/// contribute zero, exactly as [`hypervolume`] drops them.
pub fn exclusive_hypervolume(point: &[f64], set: &[Vec<f64>], reference: &[f64]) -> f64 {
    let m = reference.len();
    assert_eq!(point.len(), m, "dimension mismatch");
    if !point.iter().zip(reference).all(|(a, r)| a < r) {
        return 0.0;
    }
    let rest: Vec<Vec<f64>> = set
        .iter()
        .filter(|q| {
            assert_eq!(q.len(), m, "dimension mismatch");
            q.iter().zip(reference).all(|(a, r)| a < r)
        })
        .cloned()
        .collect();
    exclusive_hv(point, &rest, reference)
}

/// Exclusive hypervolume contribution of each point: how much volume
/// would be lost if that point were removed from the set.
///
/// Dominated (and duplicate) points contribute exactly 0. The vector is
/// aligned with the input order. Used for archive truncation policies and
/// for diagnosing which archive members carry the front.
pub fn hypervolume_contributions(points: &[Vec<f64>], reference: &[f64]) -> Vec<f64> {
    let total = hypervolume(points, reference);
    points
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let without: Vec<Vec<f64>> = points
                .iter()
                .enumerate()
                .filter(|&(j, _p)| j != i)
                .map(|(_j, p)| p.clone())
                .collect();
            (total - hypervolume(&without, reference)).max(0.0)
        })
        .collect()
}

/// O(n log n) sweep for the 2-D base case.
fn hv2d(set: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts: Vec<(f64, f64)> = set.iter().map(|p| (p[0], p[1])).collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut hv = 0.0;
    let mut best_f2 = reference[1];
    for (f1, f2) in pts {
        if f2 < best_f2 {
            hv += (reference[0] - f1) * (best_f2 - f2);
            best_f2 = f2;
        }
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_box() {
        let hv = hypervolume(&[vec![0.25, 0.25]], &[1.0, 1.0]);
        assert!((hv - 0.5625).abs() < 1e-12);
    }

    #[test]
    fn point_on_reference_contributes_nothing() {
        assert_eq!(hypervolume(&[vec![1.0, 0.0]], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[vec![2.0, 0.0]], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn two_nondominated_points_union() {
        // Boxes [0.2,1]x[0.6,1] and [0.6,1]x[0.2,1]: union area
        // = 0.8*0.4 + 0.4*0.8 − 0.4*0.4 = 0.48.
        let hv = hypervolume(&[vec![0.2, 0.6], vec![0.6, 0.2]], &[1.0, 1.0]);
        assert!((hv - 0.48).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_are_ignored() {
        let a = hypervolume(&[vec![0.2, 0.2]], &[1.0, 1.0]);
        let b = hypervolume(
            &[vec![0.2, 0.2], vec![0.5, 0.5], vec![0.9, 0.3]],
            &[1.0, 1.0],
        );
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_counted_once() {
        let a = hypervolume(&[vec![0.3, 0.4]], &[1.0, 1.0]);
        let b = hypervolume(&[vec![0.3, 0.4], vec![0.3, 0.4]], &[1.0, 1.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn three_d_staircase() {
        // Three mutually nondominated unit-corner boxes in 3-D.
        let pts = vec![
            vec![0.0, 0.5, 0.5],
            vec![0.5, 0.0, 0.5],
            vec![0.5, 0.5, 0.0],
        ];
        // Inclusion-exclusion: 3·(1·0.5·0.5) − 3·(0.5·0.5·0.5) + 0.125 = 0.5.
        let hv = hypervolume(&pts, &[1.0, 1.0, 1.0]);
        assert!((hv - 0.5).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn five_d_single_point() {
        let hv = hypervolume(&[vec![0.5; 5]], &[1.0; 5]);
        assert!((hv - 0.5f64.powi(5)).abs() < 1e-12);
    }

    #[test]
    fn contributions_sum_to_at_most_total_and_zero_for_dominated() {
        let pts = vec![
            vec![0.2, 0.6],
            vec![0.6, 0.2],
            vec![0.7, 0.7], // dominated
            vec![0.2, 0.6], // duplicate
        ];
        let r = [1.0, 1.0];
        let contrib = hypervolume_contributions(&pts, &r);
        assert_eq!(contrib.len(), 4);
        assert_eq!(contrib[2], 0.0, "dominated point must contribute 0");
        // One of the duplicates contributes 0 (removing either leaves the
        // other covering the same region) — in fact both report 0.
        assert_eq!(contrib[3], 0.0);
        assert_eq!(contrib[0], 0.0);
        // The unique point's contribution is its exclusive corner.
        assert!((contrib[1] - 0.4 * 0.4).abs() < 1e-12, "{contrib:?}");
        let total = hypervolume(&pts, &r);
        assert!(contrib.iter().sum::<f64>() <= total + 1e-12);
    }

    #[test]
    fn contributions_identify_the_knee_point() {
        // A strongly protruding point contributes more than its shoulder
        // neighbours.
        let pts = vec![vec![0.0, 0.9], vec![0.3, 0.3], vec![0.9, 0.0]];
        let contrib = hypervolume_contributions(&pts, &[1.0, 1.0]);
        assert!(
            contrib[1] > contrib[0] && contrib[1] > contrib[2],
            "{contrib:?}"
        );
    }

    #[test]
    fn matches_inclusion_exclusion_on_random_sets() {
        // Brute-force union volume by inclusion-exclusion over all subsets
        // (valid for small sets), compared against WFG in 3-D and 4-D.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for m in [3usize, 4] {
            for _ in 0..20 {
                let pts: Vec<Vec<f64>> = (0..5)
                    .map(|_| (0..m).map(|_| rng.gen::<f64>() * 0.9).collect())
                    .collect();
                let reference = vec![1.0; m];
                let expect = brute_force_union(&pts, &reference);
                let got = hypervolume(&pts, &reference);
                assert!(
                    (expect - got).abs() < 1e-9,
                    "m={m}: WFG {got} vs inclusion-exclusion {expect}"
                );
            }
        }
    }

    fn brute_force_union(pts: &[Vec<f64>], reference: &[f64]) -> f64 {
        let n = pts.len();
        let m = reference.len();
        let mut total = 0.0;
        for mask in 1u32..(1 << n) {
            let mut corner = vec![f64::NEG_INFINITY; m];
            for (i, p) in pts.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    for j in 0..m {
                        corner[j] = corner[j].max(p[j]);
                    }
                }
            }
            let vol: f64 = corner
                .iter()
                .zip(reference)
                .map(|(&c, &r)| (r - c).max(0.0))
                .product();
            if mask.count_ones() % 2 == 1 {
                total += vol;
            } else {
                total -= vol;
            }
        }
        total
    }

    #[test]
    fn dtlz2_front_hypervolume_is_stable() {
        // The exact HV of the continuous 3-D unit-sphere front w.r.t.
        // (1,1,1) is 1 − π/6 ≈ 0.4764; finite lattice samples approach it
        // from below as the lattice densifies.
        let limit = 1.0 - std::f64::consts::PI / 6.0;
        let coarse = borg_problems::refsets::dtlz2_front(3, 12);
        let fine = borg_problems::refsets::dtlz2_front(3, 20);
        let r = vec![1.0; 3];
        let hc = hypervolume(&coarse, &r);
        let hf = hypervolume(&fine, &r);
        assert!(hf > hc, "denser front sample must dominate more volume");
        assert!(hf < limit, "lattice HV exceeded the continuum limit: {hf}");
        assert!(limit - hf < limit - hc, "not converging toward 1 − π/6");
        assert!(hf > 0.4, "implausibly small sphere-front HV {hf}");
    }
}
