//! Non-dominated filtering of raw objective-vector sets.

/// Returns the Pareto-nondominated subset of `points` (minimization),
/// removing exact duplicates. O(n²); metrics-path only.
pub fn nondominated_filter(points: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let idx = borg_core::dominance::nondominated_indices(&points);
    let keep: std::collections::HashSet<usize> = idx.into_iter().collect();
    points
        .into_iter()
        .enumerate()
        .filter_map(|(i, p)| keep.contains(&i).then_some(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_dominated_and_duplicates() {
        let pts = vec![
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 2.0],
            vec![0.0, 1.0],
        ];
        let out = nondominated_filter(pts);
        assert_eq!(out, vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
    }

    #[test]
    fn keeps_everything_when_mutually_nondominated() {
        let pts = vec![vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]];
        assert_eq!(nondominated_filter(pts.clone()), pts);
    }

    #[test]
    fn empty_in_empty_out() {
        assert!(nondominated_filter(vec![]).is_empty());
    }
}
