//! The paper's hypervolume metric: normalized against a known reference
//! set, so that 1.0 means "matches the true Pareto front".
//!
//! Construction: normalize objectives by the reference set's ideal/nadir
//! points, compute hypervolume w.r.t. the normalized nadir `(1,…,1)`, and
//! divide by the reference set's own hypervolume. Both an exact (WFG) and a
//! seeded Monte-Carlo backend are provided; trajectory analyses use the MC
//! backend so estimator error is common-mode across compared runs.

use crate::hypervolume::hypervolume;
use crate::mc_hypervolume::McHypervolume;
use crate::normalize::ObjectiveBounds;

enum Backend {
    Exact,
    MonteCarlo(McHypervolume),
}

/// Reference-set-normalized hypervolume (the paper's metric).
pub struct RelativeHypervolume {
    bounds: ObjectiveBounds,
    backend: Backend,
    reference_hv: f64,
}

impl RelativeHypervolume {
    /// Exact-backend metric.
    pub fn exact(reference_set: &[Vec<f64>]) -> Self {
        let bounds = ObjectiveBounds::from_set(reference_set);
        let normalized = bounds.normalize_set(reference_set);
        let m = bounds.dim();
        let reference_hv = hypervolume(&normalized, &vec![1.0; m]);
        assert!(
            reference_hv > 0.0,
            "reference set has zero hypervolume: degenerate front?"
        );
        Self {
            bounds,
            backend: Backend::Exact,
            reference_hv,
        }
    }

    /// Monte-Carlo-backend metric with `samples` common random points.
    pub fn monte_carlo(reference_set: &[Vec<f64>], samples: usize, seed: u64) -> Self {
        let bounds = ObjectiveBounds::from_set(reference_set);
        let normalized = bounds.normalize_set(reference_set);
        let m = bounds.dim();
        let est = McHypervolume::unit(m, samples, seed);
        let reference_hv = est.estimate(&normalized);
        assert!(
            reference_hv > 0.0,
            "reference set has zero estimated hypervolume; increase samples"
        );
        Self {
            bounds,
            backend: Backend::MonteCarlo(est),
            reference_hv,
        }
    }

    /// The normalization bounds in use.
    pub fn bounds(&self) -> &ObjectiveBounds {
        &self.bounds
    }

    /// Hypervolume ratio of an approximation set: ~0 for far-away sets,
    /// ~1 for sets matching the reference front. Slightly above 1 is
    /// possible for ε-archives whose representatives sit inside the lattice
    /// gaps of a finitely-sampled reference set.
    pub fn ratio(&self, approximation: &[Vec<f64>]) -> f64 {
        self.ratio_rows(approximation.iter().map(|p| p.as_slice()))
    }

    /// As [`ratio`](Self::ratio), reading the approximation set from
    /// borrowed row slices (e.g. an archive's flat objective matrix) so
    /// callers need not materialize a `Vec<Vec<f64>>` first. Performs the
    /// identical arithmetic in the identical order, so results are
    /// bit-identical to `ratio`.
    pub fn ratio_rows<'a, I>(&self, rows: I) -> f64
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let normalized: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|p| self.bounds.normalize_point(p))
            .collect();
        if normalized.is_empty() {
            return 0.0;
        }
        let m = self.bounds.dim();
        let hv = match &self.backend {
            Backend::Exact => hypervolume(&normalized, &vec![1.0; m]),
            Backend::MonteCarlo(est) => est.estimate(&normalized),
        };
        hv / self.reference_hv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_problems::refsets::dtlz2_front;

    #[test]
    fn reference_set_scores_one() {
        let front = dtlz2_front(3, 12);
        let metric = RelativeHypervolume::exact(&front);
        let r = metric.ratio(&front);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_scores_zero() {
        let metric = RelativeHypervolume::exact(&dtlz2_front(3, 8));
        assert_eq!(metric.ratio(&[]), 0.0);
    }

    #[test]
    fn inflated_set_scores_less_than_one() {
        let front = dtlz2_front(3, 12);
        let inflated: Vec<Vec<f64>> = front
            .iter()
            .map(|p| p.iter().map(|x| x * 1.2).collect())
            .collect();
        let metric = RelativeHypervolume::exact(&front);
        let r = metric.ratio(&inflated);
        assert!(r < 0.8, "inflated front scored {r}");
        assert!(r > 0.0);
    }

    #[test]
    fn partial_coverage_scores_partially() {
        let front = dtlz2_front(3, 12);
        let metric = RelativeHypervolume::exact(&front);
        let half: Vec<Vec<f64>> = front.iter().take(front.len() / 4).cloned().collect();
        let r = metric.ratio(&half);
        assert!(r > 0.05 && r < 0.95, "quarter front scored {r}");
    }

    #[test]
    fn mc_backend_tracks_exact_backend() {
        let front = dtlz2_front(3, 10);
        let exact = RelativeHypervolume::exact(&front);
        let mc = RelativeHypervolume::monte_carlo(&front, 100_000, 9);
        let test_set: Vec<Vec<f64>> = front
            .iter()
            .map(|p| p.iter().map(|x| x * 1.05).collect())
            .collect();
        let a = exact.ratio(&test_set);
        let b = mc.ratio(&test_set);
        assert!((a - b).abs() < 0.03, "exact {a} vs mc {b}");
    }

    #[test]
    fn scaling_objectives_does_not_change_ratio() {
        // UF11's objective scaling must be normalized away.
        let front = dtlz2_front(3, 10);
        let scales = [1.0, 2.0, 5.0];
        let scaled_front: Vec<Vec<f64>> = front
            .iter()
            .map(|p| p.iter().zip(scales).map(|(x, s)| x * s).collect())
            .collect();
        let metric = RelativeHypervolume::exact(&front);
        let scaled_metric = RelativeHypervolume::exact(&scaled_front);
        let approx: Vec<Vec<f64>> = front
            .iter()
            .map(|p| p.iter().map(|x| x * 1.1).collect())
            .collect();
        let scaled_approx: Vec<Vec<f64>> = approx
            .iter()
            .map(|p| p.iter().zip(scales).map(|(x, s)| x * s).collect())
            .collect();
        let a = metric.ratio(&approx);
        let b = scaled_metric.ratio(&scaled_approx);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
