//! Property tests for incremental hypervolume maintenance: the running
//! value kept by [`IncrementalHv`] (and the stamp-driven
//! [`ArchiveHvTracker`]) must agree with a from-scratch WFG recompute to
//! within 1e-9 on arbitrary point streams, including dominated points,
//! duplicates, and points at or beyond the reference.

use borg_core::archive::EpsilonArchive;
use borg_core::solution::Solution;
use borg_metrics::hypervolume::hypervolume;
use borg_metrics::incremental::{ArchiveHvTracker, IncrementalHv};
use proptest::prelude::*;

/// Coarse palette forcing duplicates, dominated points, and members sitting
/// exactly on (or beyond) the reference point.
fn objective_value() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![0.0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0, 1.2])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every single insert the running value matches the full WFG
    /// recompute of the accumulated set.
    #[test]
    fn incremental_inserts_match_full_recompute(
        m in 2usize..=4,
        stream in prop::collection::vec(prop::collection::vec(objective_value(), 4), 1..40),
    ) {
        let reference = vec![1.0; m];
        let mut inc = IncrementalHv::new(reference.clone());
        let mut set: Vec<Vec<f64>> = Vec::new();
        for point in &stream {
            let point = &point[..m];
            inc.insert(point);
            set.push(point.to_vec());
            let full = hypervolume(&set, &reference);
            prop_assert!(
                (inc.value() - full).abs() < 1e-9,
                "incremental {} vs full {} after {} points",
                inc.value(),
                full,
                set.len()
            );
        }
        let (inserts, recomputes) = inc.update_counts();
        prop_assert_eq!(inserts, stream.len() as u64);
        prop_assert_eq!(recomputes, 0);
    }

    /// The archive tracker stays within 1e-9 of the full recompute across
    /// arbitrary ε-archive histories — pure-append intervals (incremental
    /// path) and evicting/replacing insertions (rebuild path) alike.
    #[test]
    fn archive_tracker_matches_full_recompute(
        m in 2usize..=3,
        epsilon in 0.05f64..0.2,
        sync_every in 1usize..4,
        stream in prop::collection::vec(prop::collection::vec(objective_value(), 3), 1..60),
    ) {
        let reference = vec![1.5; m];
        let mut archive = EpsilonArchive::uniform(m, epsilon);
        let mut tracker = ArchiveHvTracker::new(reference.clone());
        for (step, point) in stream.iter().enumerate() {
            let objs = point[..m].to_vec();
            archive.add(Solution::from_parts(vec![], objs, vec![]));
            // Syncing only every few insertions exercises multi-append
            // intervals between stamps.
            if step % sync_every == 0 {
                let got = tracker.update(&archive);
                let full = hypervolume(&archive.objective_vectors(), &reference);
                prop_assert!(
                    (got - full).abs() < 1e-9,
                    "tracker {} vs full {} at step {}",
                    got,
                    full,
                    step
                );
            }
        }
        let got = tracker.update(&archive);
        let full = hypervolume(&archive.objective_vectors(), &reference);
        prop_assert!((got - full).abs() < 1e-9, "final tracker {got} vs full {full}");
    }
}
