//! Black-box flight recorder: a fixed-capacity ring of recent events.
//!
//! Postmortems of the kill-worker and chaos paths used to require
//! re-running the whole experiment under full tracing. The flight
//! recorder keeps the *last N* engine events/commands and `net.*` frame
//! codes in a pre-allocated ring — recording never allocates — and dumps
//! them as deterministic JSONL when something dies: worker death, a
//! chaos-fault sever, a panic, or orderly shutdown.
//!
//! Determinism: the dump is a pure function of the recorded events, and
//! under virtual time (DES, chaos loopback) the events themselves are a
//! pure function of the seed, so same-seed dumps are byte-identical —
//! the determinism gate checks exactly that.

use crate::recorder::{Recorder, TraceEdge};
use crate::span::{Activity, Actor};

/// One black-box entry: an event code plus code-specific payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number (total events ever recorded precede it).
    pub seq: u64,
    /// Recording process's clock, seconds (virtual or wall).
    pub t: f64,
    /// What happened: an `evt.*`/`cmd.*` engine code or a `net.*` frame
    /// code from the metric catalogue.
    pub code: &'static str,
    /// First payload (typically the eval id; `u64::MAX` when unused).
    pub a: u64,
    /// Second payload (typically the worker slot; `u64::MAX` when unused).
    pub b: u64,
    /// Float detail (latency, deadline, offset — code-specific).
    pub x: f64,
}

struct Ring {
    /// Pre-allocated to `capacity`; pushes never reallocate.
    events: Vec<FlightEvent>,
    next_seq: u64,
}

/// The fixed-capacity ring. Concurrent (`&self`) like every sink; the
/// guard is `std::sync::Mutex` to keep `borg-obs` zero-dependency, with
/// poisoning neutralised the same way [`crate::InMemoryRecorder`] does.
pub struct FlightRecorder {
    // borg-lint: allow(BORG-L004)
    inner: std::sync::Mutex<Ring>,
    capacity: usize,
}

impl FlightRecorder {
    /// A ring holding the most recent `capacity` events (capacity is
    /// clamped to at least 1; memory is allocated up front).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            // borg-lint: allow(BORG-L004)
            inner: std::sync::Mutex::new(Ring {
                events: Vec::with_capacity(capacity),
                next_seq: 0,
            }),
            capacity,
        }
    }

    fn ring(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records one event, overwriting the oldest once the ring is full.
    /// Allocation-free after construction.
    pub fn record(&self, code: &'static str, t: f64, a: u64, b: u64, x: f64) {
        let mut r = self.ring();
        let seq = r.next_seq;
        r.next_seq += 1;
        let ev = FlightEvent {
            seq,
            t,
            code,
            a,
            b,
            x,
        };
        if r.events.len() < self.capacity {
            r.events.push(ev);
        } else {
            let cap = self.capacity;
            r.events[(seq % cap as u64) as usize] = ev;
        }
    }

    /// Total events ever recorded (≥ the number retained).
    pub fn recorded(&self) -> u64 {
        self.ring().next_seq
    }

    /// The retained events in sequence order (oldest first).
    pub fn events(&self) -> Vec<FlightEvent> {
        let r = self.ring();
        let mut evs = r.events.clone();
        evs.sort_by_key(|e| e.seq);
        evs
    }

    /// Deterministic JSONL dump: a header line naming the trigger and the
    /// drop count, then one line per retained event, oldest first. Equal
    /// event histories produce byte-identical dumps.
    pub fn dump_jsonl(&self, trigger: &str) -> String {
        let r = self.ring();
        let mut evs = r.events.clone();
        evs.sort_by_key(|e| e.seq);
        let dropped = r.next_seq - evs.len() as u64;
        let mut out = format!(
            "{{\"flight\":\"borg-flight/v1\",\"trigger\":\"{}\",\"recorded\":{},\"dropped\":{}}}\n",
            crate::export::json_escape(trigger),
            r.next_seq,
            dropped
        );
        for e in evs {
            out.push_str(&format!(
                "{{\"seq\":{},\"t\":{},\"code\":\"{}\",\"a\":{},\"b\":{},\"x\":{}}}\n",
                e.seq,
                crate::export::json_f64(e.t),
                crate::export::json_escape(e.code),
                e.a,
                e.b,
                crate::export::json_f64(e.x)
            ));
        }
        out
    }
}

/// Adapter that layers a [`FlightRecorder`] over any sink: all metric and
/// span hooks forward to `inner` untouched, while [`Recorder::flight`]
/// lands in the ring. Lets the engine stay generic over one `rec`
/// parameter while the process owns the black box.
pub struct WithFlight<'a, R: Recorder + ?Sized> {
    inner: &'a R,
    ring: &'a FlightRecorder,
}

impl<'a, R: Recorder + ?Sized> WithFlight<'a, R> {
    /// Wraps `inner`, routing flight events into `ring`.
    pub fn new(inner: &'a R, ring: &'a FlightRecorder) -> Self {
        WithFlight { inner, ring }
    }

    /// The wrapped ring (for dumping at trigger points).
    pub fn ring(&self) -> &FlightRecorder {
        self.ring
    }
}

impl<R: Recorder + ?Sized> Recorder for WithFlight<'_, R> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.inner.gauge(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.inner.observe(name, value);
    }

    fn span(&self, actor: Actor, activity: Activity, start: f64, end: f64) {
        self.inner.span(actor, activity, start, end);
    }

    fn trace_edge(&self, edge: TraceEdge) {
        self.inner.trace_edge(edge);
    }

    fn flight(&self, code: &'static str, t: f64, a: u64, b: u64, x: f64) {
        self.ring.record(code, t, a, b, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{InMemoryRecorder, NoopRecorder};

    #[test]
    fn ring_overwrites_oldest_and_dumps_in_order() {
        let ring = FlightRecorder::new(3);
        for i in 0..5u64 {
            ring.record("evt.result_arrived", i as f64, i, 0, 0.0);
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.recorded(), 5);
        let dump = ring.dump_jsonl("worker_death");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"trigger\":\"worker_death\""));
        assert!(lines[0].contains("\"recorded\":5"));
        assert!(lines[0].contains("\"dropped\":2"));
        assert!(lines[1].contains("\"seq\":2"));
        assert!(lines[3].contains("\"seq\":4"));
    }

    #[test]
    fn identical_histories_dump_identically() {
        let a = FlightRecorder::new(8);
        let b = FlightRecorder::new(8);
        for ring in [&a, &b] {
            for i in 0..20u64 {
                ring.record("cmd.dispatch", i as f64 * 0.5, i, i % 3, 0.125);
            }
        }
        assert_eq!(a.dump_jsonl("sever"), b.dump_jsonl("sever"));
    }

    #[test]
    fn with_flight_forwards_metrics_and_captures_flight() {
        let inner = InMemoryRecorder::new();
        let ring = FlightRecorder::new(4);
        let rec = WithFlight::new(&inner, &ring);
        rec.counter("engine.reissues", 1);
        rec.flight("evt.worker_died", 1.5, u64::MAX, 2, 0.0);
        assert_eq!(inner.snapshot().counters["engine.reissues"], 1);
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.events()[0].b, 2);
        assert!(rec.enabled());

        // Over the noop sink the ring still collects.
        let rec2 = WithFlight::new(&NoopRecorder, &ring);
        rec2.flight("evt.worker_died", 2.0, u64::MAX, 1, 0.0);
        assert_eq!(ring.recorded(), 2);
        assert!(!rec2.enabled());
    }
}
