//! The [`Recorder`] facade and its two sinks.
//!
//! Instrumented code (the protocol engine, all three executors) takes
//! `rec: &R` with `R: Recorder + ?Sized` and calls the facade
//! unconditionally; the sink decides what happens. [`NoopRecorder`]'s
//! methods are the trait's empty defaults, so with it the hooks
//! monomorphize to nothing — observation is free unless requested.
//! [`InMemoryRecorder`] is the concurrent collecting sink.
//!
//! The facade is deliberately *read-only with respect to the experiment*:
//! recorders receive values, never influence control flow, RNG draws or
//! event ordering — the determinism gate (`cargo xtask check
//! --determinism`) verifies a run with the in-memory sink attached is
//! bit-identical to one with the no-op sink.

use crate::hist::Histogram;
use crate::span::{Activity, Actor, Span, SpanTrace};
use std::collections::BTreeMap;

/// The instrumentation facade: counters, gauges, histograms, spans.
///
/// All methods take `&self` so one recorder can be shared by a master
/// loop and its transports; every method has an empty default body.
pub trait Recorder {
    /// Whether this sink keeps anything (lets callers skip building
    /// expensive labels; the hooks themselves need no gating).
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records `value` into the named log-bucketed histogram.
    fn observe(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records one activity span. Implementations also feed the span's
    /// duration into the activity's histogram (see
    /// [`Activity::metric_name`]) so `T_F`/`T_C`/`T_A` distributions fall
    /// out of tracing for free.
    fn span(&self, actor: Actor, activity: Activity, start: f64, end: f64) {
        let _ = (actor, activity, start, end);
    }
}

/// The default sink: every hook is the trait's empty default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A point-in-time copy of an [`InMemoryRecorder`]'s metric state.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauges by name (last written value).
    pub gauges: BTreeMap<&'static str, f64>,
    /// Log-bucketed histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-wise, gauges are last-write-wins (`other` overwrites, since
    /// it is the later snapshot in merge order).
    ///
    /// This is how per-job recorders from `borg-runner` fan-ins become one
    /// deterministic snapshot: each parallel job records into its own
    /// [`InMemoryRecorder`], and the caller merges the snapshots **in job
    /// index order**. Because merge order is fixed, the merged snapshot —
    /// and every export derived from it — is bit-identical regardless of
    /// how many workers ran the jobs.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name, *value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name).or_default().merge(hist);
        }
    }
}

#[derive(Debug, Default)]
struct Store {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: Vec<Span>,
    dropped_spans: u64,
}

/// The collecting sink: concurrent (`&self`, internally mutex-guarded)
/// and deterministic (pure accumulation, no clock or RNG access).
///
/// Zero-dependency by design, so the guard is `std::sync::Mutex` rather
/// than the workspace-standard `parking_lot` (poisoning is neutralised by
/// taking the data from a poisoned lock — all stored state is valid at
/// every instruction boundary).
pub struct InMemoryRecorder {
    // borg-lint: allow(BORG-L004)
    inner: std::sync::Mutex<Store>,
    span_limit: usize,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// A recorder keeping everything, including every span.
    pub fn new() -> Self {
        Self::with_span_limit(usize::MAX)
    }

    /// A recorder that keeps metrics (counters, gauges, histograms —
    /// including the per-activity duration histograms derived from spans)
    /// but stores no span list. Use for long sweeps where a full timeline
    /// would be unbounded memory.
    pub fn metrics_only() -> Self {
        Self::with_span_limit(0)
    }

    /// A recorder storing at most `limit` spans; further spans still feed
    /// the duration histograms and are counted as dropped.
    pub fn with_span_limit(limit: usize) -> Self {
        InMemoryRecorder {
            // borg-lint: allow(BORG-L004)
            inner: std::sync::Mutex::new(Store::default()),
            span_limit: limit,
        }
    }

    fn store(&self) -> std::sync::MutexGuard<'_, Store> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Copies out the current metric state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let s = self.store();
        MetricsSnapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s.histograms.clone(),
        }
    }

    /// Copies the stored spans into a renderable [`SpanTrace`].
    pub fn span_trace(&self) -> SpanTrace {
        SpanTrace::from_spans(self.store().spans.clone())
    }

    /// Moves the stored spans out (the recorder keeps collecting after).
    pub fn take_spans(&self) -> Vec<Span> {
        std::mem::take(&mut self.store().spans)
    }

    /// Spans discarded because of the span limit.
    pub fn dropped_spans(&self) -> u64 {
        self.store().dropped_spans
    }
}

impl Recorder for InMemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        *self.store().counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.store().gauges.insert(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.store()
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    }

    fn span(&self, actor: Actor, activity: Activity, start: f64, end: f64) {
        debug_assert!(end >= start, "span ends before it starts");
        if end <= start {
            return; // zero-length spans carry no time; drop like SpanTrace
        }
        let mut s = self.store();
        s.histograms
            .entry(activity.metric_name())
            .or_default()
            .record(end - start);
        if s.spans.len() < self.span_limit {
            s.spans.push(Span {
                actor,
                activity,
                start,
                end,
            });
        } else {
            s.dropped_spans += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.counter("x", 1);
        rec.gauge("y", 2.0);
        rec.observe("z", 3.0);
        rec.span(Actor::Master, Activity::Algorithm, 0.0, 1.0);
    }

    #[test]
    fn in_memory_recorder_accumulates_everything() {
        let rec = InMemoryRecorder::new();
        rec.counter("engine.reissues", 2);
        rec.counter("engine.reissues", 3);
        rec.gauge("master.utilization", 0.5);
        rec.gauge("master.utilization", 0.9);
        rec.observe("engine.deadline_slack_seconds", 0.25);
        rec.span(Actor::Worker(1), Activity::Evaluation, 1.0, 1.5);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["engine.reissues"], 5);
        assert_eq!(snap.gauges["master.utilization"], 0.9);
        assert_eq!(snap.histograms["engine.deadline_slack_seconds"].count(), 1);
        // The span fed both the span list and the t_f histogram.
        assert_eq!(snap.histograms["t_f_seconds"].count(), 1);
        assert_eq!(rec.span_trace().spans().len(), 1);
    }

    #[test]
    fn span_limit_keeps_histograms_but_drops_spans() {
        let rec = InMemoryRecorder::metrics_only();
        for i in 0..10 {
            rec.span(Actor::Master, Activity::Algorithm, i as f64, i as f64 + 0.5);
        }
        assert_eq!(rec.span_trace().spans().len(), 0);
        assert_eq!(rec.dropped_spans(), 10);
        assert_eq!(rec.snapshot().histograms["t_a_seconds"].count(), 10);
    }

    #[test]
    fn snapshot_merge_adds_counters_merges_histograms_last_wins_gauges() {
        let a = InMemoryRecorder::new();
        a.counter("engine.reissues", 2);
        a.gauge("master.utilization", 0.5);
        a.observe("t_f_seconds", 1.0);

        let b = InMemoryRecorder::new();
        b.counter("engine.reissues", 3);
        b.counter("engine.evaluations", 7);
        b.gauge("master.utilization", 0.9);
        b.observe("t_f_seconds", 2.0);
        b.observe("t_a_seconds", 0.25);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["engine.reissues"], 5);
        assert_eq!(merged.counters["engine.evaluations"], 7);
        assert_eq!(merged.gauges["master.utilization"], 0.9);
        assert_eq!(merged.histograms["t_f_seconds"].count(), 2);
        assert_eq!(merged.histograms["t_f_seconds"].sum(), 3.0);
        assert_eq!(merged.histograms["t_a_seconds"].count(), 1);
    }

    #[test]
    fn index_ordered_merge_equals_shared_recorder_counters() {
        // The runner contract: per-job recorders merged in index order
        // carry the same counter totals as one shared recorder would.
        let shared = InMemoryRecorder::new();
        let mut merged = MetricsSnapshot::default();
        for job in 0..5u64 {
            let per_job = InMemoryRecorder::new();
            for rec in [&shared, &per_job] {
                rec.counter("engine.evaluations", job + 1);
                rec.observe("t_f_seconds", job as f64);
            }
            merged.merge(&per_job.snapshot());
        }
        let whole = shared.snapshot();
        assert_eq!(merged.counters, whole.counters);
        assert_eq!(
            merged.histograms["t_f_seconds"].count(),
            whole.histograms["t_f_seconds"].count()
        );
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = InMemoryRecorder::new();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..100 {
                        rec.counter("hits", 1);
                        rec.span(
                            Actor::Worker(w),
                            Activity::Evaluation,
                            i as f64,
                            i as f64 + 1.0,
                        );
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counters["hits"], 400);
        assert_eq!(rec.span_trace().spans().len(), 400);
    }
}
