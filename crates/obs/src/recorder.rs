//! The [`Recorder`] facade and its two sinks.
//!
//! Instrumented code (the protocol engine, all three executors) takes
//! `rec: &R` with `R: Recorder + ?Sized` and calls the facade
//! unconditionally; the sink decides what happens. [`NoopRecorder`]'s
//! methods are the trait's empty defaults, so with it the hooks
//! monomorphize to nothing — observation is free unless requested.
//! [`InMemoryRecorder`] is the concurrent collecting sink.
//!
//! The facade is deliberately *read-only with respect to the experiment*:
//! recorders receive values, never influence control flow, RNG draws or
//! event ordering — the determinism gate (`cargo xtask check
//! --determinism`) verifies a run with the in-memory sink attached is
//! bit-identical to one with the no-op sink.

use crate::hist::Histogram;
use crate::span::{Activity, Actor, Span, SpanTrace};
use std::collections::BTreeMap;

/// Which leg of a cross-process exchange a [`TraceEdge`] marks.
///
/// A completed evaluation produces the four-point NTP-style quad
/// `DispatchSent` (master) → `WorkReceived` (worker) → `ResultSent`
/// (worker) → `ResultReceived` (master); `ClockSample` carries a
/// heartbeat-RTT clock-offset estimate instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceEdgeKind {
    /// Master handed a `Work` frame to the wire.
    DispatchSent,
    /// Worker pulled the `Work` frame off the wire.
    WorkReceived,
    /// Worker handed the `Outcome` frame to the wire.
    ResultSent,
    /// Master pulled the `Outcome` frame off the wire.
    ResultReceived,
    /// A heartbeat round-trip: `local_t` is the measured RTT and
    /// `remote_t` the estimated master-minus-local clock offset.
    ClockSample,
}

impl TraceEdgeKind {
    /// Stable lowercase label used by the shard JSONL format.
    pub fn label(self) -> &'static str {
        match self {
            TraceEdgeKind::DispatchSent => "dispatch_sent",
            TraceEdgeKind::WorkReceived => "work_received",
            TraceEdgeKind::ResultSent => "result_sent",
            TraceEdgeKind::ResultReceived => "result_received",
            TraceEdgeKind::ClockSample => "clock_sample",
        }
    }

    /// Inverse of [`TraceEdgeKind::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "dispatch_sent" => TraceEdgeKind::DispatchSent,
            "work_received" => TraceEdgeKind::WorkReceived,
            "result_sent" => TraceEdgeKind::ResultSent,
            "result_received" => TraceEdgeKind::ResultReceived,
            "clock_sample" => TraceEdgeKind::ClockSample,
            _ => return None,
        })
    }
}

/// One timestamped point of a distributed trace, recorded on whichever
/// process observed it. The trace-merge step joins edges across process
/// shards on `(trace_id, eval_id, attempt)` to reconstruct the causal
/// span chain of every evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEdge {
    /// Which leg this edge marks.
    pub kind: TraceEdgeKind,
    /// Trace identity (the evaluation id for dispatch/result legs, a
    /// probe sequence number for clock samples).
    pub trace_id: u64,
    /// Evaluation id (`u64::MAX` for clock samples).
    pub eval_id: u64,
    /// Dispatch attempt (0 = first issue).
    pub attempt: u32,
    /// Worker slot involved (`u64::MAX` when unknown).
    pub worker: u64,
    /// Timestamp on the recording process's own clock, seconds.
    pub local_t: f64,
    /// The peer's clock reading carried in the frame (the `sent_at`
    /// field), or the offset estimate for [`TraceEdgeKind::ClockSample`].
    pub remote_t: f64,
}

/// The instrumentation facade: counters, gauges, histograms, spans.
///
/// All methods take `&self` so one recorder can be shared by a master
/// loop and its transports; every method has an empty default body.
pub trait Recorder {
    /// Whether this sink keeps anything (lets callers skip building
    /// expensive labels; the hooks themselves need no gating).
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records `value` into the named log-bucketed histogram.
    fn observe(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records one activity span. Implementations also feed the span's
    /// duration into the activity's histogram (see
    /// [`Activity::metric_name`]) so `T_F`/`T_C`/`T_A` distributions fall
    /// out of tracing for free.
    fn span(&self, actor: Actor, activity: Activity, start: f64, end: f64) {
        let _ = (actor, activity, start, end);
    }

    /// Records one distributed-trace edge (a cross-process send/receive
    /// point or a clock-offset sample). Like every facade hook this is
    /// observation only — sinks collect edges for the trace-merge step.
    fn trace_edge(&self, edge: TraceEdge) {
        let _ = edge;
    }

    /// Records one black-box flight event: `code` names what happened
    /// (an `evt.*`/`cmd.*` engine code or a `net.*` frame code), `t` is
    /// the recording process's clock, and `a`/`b`/`x` are code-specific
    /// payloads (typically eval id, worker slot, and a float detail).
    /// Default is a no-op; [`crate::flight::WithFlight`] routes it into a
    /// fixed-capacity ring for postmortem dumps.
    fn flight(&self, code: &'static str, t: f64, a: u64, b: u64, x: f64) {
        let _ = (code, t, a, b, x);
    }
}

/// The default sink: every hook is the trait's empty default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A point-in-time copy of an [`InMemoryRecorder`]'s metric state.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauges by name (last written value).
    pub gauges: BTreeMap<&'static str, f64>,
    /// Log-bucketed histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-wise, gauges are last-write-wins (`other` overwrites, since
    /// it is the later snapshot in merge order).
    ///
    /// This is how per-job recorders from `borg-runner` fan-ins become one
    /// deterministic snapshot: each parallel job records into its own
    /// [`InMemoryRecorder`], and the caller merges the snapshots **in job
    /// index order**. Because merge order is fixed, the merged snapshot —
    /// and every export derived from it — is bit-identical regardless of
    /// how many workers ran the jobs.
    /// Schema stability: every key present in *either* side survives the
    /// merge — zero-count histograms and gauges that were set and later
    /// reset to a neutral value are carried through rather than elided —
    /// so the merged JSONL line set is identical across `jobs=1` and
    /// `jobs=N` partitionings of the same work.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name, *value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name).or_default().merge(hist);
        }
    }

    /// The change from `prev` (an earlier snapshot of the same recorder)
    /// to `self`: counters subtract, histograms bucket-diff (see
    /// [`Histogram::diff`]), gauges report their current value.
    ///
    /// Every key of `self` is present in the delta even when nothing
    /// changed — the live metrics tap relies on a stable per-tick schema,
    /// so zero-delta counters and zero-count histograms are kept, not
    /// dropped.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, value) in &self.counters {
            let before = prev.counters.get(name).copied().unwrap_or(0);
            out.counters.insert(name, value.saturating_sub(before));
        }
        for (name, value) in &self.gauges {
            out.gauges.insert(name, *value);
        }
        for (name, hist) in &self.histograms {
            let before = prev.histograms.get(name);
            let diff = match before {
                Some(b) => hist.diff(b),
                None => hist.clone(),
            };
            out.histograms.insert(name, diff);
        }
        out
    }
}

#[derive(Debug, Default)]
struct Store {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: Vec<Span>,
    dropped_spans: u64,
    trace_edges: Vec<TraceEdge>,
}

/// The collecting sink: concurrent (`&self`, internally mutex-guarded)
/// and deterministic (pure accumulation, no clock or RNG access).
///
/// Zero-dependency by design, so the guard is `std::sync::Mutex` rather
/// than the workspace-standard `parking_lot` (poisoning is neutralised by
/// taking the data from a poisoned lock — all stored state is valid at
/// every instruction boundary).
pub struct InMemoryRecorder {
    // borg-lint: allow(BORG-L004)
    inner: std::sync::Mutex<Store>,
    span_limit: usize,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// A recorder keeping everything, including every span.
    pub fn new() -> Self {
        Self::with_span_limit(usize::MAX)
    }

    /// A recorder that keeps metrics (counters, gauges, histograms —
    /// including the per-activity duration histograms derived from spans)
    /// but stores no span list. Use for long sweeps where a full timeline
    /// would be unbounded memory.
    pub fn metrics_only() -> Self {
        Self::with_span_limit(0)
    }

    /// A recorder storing at most `limit` spans; further spans still feed
    /// the duration histograms and are counted as dropped.
    pub fn with_span_limit(limit: usize) -> Self {
        InMemoryRecorder {
            // borg-lint: allow(BORG-L004)
            inner: std::sync::Mutex::new(Store::default()),
            span_limit: limit,
        }
    }

    fn store(&self) -> std::sync::MutexGuard<'_, Store> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Copies out the current metric state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let s = self.store();
        MetricsSnapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s.histograms.clone(),
        }
    }

    /// Copies the stored spans into a renderable [`SpanTrace`].
    pub fn span_trace(&self) -> SpanTrace {
        SpanTrace::from_spans(self.store().spans.clone())
    }

    /// Moves the stored spans out (the recorder keeps collecting after).
    pub fn take_spans(&self) -> Vec<Span> {
        std::mem::take(&mut self.store().spans)
    }

    /// Spans discarded because of the span limit.
    pub fn dropped_spans(&self) -> u64 {
        self.store().dropped_spans
    }

    /// Copies out the distributed-trace edges recorded so far.
    pub fn trace_edges(&self) -> Vec<TraceEdge> {
        self.store().trace_edges.clone()
    }

    /// Moves the recorded trace edges out (collection continues after).
    pub fn take_trace_edges(&self) -> Vec<TraceEdge> {
        std::mem::take(&mut self.store().trace_edges)
    }
}

impl Recorder for InMemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        *self.store().counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.store().gauges.insert(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.store()
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    }

    fn span(&self, actor: Actor, activity: Activity, start: f64, end: f64) {
        debug_assert!(end >= start, "span ends before it starts");
        if end <= start {
            return; // zero-length spans carry no time; drop like SpanTrace
        }
        let mut s = self.store();
        s.histograms
            .entry(activity.metric_name())
            .or_default()
            .record(end - start);
        if s.spans.len() < self.span_limit {
            s.spans.push(Span {
                actor,
                activity,
                start,
                end,
            });
        } else {
            s.dropped_spans += 1;
        }
    }

    fn trace_edge(&self, edge: TraceEdge) {
        self.store().trace_edges.push(edge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.counter("x", 1);
        rec.gauge("y", 2.0);
        rec.observe("z", 3.0);
        rec.span(Actor::Master, Activity::Algorithm, 0.0, 1.0);
    }

    #[test]
    fn in_memory_recorder_accumulates_everything() {
        let rec = InMemoryRecorder::new();
        rec.counter("engine.reissues", 2);
        rec.counter("engine.reissues", 3);
        rec.gauge("master.utilization", 0.5);
        rec.gauge("master.utilization", 0.9);
        rec.observe("engine.deadline_slack_seconds", 0.25);
        rec.span(Actor::Worker(1), Activity::Evaluation, 1.0, 1.5);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["engine.reissues"], 5);
        assert_eq!(snap.gauges["master.utilization"], 0.9);
        assert_eq!(snap.histograms["engine.deadline_slack_seconds"].count(), 1);
        // The span fed both the span list and the t_f histogram.
        assert_eq!(snap.histograms["t_f_seconds"].count(), 1);
        assert_eq!(rec.span_trace().spans().len(), 1);
    }

    #[test]
    fn span_limit_keeps_histograms_but_drops_spans() {
        let rec = InMemoryRecorder::metrics_only();
        for i in 0..10 {
            rec.span(Actor::Master, Activity::Algorithm, i as f64, i as f64 + 0.5);
        }
        assert_eq!(rec.span_trace().spans().len(), 0);
        assert_eq!(rec.dropped_spans(), 10);
        assert_eq!(rec.snapshot().histograms["t_a_seconds"].count(), 10);
    }

    #[test]
    fn snapshot_merge_adds_counters_merges_histograms_last_wins_gauges() {
        let a = InMemoryRecorder::new();
        a.counter("engine.reissues", 2);
        a.gauge("master.utilization", 0.5);
        a.observe("t_f_seconds", 1.0);

        let b = InMemoryRecorder::new();
        b.counter("engine.reissues", 3);
        b.counter("engine.evaluations", 7);
        b.gauge("master.utilization", 0.9);
        b.observe("t_f_seconds", 2.0);
        b.observe("t_a_seconds", 0.25);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["engine.reissues"], 5);
        assert_eq!(merged.counters["engine.evaluations"], 7);
        assert_eq!(merged.gauges["master.utilization"], 0.9);
        assert_eq!(merged.histograms["t_f_seconds"].count(), 2);
        assert_eq!(merged.histograms["t_f_seconds"].sum(), 3.0);
        assert_eq!(merged.histograms["t_a_seconds"].count(), 1);
    }

    #[test]
    fn index_ordered_merge_equals_shared_recorder_counters() {
        // The runner contract: per-job recorders merged in index order
        // carry the same counter totals as one shared recorder would.
        let shared = InMemoryRecorder::new();
        let mut merged = MetricsSnapshot::default();
        for job in 0..5u64 {
            let per_job = InMemoryRecorder::new();
            for rec in [&shared, &per_job] {
                rec.counter("engine.evaluations", job + 1);
                rec.observe("t_f_seconds", job as f64);
            }
            merged.merge(&per_job.snapshot());
        }
        let whole = shared.snapshot();
        assert_eq!(merged.counters, whole.counters);
        assert_eq!(
            merged.histograms["t_f_seconds"].count(),
            whole.histograms["t_f_seconds"].count()
        );
    }

    #[test]
    fn merge_keeps_zero_count_histograms_and_reset_gauges() {
        // jobs=N regression: a job whose histogram ended up empty (e.g. a
        // replicate that observed nothing into it) and a gauge that was
        // set then reset to a neutral value must still appear in the
        // merged snapshot, or the per-replicate JSONL schema would differ
        // between jobs=1 and jobs=N.
        let mut empty_hist = MetricsSnapshot::default();
        empty_hist
            .histograms
            .insert("t_c_seconds", Histogram::new());
        empty_hist.gauges.insert("engine.outstanding", 0.0);

        let mut merged = MetricsSnapshot::default();
        merged.merge(&empty_hist);
        assert!(merged.histograms.contains_key("t_c_seconds"));
        assert_eq!(merged.histograms["t_c_seconds"].count(), 0);
        assert_eq!(merged.gauges["engine.outstanding"], 0.0);

        // And a later shard with data folds into the placeholder.
        let b = InMemoryRecorder::new();
        b.observe("t_c_seconds", 0.5);
        merged.merge(&b.snapshot());
        assert_eq!(merged.histograms["t_c_seconds"].count(), 1);
    }

    #[test]
    fn merge_order_only_affects_gauges_not_schema() {
        // Merge-ordering regression: the key *set* (the JSONL schema) is
        // order-independent; only gauge values follow merge order
        // (last-write-wins by contract).
        let a = InMemoryRecorder::new();
        a.counter("engine.evaluations", 1);
        a.gauge("engine.outstanding", 3.0);
        a.observe("t_f_seconds", 1.0);
        let b = InMemoryRecorder::new();
        b.counter("engine.reissues", 1);
        b.gauge("engine.outstanding", 0.0);
        b.observe("t_c_seconds", 0.1);

        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());

        assert_eq!(
            ab.counters.keys().collect::<Vec<_>>(),
            ba.counters.keys().collect::<Vec<_>>()
        );
        assert_eq!(
            ab.gauges.keys().collect::<Vec<_>>(),
            ba.gauges.keys().collect::<Vec<_>>()
        );
        assert_eq!(
            ab.histograms.keys().collect::<Vec<_>>(),
            ba.histograms.keys().collect::<Vec<_>>()
        );
        assert_eq!(ab.counters, ba.counters);
        // Gauge values differ by order — by contract, not by accident.
        assert_eq!(ab.gauges["engine.outstanding"], 0.0);
        assert_eq!(ba.gauges["engine.outstanding"], 3.0);
    }

    #[test]
    fn delta_since_keeps_stable_schema() {
        let rec = InMemoryRecorder::new();
        rec.counter("net.frames_sent", 5);
        rec.gauge("engine.outstanding", 2.0);
        rec.observe("t_f_seconds", 1.0);
        let first = rec.snapshot();

        // Nothing new for t_f; a new counter appears.
        rec.counter("net.frames_sent", 3);
        let second = rec.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.counters["net.frames_sent"], 3);
        assert_eq!(delta.histograms["t_f_seconds"].count(), 0);
        assert!(delta.gauges.contains_key("engine.outstanding"));
        // Same keys as the full snapshot — the tap's schema guarantee.
        assert_eq!(
            delta.counters.keys().collect::<Vec<_>>(),
            second.counters.keys().collect::<Vec<_>>()
        );
        assert_eq!(
            delta.histograms.keys().collect::<Vec<_>>(),
            second.histograms.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn trace_edges_accumulate_and_drain() {
        let rec = InMemoryRecorder::new();
        rec.trace_edge(TraceEdge {
            kind: TraceEdgeKind::DispatchSent,
            trace_id: 7,
            eval_id: 7,
            attempt: 0,
            worker: 1,
            local_t: 0.5,
            remote_t: 0.0,
        });
        assert_eq!(rec.trace_edges().len(), 1);
        let drained = rec.take_trace_edges();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].kind, TraceEdgeKind::DispatchSent);
        assert!(rec.trace_edges().is_empty());
        // The noop sink ignores edges and flight events silently.
        NoopRecorder.trace_edge(drained[0]);
        NoopRecorder.flight("evt.result_arrived", 1.0, 7, 1, 0.0);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = InMemoryRecorder::new();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..100 {
                        rec.counter("hits", 1);
                        rec.span(
                            Actor::Worker(w),
                            Activity::Evaluation,
                            i as f64,
                            i as f64 + 1.0,
                        );
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counters["hits"], 400);
        assert_eq!(rec.span_trace().spans().len(), 400);
    }
}
