//! Renderers: Chrome-trace JSON timelines and JSONL metrics dumps.
//!
//! Both are hand-rolled (the workspace has no serde) and deterministic:
//! identical inputs produce byte-identical output, which the golden
//! Chrome-trace test relies on.
//!
//! * [`chrome_trace_json`] emits the Trace Event Format understood by
//!   `chrome://tracing` and <https://ui.perfetto.dev>: one process per
//!   executor path, one thread per actor (master = tid 0, worker *i* =
//!   tid *i* + 1), complete (`"ph":"X"`) events with microsecond
//!   timestamps.
//! * [`metrics_jsonl`] emits one JSON object per line per metric, with
//!   caller-supplied labels (e.g. a Table II cell's problem/`P`/`T_F`).

use crate::hist::Histogram;
use crate::recorder::MetricsSnapshot;
use crate::span::{Actor, SpanTrace};

/// One executor path's worth of spans in a combined Chrome trace.
pub struct TraceGroup {
    /// Process name shown in the timeline UI (e.g. `virtual-async`).
    pub name: String,
    /// The spans of that run.
    pub trace: SpanTrace,
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (round-trip precision; non-finite
/// values become `null`, which Perfetto and jq both tolerate).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn tid(actor: Actor) -> usize {
    match actor {
        Actor::Master => 0,
        Actor::Worker(i) => i + 1,
    }
}

/// Renders one or more span traces as a Chrome Trace Event Format JSON
/// document. Group `g` becomes pid `g + 1`; within it the master is tid 0
/// and worker `i` is tid `i + 1`. Timestamps are microseconds from each
/// run's own t = 0.
pub fn chrome_trace_json(groups: &[TraceGroup]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (g, group) in groups.iter().enumerate() {
        let pid = g + 1;
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&group.name)
        ));
        let mut actors: Vec<Actor> = group.trace.spans().iter().map(|s| s.actor).collect();
        actors.sort();
        actors.dedup();
        for actor in actors {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
                 \"args\":{{\"name\":\"{actor}\"}}}}",
                tid(actor)
            ));
        }
        for s in group.trace.spans() {
            events.push(format!(
                "{{\"name\":\"{act}\",\"cat\":\"{act}\",\"ph\":\"X\",\
                 \"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid}}}",
                act = s.activity.trace_name(),
                ts = s.start * 1e6,
                dur = (s.end - s.start) * 1e6,
                tid = tid(s.actor),
            ));
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

fn labels_json(labels: &[(&str, String)]) -> String {
    let fields: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn histogram_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .buckets()
        .map(|(lo, hi, n)| format!("[{},{},{n}]", json_f64(lo), json_f64(hi)))
        .collect();
    format!(
        "\"count\":{},\"nonpositive\":{},\"sum\":{},\"min\":{},\"max\":{},\
         \"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]",
        h.count(),
        h.nonpositive(),
        json_f64(h.sum()),
        json_f64(h.min()),
        json_f64(h.max()),
        json_f64(h.mean()),
        json_f64(h.quantile(0.5)),
        json_f64(h.quantile(0.9)),
        json_f64(h.quantile(0.99)),
        buckets.join(",")
    )
}

/// Renders a metrics snapshot as JSON Lines: one object per metric, each
/// carrying the caller's labels. Counters first, then gauges, then
/// histograms, each alphabetical — deterministic for goldens and diffs.
pub fn metrics_jsonl(labels: &[(&str, String)], snap: &MetricsSnapshot) -> String {
    let labels = labels_json(labels);
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"labels\":{labels},\"value\":{value}}}\n",
            json_escape(name)
        ));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"labels\":{labels},\"value\":{}}}\n",
            json_escape(name),
            json_f64(*value)
        ));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"labels\":{labels},{}}}\n",
            json_escape(name),
            histogram_json(h)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{InMemoryRecorder, Recorder};
    use crate::span::Activity;

    fn sample_trace() -> SpanTrace {
        let mut t = SpanTrace::new();
        t.record(Actor::Master, Activity::Algorithm, 0.0, 0.001);
        t.record(Actor::Master, Activity::Communication, 0.001, 0.0015);
        t.record(Actor::Worker(0), Activity::Evaluation, 0.0015, 0.01);
        t
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let json = chrome_trace_json(&[TraceGroup {
            name: "virtual-async".into(),
            trace: sample_trace(),
        }]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("{\"name\":\"virtual-async\"}"));
        assert!(json.contains("{\"name\":\"master\"}"));
        assert!(json.contains("{\"name\":\"worker0\"}"));
        // The worker evaluation: starts at 1500 µs, lasts 8500 µs, tid 1.
        assert!(json.contains(
            "{\"name\":\"evaluation\",\"cat\":\"evaluation\",\"ph\":\"X\",\
             \"ts\":1500.000,\"dur\":8500.000,\"pid\":1,\"tid\":1}"
        ));
    }

    #[test]
    fn chrome_trace_assigns_one_pid_per_group() {
        let json = chrome_trace_json(&[
            TraceGroup {
                name: "a".into(),
                trace: sample_trace(),
            },
            TraceGroup {
                name: "b".into(),
                trace: sample_trace(),
            },
        ]);
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
    }

    #[test]
    fn metrics_jsonl_lines_parse_shape() {
        let rec = InMemoryRecorder::new();
        rec.counter("engine.reissues", 3);
        rec.gauge("master.utilization", 0.75);
        rec.span(Actor::Worker(0), Activity::Evaluation, 0.0, 0.002);
        let out = metrics_jsonl(
            &[("problem", "DTLZ2".to_string()), ("P", "8".to_string())],
            &rec.snapshot(),
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"labels\":{\"problem\":\"DTLZ2\",\"P\":\"8\"}"));
        }
        assert!(lines[0].contains("\"type\":\"counter\""));
        assert!(lines[0].contains("\"value\":3"));
        assert!(lines[1].contains("\"type\":\"gauge\""));
        assert!(lines[2].contains("\"type\":\"histogram\""));
        assert!(lines[2].contains("\"name\":\"t_f_seconds\""));
        assert!(lines[2].contains("\"count\":1"));
        assert!(lines[2].contains("\"buckets\":[["));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.001), "0.001");
    }
}
