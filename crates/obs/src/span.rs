//! Activity-span vocabulary for timeline diagrams (Figures 1 and 2).
//!
//! The paper's Figures 1–2 are Gantt-style timelines of the master and
//! worker nodes showing communication (`T_C`), algorithm (`T_A`),
//! evaluation (`T_F`) and idle periods. Executors emit [`Span`]s through a
//! [`crate::Recorder`]; the experiment harness renders a collected
//! [`SpanTrace`] as CSV, as an ASCII Gantt chart, or as Chrome-trace JSON
//! via [`crate::export`].
//!
//! Times are plain `f64` seconds — virtual (DES / virtual-time executors)
//! or wall-clock (real threads); the vocabulary does not care which.

/// Who performed an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Actor {
    /// The master node.
    Master,
    /// Worker node `i` (0-based).
    Worker(usize),
}

impl std::fmt::Display for Actor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Actor::Master => write!(f, "master"),
            Actor::Worker(i) => write!(f, "worker{i}"),
        }
    }
}

/// What kind of work a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Message transfer (`T_C`).
    Communication,
    /// Master-side algorithm work (`T_A`).
    Algorithm,
    /// Objective function evaluation (`T_F`).
    Evaluation,
    /// Waiting (explicit idle spans are optional; gaps read as idle too).
    Idle,
}

impl Activity {
    /// One-character glyph for the ASCII Gantt rendering.
    pub fn glyph(self) -> char {
        match self {
            Activity::Communication => 'C',
            Activity::Algorithm => 'A',
            Activity::Evaluation => 'F',
            Activity::Idle => '.',
        }
    }

    /// The empirical-distribution histogram this activity's durations feed
    /// (the paper's `T_C` / `T_A` / `T_F` plus explicit idle time).
    pub fn metric_name(self) -> &'static str {
        match self {
            Activity::Communication => "t_c_seconds",
            Activity::Algorithm => "t_a_seconds",
            Activity::Evaluation => "t_f_seconds",
            Activity::Idle => "idle_seconds",
        }
    }

    /// Lowercase label used for Chrome-trace event names/categories.
    pub fn trace_name(self) -> &'static str {
        match self {
            Activity::Communication => "communication",
            Activity::Algorithm => "algorithm",
            Activity::Evaluation => "evaluation",
            Activity::Idle => "idle",
        }
    }
}

/// One contiguous activity of one actor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Performing actor.
    pub actor: Actor,
    /// Activity kind.
    pub activity: Activity,
    /// Start time (inclusive), seconds.
    pub start: f64,
    /// End time (exclusive), seconds.
    pub end: f64,
}

/// A recorded collection of spans.
#[derive(Debug, Clone, Default)]
pub struct SpanTrace {
    spans: Vec<Span>,
    enabled: bool,
}

impl SpanTrace {
    /// Creates an enabled trace.
    pub fn new() -> Self {
        Self {
            spans: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace (recording is a no-op; prefer passing
    /// [`crate::NoopRecorder`] to executors instead).
    pub fn disabled() -> Self {
        Self {
            spans: Vec::new(),
            enabled: false,
        }
    }

    /// An enabled trace over pre-collected spans (e.g. drained from an
    /// [`crate::InMemoryRecorder`]).
    pub fn from_spans(spans: Vec<Span>) -> Self {
        Self {
            spans,
            enabled: true,
        }
    }

    /// Records a span (no-op when disabled; zero-length spans are dropped).
    pub fn record(&mut self, actor: Actor, activity: Activity, start: f64, end: f64) {
        debug_assert!(end >= start, "span ends before it starts");
        if self.enabled && end > start {
            self.spans.push(Span {
                actor,
                activity,
                start,
                end,
            });
        }
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// End time of the latest span (0 when empty).
    pub fn horizon(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Renders the trace as CSV (`actor,activity,start,end`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("actor,activity,start,end\n");
        for s in &self.spans {
            out.push_str(&format!(
                "{},{:?},{:.9},{:.9}\n",
                s.actor, s.activity, s.start, s.end
            ));
        }
        out
    }

    /// Renders an ASCII Gantt chart with `width` time columns, one row per
    /// actor (masters first). Glyphs: `C` communication, `A` algorithm,
    /// `F` evaluation, `.` idle.
    pub fn to_ascii(&self, width: usize) -> String {
        assert!(width >= 2);
        let horizon = self.horizon();
        if horizon <= 0.0 {
            return String::new();
        }
        let mut actors: Vec<Actor> = self.spans.iter().map(|s| s.actor).collect();
        actors.sort();
        actors.dedup();
        let label_w = actors
            .iter()
            .map(|a| a.to_string().len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for actor in actors {
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.actor == actor) {
                let a = ((s.start / horizon) * width as f64).floor() as usize;
                let b = (((s.end / horizon) * width as f64).ceil() as usize).min(width);
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    *c = s.activity.glyph();
                }
            }
            out.push_str(&format!(
                "{:<label_w$} |{}|\n",
                actor.to_string(),
                row.into_iter().collect::<String>()
            ));
        }
        out
    }
}

/// Per-actor open/close span stacks for instrumenting code that does not
/// know span end times up front. `open` pushes a frame; `close` pops the
/// innermost frame and emits it to a [`crate::Recorder`]. Frames close
/// LIFO per actor, so emitted spans are always well-nested: two spans of
/// one actor are either disjoint or one contains the other.
#[derive(Debug, Default)]
pub struct SpanTracker {
    stacks: std::collections::BTreeMap<Actor, Vec<(Activity, f64)>>,
}

impl SpanTracker {
    /// A tracker with no open frames.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a frame for `actor` at time `at`.
    pub fn open(&mut self, actor: Actor, activity: Activity, at: f64) {
        self.stacks.entry(actor).or_default().push((activity, at));
    }

    /// Closes `actor`'s innermost frame at time `at`, emitting the span to
    /// `rec`; returns the span, or `None` when no frame is open. A close
    /// time earlier than the open time is clamped to the open time.
    pub fn close<R: crate::Recorder + ?Sized>(
        &mut self,
        actor: Actor,
        at: f64,
        rec: &R,
    ) -> Option<Span> {
        let (activity, start) = self.stacks.get_mut(&actor)?.pop()?;
        let end = at.max(start);
        rec.span(actor, activity, start, end);
        Some(Span {
            actor,
            activity,
            start,
            end,
        })
    }

    /// Closes every open frame of every actor at time `at`, innermost
    /// first, emitting each to `rec`.
    pub fn close_all<R: crate::Recorder + ?Sized>(&mut self, at: f64, rec: &R) {
        let actors: Vec<Actor> = self.stacks.keys().copied().collect();
        for actor in actors {
            while self.close(actor, at, rec).is_some() {}
        }
    }

    /// Open-frame depth for `actor`.
    pub fn depth(&self, actor: Actor) -> usize {
        self.stacks.get(&actor).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_horizon() {
        let mut t = SpanTrace::new();
        t.record(Actor::Master, Activity::Algorithm, 0.0, 1.0);
        t.record(Actor::Worker(0), Activity::Evaluation, 1.0, 4.0);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.horizon(), 4.0);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = SpanTrace::disabled();
        t.record(Actor::Master, Activity::Algorithm, 0.0, 1.0);
        assert!(t.spans().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn zero_length_spans_dropped() {
        let mut t = SpanTrace::new();
        t.record(Actor::Master, Activity::Communication, 1.0, 1.0);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = SpanTrace::new();
        t.record(Actor::Worker(3), Activity::Evaluation, 0.5, 2.5);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "actor,activity,start,end");
        assert!(lines[1].starts_with("worker3,Evaluation,0.5"));
    }

    #[test]
    fn ascii_chart_shows_glyphs_per_actor() {
        let mut t = SpanTrace::new();
        t.record(Actor::Master, Activity::Algorithm, 0.0, 5.0);
        t.record(Actor::Master, Activity::Communication, 5.0, 10.0);
        t.record(Actor::Worker(0), Activity::Evaluation, 0.0, 10.0);
        let chart = t.to_ascii(10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("master"));
        assert!(lines[0].contains('A') && lines[0].contains('C'));
        assert!(lines[1].contains("worker0"));
        assert!(lines[1].matches('F').count() == 10);
    }

    #[test]
    fn actors_sort_master_first() {
        let mut t = SpanTrace::new();
        t.record(Actor::Worker(1), Activity::Evaluation, 0.0, 1.0);
        t.record(Actor::Master, Activity::Algorithm, 0.0, 1.0);
        t.record(Actor::Worker(0), Activity::Evaluation, 0.0, 1.0);
        let chart = t.to_ascii(4);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].starts_with("master"));
        assert!(lines[1].starts_with("worker0"));
        assert!(lines[2].starts_with("worker1"));
    }

    #[test]
    fn tracker_closes_lifo_and_clamps() {
        let rec = crate::InMemoryRecorder::new();
        let mut tk = SpanTracker::new();
        tk.open(Actor::Master, Activity::Algorithm, 0.0);
        tk.open(Actor::Master, Activity::Communication, 1.0);
        let inner = tk.close(Actor::Master, 2.0, &rec).unwrap();
        assert_eq!(inner.activity, Activity::Communication);
        // Closing before the open time clamps instead of going negative.
        let outer = tk.close(Actor::Master, -1.0, &rec).unwrap();
        assert_eq!(outer.activity, Activity::Algorithm);
        assert_eq!(outer.end, outer.start);
        assert!(tk.close(Actor::Master, 3.0, &rec).is_none());
        assert_eq!(rec.span_trace().spans().len(), 1); // zero-length dropped
    }
}
