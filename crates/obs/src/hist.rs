//! Log-bucketed histograms for timing distributions.
//!
//! The paper characterises `T_F`, `T_C` and `T_A` by their *distributions*
//! (Table I fits, Eq. 2/3 expectations), so point summaries are not
//! enough. [`Histogram`] buckets positive values logarithmically — four
//! sub-buckets per power of two, derived from the IEEE-754 exponent and
//! top mantissa bits with pure integer arithmetic — giving ~9% relative
//! bucket width over the full f64 range with no float `log` calls, exact
//! determinism, and lossless [`Histogram::merge`].

use std::collections::BTreeMap;

/// Sub-buckets per octave (power of two), from the top 2 mantissa bits.
const SUBBUCKETS: u16 = 4;

/// A log-bucketed histogram of (mostly positive) f64 samples.
///
/// Non-positive and non-finite samples are counted in a dedicated
/// `nonpositive` bucket rather than dropped, so `count()` is always the
/// number of observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: BTreeMap<u16, u64>,
    nonpositive: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: BTreeMap::new(),
            nonpositive: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket key of a positive finite value: biased exponent plus the top
    /// two mantissa bits. Monotone in the value, so bucket order is value
    /// order. Subnormals share the bottom octave (fine for durations).
    fn key(value: f64) -> u16 {
        let bits = value.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as u16;
        let sub = ((bits >> 50) & 0x3) as u16;
        exp * SUBBUCKETS + sub
    }

    /// Inclusive lower bound of the bucket with the given key.
    pub fn bucket_lower(key: u16) -> f64 {
        let exp = i32::from(key / SUBBUCKETS) - 1023;
        let sub = f64::from(key % SUBBUCKETS);
        (1.0 + sub / f64::from(SUBBUCKETS)) * (2.0f64).powi(exp)
    }

    /// Exclusive upper bound of the bucket with the given key.
    pub fn bucket_upper(key: u16) -> f64 {
        Self::bucket_lower(key + 1)
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        if value > 0.0 && value.is_finite() {
            *self.buckets.entry(Self::key(value)).or_insert(0) += 1;
        } else {
            self.nonpositive += 1;
        }
    }

    /// Folds another histogram into this one. Lossless: bucket counts add,
    /// so merging per-shard histograms equals one histogram of the
    /// concatenated samples.
    pub fn merge(&mut self, other: &Histogram) {
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
        self.nonpositive += other.nonpositive;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations (including non-positive ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Smallest finite observation (`+inf` when none).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest finite observation (`-inf` when none).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Observations that were zero, negative or non-finite.
    pub fn nonpositive(&self) -> u64 {
        self.nonpositive
    }

    /// Occupied buckets as `(lower, upper, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|(&k, &n)| (Self::bucket_lower(k), Self::bucket_upper(k), n))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) computed exactly from the bucket
    /// counts: the bucket containing the target rank is located by an
    /// exact integer walk, and the returned bound is clamped into the
    /// observed `[min, max]` range, so single-valued histograms and the
    /// extreme quantiles are exact rather than bucket-rounded. Returns
    /// `0.0` if the quantile falls among non-positive samples and `NaN`
    /// when empty. Interior error stays bounded by the ~9% relative
    /// bucket width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.nonpositive;
        if seen >= target {
            return 0.0;
        }
        for (&k, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                // The rank is in this bucket. The bucket's upper bound can
                // overshoot the largest sample actually recorded (and its
                // lower bound can undershoot the smallest), so clamp into
                // the exact observed range; when the target rank is the
                // last observation overall, the answer is exactly `max`.
                if seen == self.count {
                    return self.max;
                }
                return Self::bucket_upper(k).min(self.max).max(self.min.max(0.0));
            }
        }
        self.max
    }

    /// The histogram of observations recorded since `prev` was a snapshot
    /// of this histogram (counts and sums subtract; `prev` must be an
    /// earlier state of `self`, as enforced by saturating arithmetic).
    ///
    /// `min`/`max` stay *cumulative* — a log-bucketed histogram cannot
    /// recover the extrema of just the new samples — which the live
    /// metrics tap documents on its wire format.
    pub fn diff(&self, prev: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (&k, &n) in &self.buckets {
            let before = prev.buckets.get(&k).copied().unwrap_or(0);
            let delta = n.saturating_sub(before);
            if delta > 0 {
                out.buckets.insert(k, delta);
            }
        }
        out.nonpositive = self.nonpositive.saturating_sub(prev.nonpositive);
        out.count = self.count.saturating_sub(prev.count);
        out.sum = self.sum - prev.sum;
        out.min = self.min;
        out.max = self.max;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Exactly 1.0 starts the sub-bucket [1.0, 1.25).
        let k = Histogram::key(1.0);
        assert_eq!(Histogram::bucket_lower(k), 1.0);
        assert_eq!(Histogram::bucket_upper(k), 1.25);
        // A value epsilon below a sub-bucket boundary stays below it.
        let below = f64::from_bits(1.25f64.to_bits() - 1);
        assert_eq!(Histogram::key(below), k);
        assert_eq!(Histogram::key(1.25), k + 1);
        // Octave boundary: 2.0 rolls into the next exponent's first bucket.
        let k2 = Histogram::key(2.0);
        assert_eq!(k2, k + SUBBUCKETS);
        assert_eq!(Histogram::bucket_lower(k2), 2.0);
        // The last sub-bucket of an octave ends exactly at the next octave.
        assert_eq!(Histogram::bucket_upper(k2 - 1), 2.0);
        // Tiny durations (microseconds) bucket consistently too.
        let k_us = Histogram::key(6e-6);
        assert!(Histogram::bucket_lower(k_us) <= 6e-6);
        assert!(6e-6 < Histogram::bucket_upper(k_us));
    }

    #[test]
    fn bucket_keys_are_monotone_in_value() {
        let values = [1e-9, 3e-6, 0.001, 0.0011, 0.5, 1.0, 1.2, 7.0, 1e9];
        for pair in values.windows(2) {
            assert!(Histogram::key(pair[0]) <= Histogram::key(pair[1]));
        }
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let mut h = Histogram::new();
        for v in [0.5, 2.0, 0.0, -1.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.nonpositive(), 2);
        assert_eq!(h.sum(), 1.5);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 2.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs = [0.001, 0.004, 0.002, 7.5, 0.0];
        let ys = [0.003, 120.0, 1e-7, 0.001];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for &v in &xs {
            a.record(v);
            all.record(v);
        }
        for &v in &ys {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantile_walks_buckets() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(0.001);
        }
        for _ in 0..10 {
            h.record(1.0);
        }
        // p50 lands in the 0.001 bucket, p99 in the 1.0 bucket.
        assert!(h.quantile(0.5) < 0.0015);
        assert!(h.quantile(0.99) >= 1.0);
        assert!(Histogram::new().quantile(0.5).is_nan());
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        // A single-valued histogram reports that value exactly at every
        // quantile, not its bucket's upper bound.
        let mut h = Histogram::new();
        h.record(3.7);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.7);
        }
        // Two values: the top quantile is exactly the max, the bottom is
        // never below the min.
        let mut h = Histogram::new();
        h.record(0.001);
        h.record(7.25);
        assert_eq!(h.quantile(1.0), 7.25);
        assert_eq!(h.quantile(0.99), 7.25);
        assert!(h.quantile(0.25) >= 0.001);
        assert!(h.quantile(0.25) < 0.0015);
    }

    #[test]
    fn diff_subtracts_counts_and_keeps_cumulative_extrema() {
        let mut h = Histogram::new();
        h.record(0.001);
        h.record(2.0);
        let before = h.clone();
        h.record(4.0);
        h.record(0.001);
        h.record(-1.0);
        let d = h.diff(&before);
        assert_eq!(d.count(), 3);
        assert_eq!(d.nonpositive(), 1);
        assert!((d.sum() - (4.0 + 0.001 + -1.0)).abs() < 1e-12);
        // Extrema are cumulative (documented tap semantics).
        assert_eq!(d.min(), -1.0);
        assert_eq!(d.max(), 4.0);
        let occupied: Vec<(f64, f64, u64)> = d.buckets().collect();
        assert_eq!(occupied.iter().map(|&(_, _, n)| n).sum::<u64>(), 2);
        // Diff against itself is empty.
        let z = h.diff(&h.clone());
        assert_eq!(z.count(), 0);
        assert_eq!(z.sum(), 0.0);
    }
}
