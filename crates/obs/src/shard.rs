//! Per-process trace shards and the deterministic cross-process merge.
//!
//! Since the deployment spans processes, no single recorder sees both
//! sides of a dispatch/result exchange — the `T_C` term of the paper's
//! `P_UB = T_F/(2·T_C + T_A)` frontier is exactly the part one process
//! cannot observe end-to-end. Each process therefore dumps the
//! [`TraceEdge`]s it *did* observe as a [`TraceShard`] (deterministic
//! JSONL), and [`merge_shards`] joins them on `(eval_id, attempt)` into
//! per-evaluation causal chains:
//!
//! ```text
//! master dispatch ──t_c_out──▶ worker evaluate ──t_c_back──▶ master consume
//!      [t0 ............ t1]        [t1 .. t2]       [t2 ............ t3]
//! ```
//!
//! Worker clocks are aligned onto the master clock before the join. The
//! offset per worker comes from heartbeat RTT samples
//! ([`TraceEdgeKind::ClockSample`], midpoint estimator) when available,
//! falling back to the NTP-style estimate from each complete quad
//! `((t1−t0)+(t2−t3))/2`; the median over samples is used, making the
//! alignment robust to asymmetric outliers and — because the median of a
//! fixed sample list is deterministic — keeping the merged trace
//! byte-reproducible.

use crate::export::{json_escape, json_f64};
use crate::recorder::{TraceEdge, TraceEdgeKind};
use std::collections::BTreeMap;

/// Shard format version tag (the JSONL header's `shard` field).
pub const SHARD_SCHEMA: &str = "borg-trace-shard/v1";

/// The trace edges one process observed, plus its identity.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceShard {
    /// Display name (`master`, `worker0`, …).
    pub process: String,
    /// Worker slot, or `None` for the master shard.
    pub worker: Option<u64>,
    /// Observed edges, in any order (serialisation sorts them).
    pub edges: Vec<TraceEdge>,
}

/// Deterministic edge sort key: joins group before time so the shard
/// reads chronologically *per evaluation*.
fn edge_key(e: &TraceEdge) -> (u64, u32, u8, u64, u64) {
    let kind_rank = match e.kind {
        TraceEdgeKind::DispatchSent => 0,
        TraceEdgeKind::WorkReceived => 1,
        TraceEdgeKind::ResultSent => 2,
        TraceEdgeKind::ResultReceived => 3,
        TraceEdgeKind::ClockSample => 4,
    };
    (
        e.eval_id,
        e.attempt,
        kind_rank,
        e.trace_id,
        e.local_t.to_bits(),
    )
}

impl TraceShard {
    /// A shard over pre-collected edges.
    pub fn new(process: impl Into<String>, worker: Option<u64>, edges: Vec<TraceEdge>) -> Self {
        TraceShard {
            process: process.into(),
            worker,
            edges,
        }
    }

    /// Serialises the shard as JSONL: one header line, then one line per
    /// edge in a canonical order. Byte-deterministic for equal contents.
    pub fn to_jsonl(&self) -> String {
        let mut edges = self.edges.clone();
        edges.sort_by_key(edge_key);
        let worker = match self.worker {
            Some(w) => w.to_string(),
            None => "null".to_string(),
        };
        let mut out = format!(
            "{{\"shard\":\"{SHARD_SCHEMA}\",\"process\":\"{}\",\"worker\":{worker},\"edges\":{}}}\n",
            json_escape(&self.process),
            edges.len()
        );
        for e in &edges {
            out.push_str(&format!(
                "{{\"edge\":\"{}\",\"trace\":{},\"eval\":{},\"attempt\":{},\"worker\":{},\
                 \"local_t\":{},\"remote_t\":{}}}\n",
                e.kind.label(),
                e.trace_id,
                e.eval_id,
                e.attempt,
                e.worker,
                json_f64(e.local_t),
                json_f64(e.remote_t)
            ));
        }
        out
    }

    /// Parses a shard back from its JSONL form.
    pub fn from_jsonl(text: &str) -> Result<TraceShard, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty shard file")?;
        if field_str(header, "shard") != Some(SHARD_SCHEMA) {
            return Err(format!("not a {SHARD_SCHEMA} header: {header}"));
        }
        let process = field_str(header, "process")
            .ok_or_else(|| format!("shard header missing process: {header}"))?
            .to_string();
        let worker = match field_raw(header, "worker") {
            Some("null") | None => None,
            Some(raw) => Some(
                raw.parse::<u64>()
                    .map_err(|e| format!("bad shard worker field `{raw}`: {e}"))?,
            ),
        };
        let mut edges = Vec::new();
        for (n, line) in lines.enumerate() {
            let parsed = (|| {
                Some(TraceEdge {
                    kind: TraceEdgeKind::from_label(field_str(line, "edge")?)?,
                    trace_id: field_u64(line, "trace")?,
                    eval_id: field_u64(line, "eval")?,
                    attempt: field_u64(line, "attempt")? as u32,
                    worker: field_u64(line, "worker")?,
                    local_t: field_f64(line, "local_t")?,
                    remote_t: field_f64(line, "remote_t")?,
                })
            })();
            match parsed {
                Some(e) => edges.push(e),
                None => return Err(format!("malformed shard edge line {}: {line}", n + 2)),
            }
        }
        Ok(TraceShard {
            process,
            worker,
            edges,
        })
    }
}

fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = field_raw(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    field_raw(line, key)?.parse().ok()
}

/// One reconstructed per-evaluation causal chain, on the master clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalChain {
    /// Evaluation id.
    pub eval_id: u64,
    /// Dispatch attempt that completed.
    pub attempt: u32,
    /// Worker slot that evaluated it.
    pub worker: u64,
    /// Master handed the dispatch to the wire.
    pub t0: f64,
    /// Worker received it (aligned to the master clock).
    pub t1: f64,
    /// Worker sent the result (aligned to the master clock).
    pub t2: f64,
    /// Master consumed the result.
    pub t3: f64,
}

impl EvalChain {
    /// Outbound communication time `t1 − t0`.
    pub fn t_c_out(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Evaluation time `t2 − t1` (offset-invariant: both endpoints moved
    /// by the same alignment).
    pub fn t_f(&self) -> f64 {
        self.t2 - self.t1
    }

    /// Return communication time `t3 − t2`.
    pub fn t_c_back(&self) -> f64 {
        self.t3 - self.t2
    }
}

/// The result of merging all process shards of one run.
#[derive(Debug, Clone, Default)]
pub struct MergedTrace {
    /// Complete chains (all four legs present), sorted by
    /// `(eval_id, attempt)`.
    pub chains: Vec<EvalChain>,
    /// Master-minus-worker clock offset applied per worker shard.
    pub offsets: BTreeMap<u64, f64>,
    /// Heartbeat clock samples that fed each worker's offset.
    pub clock_samples: BTreeMap<u64, usize>,
    /// `(eval, attempt)` groups that were missing at least one leg
    /// (lost to a fault, a kill, or a shard that never flushed).
    pub incomplete: usize,
}

/// Deterministic median of a non-empty sample list (upper median).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

#[derive(Default, Clone, Copy)]
struct Quad {
    t0: Option<f64>,
    t1: Option<f64>,
    t2: Option<f64>,
    t3: Option<f64>,
    worker: u64,
}

/// Joins per-process shards into one causally-linked trace.
///
/// Exactly one shard must have `worker: None` (the master). Worker
/// shards are clock-aligned onto the master, then every `(eval_id,
/// attempt)` group with all four legs becomes an [`EvalChain`].
pub fn merge_shards(shards: &[TraceShard]) -> Result<MergedTrace, String> {
    let masters: Vec<&TraceShard> = shards.iter().filter(|s| s.worker.is_none()).collect();
    if masters.len() != 1 {
        return Err(format!(
            "expected exactly one master shard (worker:null), found {}",
            masters.len()
        ));
    }
    let master = masters[0];

    // Group master-side legs by (eval, attempt).
    let mut quads: BTreeMap<(u64, u32), Quad> = BTreeMap::new();
    for e in &master.edges {
        let q = quads.entry((e.eval_id, e.attempt)).or_default();
        match e.kind {
            TraceEdgeKind::DispatchSent => {
                q.t0 = Some(e.local_t);
                q.worker = e.worker;
            }
            TraceEdgeKind::ResultReceived => {
                q.t3 = Some(e.local_t);
                q.worker = e.worker;
            }
            _ => {}
        }
    }

    let mut merged = MergedTrace::default();

    // Per worker shard: raw (unaligned) worker-side legs + clock samples.
    for shard in shards.iter().filter(|s| s.worker.is_some()) {
        let w = shard.worker.unwrap_or(u64::MAX);
        let mut worker_legs: BTreeMap<(u64, u32), (Option<f64>, Option<f64>)> = BTreeMap::new();
        let mut samples: Vec<f64> = Vec::new();
        for e in &shard.edges {
            match e.kind {
                TraceEdgeKind::WorkReceived => {
                    worker_legs.entry((e.eval_id, e.attempt)).or_default().0 = Some(e.local_t);
                }
                TraceEdgeKind::ResultSent => {
                    worker_legs.entry((e.eval_id, e.attempt)).or_default().1 = Some(e.local_t);
                }
                TraceEdgeKind::ClockSample => samples.push(e.remote_t),
                _ => {}
            }
        }
        merged.clock_samples.insert(w, samples.len());

        // Offset: heartbeat samples first, NTP quads as fallback, else 0.
        let offset = if !samples.is_empty() {
            median(samples)
        } else {
            let mut quad_offsets = Vec::new();
            for (key, &(t1w, t2w)) in &worker_legs {
                if let (Some(q), Some(t1w), Some(t2w)) = (quads.get(key), t1w, t2w) {
                    if let (Some(t0), Some(t3)) = (q.t0, q.t3) {
                        if q.worker == w {
                            quad_offsets.push(((t0 - t1w) + (t3 - t2w)) / 2.0);
                        }
                    }
                }
            }
            if quad_offsets.is_empty() {
                0.0
            } else {
                median(quad_offsets)
            }
        };
        merged.offsets.insert(w, offset);

        for (key, (t1w, t2w)) in worker_legs {
            let q = quads.entry(key).or_default();
            if q.worker == u64::MAX || q.t0.is_none() {
                q.worker = w;
            }
            if q.worker == w {
                q.t1 = t1w.map(|t| t + offset);
                q.t2 = t2w.map(|t| t + offset);
            }
        }
    }

    for ((eval_id, attempt), q) in quads {
        match (q.t0, q.t1, q.t2, q.t3) {
            (Some(t0), Some(t1), Some(t2), Some(t3)) => merged.chains.push(EvalChain {
                eval_id,
                attempt,
                worker: q.worker,
                t0,
                t1,
                t2,
                t3,
            }),
            _ => merged.incomplete += 1,
        }
    }
    Ok(merged)
}

impl MergedTrace {
    /// Renders the merged trace as Chrome Trace Event Format JSON: the
    /// master is pid 1, worker `w` is pid `w + 2`; every chain becomes a
    /// `dispatch` → `evaluate` → `consume` span triple with
    /// `t_c_out`/`t_f`/`t_c_back` in the event args. Timestamps are
    /// microseconds on the (aligned) master clock.
    pub fn chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"master\"}}"
                .to_string(),
        );
        let mut workers: Vec<u64> = self.chains.iter().map(|c| c.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        for &w in &workers {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"worker{w}\"}}}}",
                w + 2
            ));
        }
        for c in &self.chains {
            let args = format!(
                "{{\"eval\":{},\"attempt\":{},\"worker\":{},\"t_c_out\":{},\"t_f\":{},\
                 \"t_c_back\":{}}}",
                c.eval_id,
                c.attempt,
                c.worker,
                json_f64(c.t_c_out()),
                json_f64(c.t_f()),
                json_f64(c.t_c_back())
            );
            let legs = [
                ("dispatch", 1, c.t0, c.t1),
                ("evaluate", c.worker as usize + 2, c.t1, c.t2),
                ("consume", 1, c.t2, c.t3),
            ];
            for (name, pid, start, end) in legs {
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"eval\",\"ph\":\"X\",\
                     \"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":0,\"args\":{args}}}",
                    start * 1e6,
                    (end - start).max(0.0) * 1e6
                ));
            }
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    /// `eval_id → number of complete chains`, for asserting the
    /// one-connected-tree-per-completed-eval property.
    pub fn chains_per_eval(&self) -> BTreeMap<u64, usize> {
        let mut out = BTreeMap::new();
        for c in &self.chains {
            *out.entry(c.eval_id).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(kind: TraceEdgeKind, eval: u64, attempt: u32, worker: u64, t: f64) -> TraceEdge {
        TraceEdge {
            kind,
            trace_id: eval,
            eval_id: eval,
            attempt,
            worker,
            local_t: t,
            remote_t: 0.0,
        }
    }

    /// Master + one worker whose clock is `off` seconds behind.
    fn two_process_run(off: f64) -> Vec<TraceShard> {
        let mut master = Vec::new();
        let mut worker = Vec::new();
        for eval in 0..3u64 {
            let base = eval as f64;
            master.push(edge(TraceEdgeKind::DispatchSent, eval, 0, 0, base));
            worker.push(edge(
                TraceEdgeKind::WorkReceived,
                eval,
                0,
                0,
                base + 0.1 - off,
            ));
            worker.push(edge(
                TraceEdgeKind::ResultSent,
                eval,
                0,
                0,
                base + 0.6 - off,
            ));
            master.push(edge(TraceEdgeKind::ResultReceived, eval, 0, 0, base + 0.7));
        }
        vec![
            TraceShard::new("master", None, master),
            TraceShard::new("worker0", Some(0), worker),
        ]
    }

    #[test]
    fn shard_jsonl_round_trips_and_is_deterministic() {
        let shards = two_process_run(5.0);
        for s in &shards {
            let text = s.to_jsonl();
            let back = TraceShard::from_jsonl(&text).expect("parse");
            assert_eq!(back.process, s.process);
            assert_eq!(back.worker, s.worker);
            assert_eq!(back.edges.len(), s.edges.len());
            assert_eq!(back.to_jsonl(), text);
        }
        assert!(TraceShard::from_jsonl("nonsense\n").is_err());
        assert!(TraceShard::from_jsonl("").is_err());
    }

    #[test]
    fn merge_aligns_worker_clock_via_ntp_quads() {
        let merged = merge_shards(&two_process_run(5.0)).expect("merge");
        assert_eq!(merged.chains.len(), 3);
        assert_eq!(merged.incomplete, 0);
        let off = merged.offsets[&0];
        assert!((off - 5.0).abs() < 1e-9, "offset {off}");
        for c in &merged.chains {
            assert!((c.t_c_out() - 0.1).abs() < 1e-9);
            assert!((c.t_f() - 0.5).abs() < 1e-9);
            assert!((c.t_c_back() - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn heartbeat_samples_beat_quads_for_offset() {
        let mut shards = two_process_run(5.0);
        // Three explicit clock samples around 5.0; median wins.
        for (i, est) in [4.9, 5.0, 5.2].iter().enumerate() {
            shards[1].edges.push(TraceEdge {
                kind: TraceEdgeKind::ClockSample,
                trace_id: i as u64,
                eval_id: u64::MAX,
                attempt: 0,
                worker: 0,
                local_t: 0.01,
                remote_t: *est,
            });
        }
        let merged = merge_shards(&shards).expect("merge");
        assert_eq!(merged.clock_samples[&0], 3);
        assert_eq!(merged.offsets[&0], 5.0);
    }

    #[test]
    fn incomplete_groups_are_counted_not_fabricated() {
        let mut shards = two_process_run(0.0);
        // An eval dispatched but never completed (worker died mid-eval).
        shards[0]
            .edges
            .push(edge(TraceEdgeKind::DispatchSent, 99, 0, 0, 50.0));
        shards[1]
            .edges
            .push(edge(TraceEdgeKind::WorkReceived, 99, 0, 0, 50.1));
        let merged = merge_shards(&shards).expect("merge");
        assert_eq!(merged.chains.len(), 3);
        assert_eq!(merged.incomplete, 1);
        assert_eq!(merged.chains_per_eval().get(&99), None);
    }

    #[test]
    fn merge_requires_exactly_one_master_shard() {
        assert!(merge_shards(&[]).is_err());
        let shards = two_process_run(0.0);
        assert!(merge_shards(&shards[1..]).is_err());
        let doubled = vec![shards[0].clone(), shards[0].clone()];
        assert!(merge_shards(&doubled).is_err());
    }

    #[test]
    fn chrome_json_has_one_triple_per_chain() {
        let merged = merge_shards(&two_process_run(2.0)).expect("merge");
        let json = merged.chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert_eq!(json.matches("\"name\":\"dispatch\"").count(), 3);
        assert_eq!(json.matches("\"name\":\"evaluate\"").count(), 3);
        assert_eq!(json.matches("\"name\":\"consume\"").count(), 3);
        assert!(json.contains("\"name\":\"worker0\""));
        assert!(json.contains("\"t_c_out\""));
    }
}
