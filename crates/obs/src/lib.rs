//! # borg-obs
//!
//! The workspace's observability layer: one span vocabulary, one metrics
//! facade, shared by every executor (DES, virtual-time, real threads) and
//! by the protocol engine itself.
//!
//! The paper's whole argument rests on *measured* `T_F` / `T_C` / `T_A`
//! distributions and master occupancy (Eqs. 1–4, Figures 1–2). This crate
//! makes every run self-measuring:
//!
//! * [`Recorder`] — the zero-dependency instrumentation trait: counters,
//!   gauges, log-bucketed histograms and typed activity spans over either
//!   virtual or wall-clock seconds. Every method has an empty default
//!   body, so the no-op sink compiles away.
//! * [`NoopRecorder`] — the default sink: monomorphizes to nothing.
//! * [`InMemoryRecorder`] — a concurrent (`&self`) in-memory sink backed
//!   by a mutex; snapshots to a [`MetricsSnapshot`] and a [`SpanTrace`].
//! * [`Histogram`] — log-bucketed (4 sub-buckets per octave, exact
//!   exponent arithmetic, no float log) with lossless merge.
//! * [`span`] — the `Actor`/`Activity`/`Span` vocabulary (moved here from
//!   `borg_desim::trace`, which now re-exports it) plus [`SpanTracker`]
//!   for well-nested open/close instrumentation.
//! * [`export`] — renderers: Chrome `chrome://tracing` JSON (open in
//!   Perfetto) and a JSONL metrics dump.
//! * [`flight`] — the black-box flight recorder: a fixed-capacity,
//!   allocation-free ring of recent events, dumped as deterministic
//!   JSONL on worker death / fault sever / panic.
//! * [`shard`] — per-process distributed-trace shards
//!   ([`TraceEdge`] JSONL) and [`merge_shards`], the deterministic
//!   clock-aligning merge into one causal cross-process trace.
//!
//! ```
//! use borg_obs::{InMemoryRecorder, Recorder};
//! use borg_obs::span::{Activity, Actor};
//!
//! let rec = InMemoryRecorder::new();
//! rec.counter("engine.reissues", 1);
//! rec.span(Actor::Worker(0), Activity::Evaluation, 0.0, 0.25);
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters["engine.reissues"], 1);
//! // Span durations feed the matching empirical histogram for free.
//! assert_eq!(snap.histograms["t_f_seconds"].count(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod flight;
pub mod hist;
pub mod recorder;
pub mod shard;
pub mod span;

pub use flight::{FlightEvent, FlightRecorder, WithFlight};
pub use hist::Histogram;
pub use recorder::{
    InMemoryRecorder, MetricsSnapshot, NoopRecorder, Recorder, TraceEdge, TraceEdgeKind,
};
pub use shard::{merge_shards, EvalChain, MergedTrace, TraceShard};
pub use span::{Activity, Actor, Span, SpanTrace, SpanTracker};
