//! Property tests for [`SpanTracker`]: spans emitted by arbitrary
//! open/close sequences are well-formed (end ≥ start), well-nested per
//! actor (any two spans of one actor are disjoint or one contains the
//! other), and the in-memory sink agrees with the tracker about exactly
//! which spans were emitted.

use borg_obs::span::{Activity, Actor, Span, SpanTracker};
use borg_obs::InMemoryRecorder;
use proptest::prelude::*;

const ACTIVITIES: [Activity; 4] = [
    Activity::Algorithm,
    Activity::Communication,
    Activity::Evaluation,
    Activity::Idle,
];

const ACTORS: usize = 4;

fn actor(idx: usize) -> Actor {
    if idx == 0 {
        Actor::Master
    } else {
        Actor::Worker(idx - 1)
    }
}

fn contains(outer: &Span, inner: &Span) -> bool {
    outer.start <= inner.start && inner.end <= outer.end
}

fn disjoint(a: &Span, b: &Span) -> bool {
    a.end <= b.start || b.end <= a.start
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tracker_output_is_well_formed_and_well_nested(
        // (actor, op, time step): op 0..4 opens that activity, 4..6 closes
        // (biased toward opens so stacks actually grow); dt 0 exercises
        // zero-length spans and same-instant nesting boundaries.
        ops in prop::collection::vec((0usize..ACTORS, 0usize..6, 0u32..50), 1..200)
    ) {
        let rec = InMemoryRecorder::new();
        let mut tk = SpanTracker::new();
        let mut now = 0.0f64;
        let mut emitted: Vec<Span> = Vec::new();
        for &(a, op, dt) in &ops {
            now += f64::from(dt) * 1e-3;
            if op < ACTIVITIES.len() {
                tk.open(actor(a), ACTIVITIES[op], now);
            } else if let Some(span) = tk.close(actor(a), now, &rec) {
                emitted.push(span);
            }
        }
        // Drain every stack, innermost first, and verify all depths hit 0.
        for a in 0..ACTORS {
            while let Some(span) = tk.close(actor(a), now, &rec) {
                emitted.push(span);
            }
            prop_assert_eq!(tk.depth(actor(a)), 0);
        }

        for s in &emitted {
            prop_assert!(s.end >= s.start, "span ends before it starts: {s:?}");
            prop_assert!(s.end <= now, "span outlives the clock: {s:?}");
        }
        // Well-nested per actor: LIFO closes over a monotone clock can
        // never produce partially overlapping spans of one actor.
        for (i, a) in emitted.iter().enumerate() {
            for b in emitted.iter().skip(i + 1) {
                if a.actor != b.actor {
                    continue;
                }
                prop_assert!(
                    disjoint(a, b) || contains(a, b) || contains(b, a),
                    "partial overlap between {a:?} and {b:?}"
                );
            }
        }
        // Sink agreement: the recorder stored exactly the positive-length
        // emissions, and their durations all landed in histograms.
        let positive = emitted.iter().filter(|s| s.end > s.start).count();
        prop_assert_eq!(rec.span_trace().spans().len(), positive);
        let snap = rec.snapshot();
        let hist_total: u64 = ACTIVITIES
            .iter()
            .filter_map(|act| snap.histograms.get(act.metric_name()))
            .map(|h| h.count())
            .sum();
        prop_assert_eq!(hist_total, positive as u64);
    }

    #[test]
    fn close_is_lifo_per_actor(
        depth in 1usize..12,
        steps in prop::collection::vec(1u32..10, 12)
    ) {
        // Open `depth` frames on one actor at strictly increasing times,
        // then close them all: spans must come back innermost-first, each
        // containing the previous (earlier start, later-or-equal end).
        let rec = InMemoryRecorder::new();
        let mut tk = SpanTracker::new();
        let mut now = 0.0f64;
        let mut opened = Vec::new();
        for (i, &dt) in steps.iter().take(depth).enumerate() {
            now += f64::from(dt) * 1e-3;
            let activity = ACTIVITIES[i % ACTIVITIES.len()];
            tk.open(Actor::Master, activity, now);
            opened.push((activity, now));
        }
        now += 1.0;
        let mut prev: Option<Span> = None;
        for expected in opened.iter().rev() {
            let span = tk.close(Actor::Master, now, &rec).expect("frame open");
            prop_assert_eq!(span.activity, expected.0);
            prop_assert_eq!(span.start, expected.1);
            if let Some(p) = &prev {
                prop_assert!(
                    span.start <= p.start && p.end <= span.end,
                    "outer span {span:?} does not contain inner {p:?}"
                );
            }
            prev = Some(span);
        }
        prop_assert!(tk.close(Actor::Master, now, &rec).is_none());
    }
}
