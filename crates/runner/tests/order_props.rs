//! The runner's core contract as a property: for arbitrary item vectors
//! and worker counts, `map_jobs` returns exactly what the serial loop
//! returns, in the same order — work-stealing changes scheduling, never
//! results.

use borg_runner::map_jobs;
use proptest::prelude::*;

/// A job whose output depends on both the index and the item, so any
/// index/slot mix-up changes the result.
fn job(index: usize, item: u64) -> (usize, u64) {
    (
        index,
        item.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ index as u64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_jobs_equals_serial_for_arbitrary_inputs(
        items in prop::collection::vec(0u64..=u64::MAX, 0..48),
        workers in 0usize..9,
    ) {
        let serial: Vec<(usize, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| job(i, x))
            .collect();
        let pooled = map_jobs(workers, items, job).expect("pure jobs never panic");
        prop_assert_eq!(pooled, serial);
    }

    #[test]
    fn worker_count_never_changes_output(
        items in prop::collection::vec(0u64..=u64::MAX, 1..32),
    ) {
        let one = map_jobs(1, items.clone(), job).expect("no panics");
        for workers in 2usize..6 {
            let many = map_jobs(workers, items.clone(), job).expect("no panics");
            prop_assert_eq!(&many, &one, "workers = {}", workers);
        }
    }
}
