//! A model-checkable miniature of the work-stealing deque race.
//!
//! [`crate::map_jobs`] rests on one concurrency protocol: an owner drains
//! its own chunk from the **front** while idle workers steal from the
//! **back** (`take_job`). The production code serialises each
//! deque behind a `parking_lot::Mutex`, so the protocol is trivially safe
//! there — but the *scheme* (two ends, disjoint claims, every job exactly
//! once) is what the determinism contract leans on, and this module
//! restates it as a lock-free claim array so it can be model-checked.
//!
//! Each job slot carries one atomic claim flag. The owner scans
//! front-to-back, a thief scans back-to-front, and both claim slots with
//! a single `compare_exchange` — the miniature of "pop under the lock".
//! The invariants mirror `map_jobs`: every slot is claimed **exactly
//! once** (no lost job, no double execution), and the union of the
//! owner's and thieves' claims covers the whole chunk.
//!
//! Two execution modes share the model via the [`sync`] shim, exactly as
//! in `borg_parallel::handshake_model`:
//!
//! * **Normal build** — `cargo test -p borg-runner steal` runs the model
//!   repeatedly over real `std::thread`s as a scheduling stress test.
//! * **Loom build** — with the real loom crate supplied and
//!   `RUSTFLAGS="--cfg loom"`, the same tests run under `loom::model`,
//!   which explores every interleaving of the claim flags. The offline
//!   build environment cannot fetch loom, so the dependency is wired
//!   through `cfg(loom)` only; the workspace `check-cfg` table keeps the
//!   gate honest.

/// Synchronization primitives, swapped wholesale under `--cfg loom`.
pub mod sync {
    #[cfg(loom)]
    pub use loom::sync::atomic::{AtomicU8, Ordering};
    #[cfg(loom)]
    pub use loom::sync::Arc;
    #[cfg(loom)]
    pub use loom::thread;

    #[cfg(not(loom))]
    pub use std::sync::atomic::{AtomicU8, Ordering};
    #[cfg(not(loom))]
    pub use std::sync::Arc;
    #[cfg(not(loom))]
    pub use std::thread;
}

use sync::{AtomicU8, Ordering};

/// Claim state of one job slot.
const FREE: u8 = 0;
/// The slot has been claimed by exactly one worker.
const TAKEN: u8 = 1;

/// One worker's chunk: a fixed array of claimable job slots.
///
/// The owner drains it front-to-back, thieves back-to-front; a
/// successful [`ChunkModel::claim`] is the model's "ran the job".
#[derive(Debug)]
pub struct ChunkModel {
    slots: Vec<AtomicU8>,
}

impl ChunkModel {
    /// A chunk of `len` unclaimed job slots.
    pub fn new(len: usize) -> Self {
        Self {
            slots: (0..len).map(|_| AtomicU8::new(FREE)).collect(),
        }
    }

    /// Number of slots in the chunk.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the chunk has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Tries to claim slot `i`; `true` exactly once per slot, ever.
    ///
    /// Acquire on success orders the claimant's use of the job after the
    /// claim; Acquire on failure keeps the loser's subsequent scan from
    /// being reordered ahead of the verdict.
    pub fn claim(&self, i: usize) -> bool {
        self.slots.get(i).is_some_and(|slot| {
            slot.compare_exchange(FREE, TAKEN, Ordering::Acquire, Ordering::Acquire)
                .is_ok()
        })
    }

    /// The owner's drain: claim front-to-back, return claimed indices.
    pub fn drain_as_owner(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.claim(i)).collect()
    }

    /// A thief's drain: claim back-to-front, return claimed indices.
    pub fn drain_as_thief(&self) -> Vec<usize> {
        (0..self.len()).rev().filter(|&i| self.claim(i)).collect()
    }
}

/// Runs one owner and `thieves` stealing workers over a `len`-slot chunk
/// and asserts the work-conservation invariants: claims are pairwise
/// disjoint and their union is the whole chunk — every job exactly once,
/// regardless of how the claim races interleave.
pub fn steal_model(len: usize, thieves: usize) {
    let chunk = sync::Arc::new(ChunkModel::new(len));

    let workers: Vec<_> = (0..thieves)
        .map(|_| {
            let chunk = sync::Arc::clone(&chunk);
            sync::thread::spawn(move || chunk.drain_as_thief())
        })
        .collect();

    let mut claims = vec![chunk.drain_as_owner()];
    for worker in workers {
        match worker.join() {
            Ok(claimed) => claims.push(claimed),
            Err(_) => panic!("thief panicked inside the model"),
        }
    }

    let mut seen = vec![false; len];
    for claimed in &claims {
        for &i in claimed {
            assert!(!seen[i], "slot {i} claimed twice (double execution)");
            seen[i] = true;
        }
    }
    let total: usize = claims.iter().map(Vec::len).sum();
    assert_eq!(total, len, "a job slot was lost");
    assert!(seen.iter().all(|&s| s), "some slot was never claimed");
}

/// Runs a model body: exhaustively under loom, `iterations` times as a
/// scheduling stress test otherwise.
pub fn check_model<F: Fn() + Sync + Send + 'static>(iterations: usize, body: F) {
    #[cfg(loom)]
    {
        let _ = iterations; // loom explores interleavings itself
        loom::model(body);
    }
    #[cfg(not(loom))]
    {
        for _ in 0..iterations {
            body();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Loom guidance: keep modeled thread counts tiny (interleavings grow
    // exponentially). One owner × one thief over three slots already
    // covers the race that matters: both ends converging on the middle.

    #[test]
    fn steal_single_thief() {
        check_model(200, || steal_model(3, 1));
    }

    #[test]
    fn steal_two_thieves() {
        check_model(100, || steal_model(4, 2));
    }

    #[cfg(not(loom))]
    #[test]
    fn steal_stress_wide() {
        // Beyond loom's budget, but a good OS-schedule shakedown.
        check_model(20, || steal_model(256, 7));
    }

    #[test]
    fn claim_is_exactly_once() {
        let chunk = ChunkModel::new(2);
        assert!(chunk.claim(0));
        assert!(!chunk.claim(0), "second claim of a slot must fail");
        assert!(chunk.claim(1));
        assert!(!chunk.claim(7), "out-of-range claims must fail, not panic");
    }

    #[test]
    fn drains_meet_in_the_middle() {
        let chunk = ChunkModel::new(5);
        assert!(chunk.claim(2));
        let owner = chunk.drain_as_owner();
        let thief = chunk.drain_as_thief();
        assert_eq!(owner, [0, 1, 3, 4]);
        assert!(thief.is_empty());
        assert!(chunk.is_empty() || chunk.len() == 5);
    }
}
