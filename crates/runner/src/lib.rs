//! # borg-runner
//!
//! A deterministic work-stealing job pool for the experiment drivers.
//!
//! The paper's replicate sweeps (Table II is 2 problems × 3 `T_F` × 7
//! processor counts × 50 replicates) are embarrassingly parallel: every
//! replicate carries its own pre-derived seed and touches no shared state.
//! [`map_jobs`] fans such jobs out over a pool of scoped threads while
//! keeping the workspace's reproducibility contract:
//!
//! **The output of `map_jobs(workers, items, job)` is bit-identical for
//! every worker count**, including `workers = 1`. Three rules make that
//! hold, and every caller must respect them:
//!
//! 1. *Inputs are pre-derived.* Jobs receive their seeds and parameters up
//!    front; nothing is drawn from a shared RNG stream at execution time,
//!    so scheduling order cannot perturb seed derivation.
//! 2. *Results are index-ordered.* Workers finish in nondeterministic
//!    order; results are slotted into an index-addressed buffer and
//!    returned in submission order, so downstream float accumulation
//!    (means, histogram merges) folds in the same order every run.
//! 3. *Jobs are pure up to their return value.* A job must not mutate
//!    state shared with other jobs; per-job telemetry goes into a per-job
//!    `InMemoryRecorder` whose snapshot is returned and merged in index
//!    order by the caller (see `borg_obs::MetricsSnapshot::merge`).
//!
//! Scheduling is chunked work-stealing: the items are split into one
//! contiguous chunk per worker (good locality, zero coordination while a
//! worker drains its own chunk) and an idle worker steals from the *tail*
//! of another worker's deque (minimal contention with the owner popping
//! the head). Stealing only changes *who* runs a job and *when* — never
//! what the job computes or where its result lands.
//!
//! A panicking job does not poison the pool: the panic is caught at the
//! job boundary, surfaced as [`JobPanicked`] (lowest job index wins, so
//! the error itself is deterministic), and the remaining jobs keep
//! running; subsequent `map_jobs` calls are unaffected because the pool
//! is scoped per call and owns no long-lived state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod steal_model;

use crossbeam::channel;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A job panicked; the pool survived and every other job still ran.
///
/// `index` is the smallest job index that panicked (deterministic even
/// when several jobs fail in racing worker threads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanicked {
    /// Index of the panicking job in the submitted item order.
    pub index: usize,
    /// The panic payload, when it was a string; a placeholder otherwise.
    pub message: String,
}

impl std::fmt::Display for JobPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanicked {}

/// Worker threads this machine can usefully run (`available_parallelism`,
/// falling back to 1 when the OS refuses to say).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a `--jobs`-style knob: `0` means "auto" ([`available_jobs`]),
/// anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        available_jobs()
    } else {
        jobs
    }
}

/// Runs `job` over every item on `workers` threads and returns the
/// results **in item order** — bit-identical for every worker count.
///
/// `workers = 0` means auto ([`available_jobs`]); `workers = 1` runs the
/// jobs serially on the calling thread (today's nested-loop behaviour).
/// The pool never outlives the call (scoped threads), so a panicking job
/// cannot poison later calls; the first panic by *job index* is returned
/// as [`JobPanicked`] after every surviving job has finished.
pub fn map_jobs<T, R, F>(workers: usize, items: Vec<T>, job: F) -> Result<Vec<R>, JobPanicked>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = resolve_jobs(workers).min(n);
    if workers <= 1 {
        let mut slots = Vec::with_capacity(n);
        for (index, item) in items.into_iter().enumerate() {
            slots.push(run_job(&job, index, item));
        }
        return collect(slots.into_iter().map(Some).collect());
    }

    // One contiguous chunk of (index, item) jobs per worker deque.
    let chunk = n.div_ceil(workers);
    let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(workers);
    let mut pending: VecDeque<(usize, T)> = items.into_iter().enumerate().collect();
    for _ in 0..workers {
        let take = chunk.min(pending.len());
        queues.push(Mutex::new(pending.drain(..take).collect()));
    }
    debug_assert!(pending.is_empty());

    let mut slots: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
    let (tx, rx) = channel::unbounded::<(usize, Result<R, String>)>();
    std::thread::scope(|scope| {
        let queues = &queues;
        let job = &job;
        for me in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                while let Some((index, item)) = take_job(me, queues) {
                    // A send can only fail if the collector hung up, and
                    // it drains exactly `n` messages; nothing to salvage.
                    if tx.send((index, run_job(job, index, item))).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        // Collect into the index-ordered buffer; arrival order is
        // irrelevant from here on.
        while let Ok((index, outcome)) = rx.recv() {
            slots[index] = Some(outcome);
        }
    });
    collect(slots)
}

/// Pops the next job: own chunk head first, then steal another deque's
/// tail. `None` only once every deque is empty — jobs never spawn jobs,
/// so queues strictly drain and the emptiness check cannot race new work.
fn take_job<T>(me: usize, queues: &[Mutex<VecDeque<(usize, T)>>]) -> Option<(usize, T)> {
    if let Some(job) = queues[me].lock().pop_front() {
        return Some(job);
    }
    let n = queues.len();
    for step in 1..n {
        if let Some(job) = queues[(me + step) % n].lock().pop_back() {
            return Some(job);
        }
    }
    None
}

/// Runs one job behind a panic boundary.
///
/// `AssertUnwindSafe` is sound here: on panic the job's entire state
/// (item, partial result) is dropped and the failure is surfaced as an
/// error; callers only share immutable references with jobs (rule 3 of
/// the module contract), so no cross-job state can be left torn.
fn run_job<T, R, F>(job: &F, index: usize, item: T) -> Result<R, String>
where
    F: Fn(usize, T) -> R + Sync,
{
    catch_unwind(AssertUnwindSafe(|| job(index, item))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Folds the index-ordered slot buffer into the final result, surfacing
/// the lowest-index panic if any job failed.
fn collect<R>(slots: Vec<Option<Result<R, String>>>) -> Result<Vec<R>, JobPanicked> {
    let mut results = Vec::with_capacity(slots.len());
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => results.push(r),
            Some(Err(message)) => return Err(JobPanicked { index, message }),
            // Unreachable with caught panics, but a lost worker must be
            // an error, not a silently truncated result vector.
            None => {
                return Err(JobPanicked {
                    index,
                    message: "job result missing (worker terminated unexpectedly)".to_string(),
                })
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_for_every_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [0usize, 1, 2, 3, 4, 8, 64] {
            let got = map_jobs(workers, items.clone(), |_, x| x * x).expect("no panics");
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn job_index_matches_item_position() {
        let items: Vec<char> = "abcdef".chars().collect();
        let got = map_jobs(3, items, |i, c| (i, c)).expect("no panics");
        assert_eq!(
            got,
            [(0, 'a'), (1, 'b'), (2, 'c'), (3, 'd'), (4, 'e'), (5, 'f')]
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = map_jobs(4, Vec::<u32>::new(), |_, x| x).expect("no panics");
        assert!(got.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let got = map_jobs(16, vec![1u32, 2], |_, x| x + 1).expect("no panics");
        assert_eq!(got, [2, 3]);
    }

    #[test]
    fn zero_workers_means_auto() {
        assert!(available_jobs() >= 1);
        assert_eq!(resolve_jobs(0), available_jobs());
        assert_eq!(resolve_jobs(3), 3);
        let got = map_jobs(0, vec![5u32], |_, x| x).expect("no panics");
        assert_eq!(got, [5]);
    }

    #[test]
    fn panicking_job_surfaces_as_error_and_pool_stays_usable() {
        for workers in [1usize, 4] {
            let err = map_jobs(workers, (0..10u32).collect(), |_, x| {
                if x == 3 || x == 7 {
                    panic!("boom at {x}");
                }
                x
            })
            .expect_err("must surface the panic");
            // Lowest panicking index wins, deterministically.
            assert_eq!(err.index, 3, "workers = {workers}");
            assert!(err.message.contains("boom at 3"), "{}", err.message);
            // The pool is per-call; the next call is unaffected.
            let ok = map_jobs(workers, vec![1u32, 2, 3], |_, x| x * 10).expect("healthy again");
            assert_eq!(ok, [10, 20, 30]);
        }
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let err = map_jobs(2, vec![0u32, 1], |_, x| {
            if x == 1 {
                std::panic::panic_any(42u64);
            }
            x
        })
        .expect_err("must surface the panic");
        assert_eq!(err.index, 1);
        assert_eq!(err.message, "non-string panic payload");
    }

    #[test]
    fn stealing_actually_spreads_work() {
        // Deliberately skewed job costs leave worker 0's chunk still busy
        // long after the other chunks drain, exercising the steal path;
        // the assertion is only that the contract holds — order
        // preserved, every job run exactly once.
        let items: Vec<u64> = (0..101).collect();
        let got = map_jobs(4, items.clone(), |_, x| {
            // Uneven job cost: early indices are much slower.
            let spin = if x < 8 { 20_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        })
        .expect("no panics");
        assert_eq!(got, items);
    }
}
