//! Differential property test: the ε-grid-indexed [`EpsilonArchive`] must
//! make *bit-identical* decisions to the retained [`LinearScanArchive`]
//! oracle on arbitrary insertion streams — same per-candidate verdicts,
//! same counters, same final member ordering.
//!
//! The generators deliberately stress the index's edge cases: random
//! per-objective ε values, heavy ties (objectives drawn from a small
//! palette so many candidates share ε-boxes or box coordinates), signed
//! zeros, the single-objective degenerate case, and infeasible candidates
//! exercising the constraint arms.

use borg_core::archive::{EpsilonArchive, LinearScanArchive};
use borg_core::solution::Solution;
use proptest::prelude::*;

/// Objective palette: coarse values produce frequent exact ties and shared
/// ε-boxes; `-0.0` checks that signed zeros cannot split a box key.
fn objective_value() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![
        -0.0, 0.0, 0.05, 0.1, 0.15, 0.2, 0.35, 0.5, 0.55, 0.7, 0.85, 0.99,
    ])
}

/// A constraint drawn from {feasible, mildly violated, badly violated}.
fn constraint_value() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![0.0, 0.0, 0.0, 0.25, 1.5])
}

fn drive_both(
    m: usize,
    epsilons: &[f64],
    stream: &[(Vec<f64>, Vec<f64>)],
) -> Result<(), TestCaseError> {
    let mut fast = EpsilonArchive::new(epsilons.to_vec());
    let mut slow = LinearScanArchive::new(epsilons.to_vec());
    for (step, (objs, cons)) in stream.iter().enumerate() {
        prop_assert_eq!(objs.len(), m);
        let s = Solution::from_parts(vec![], objs.clone(), cons.clone());
        let fast_verdict = fast.offer(&s);
        let slow_verdict = slow.add(s);
        prop_assert_eq!(
            fast_verdict,
            slow_verdict,
            "decision diverged at step {} of {:?}",
            step,
            stream
        );
    }
    prop_assert_eq!(fast.len(), slow.len());
    prop_assert_eq!(fast.improvements(), slow.improvements());
    prop_assert_eq!(fast.accepts(), slow.accepts());
    prop_assert_eq!(fast.rejects(), slow.rejects());
    for (i, (f, s)) in fast.solutions().iter().zip(slow.solutions()).enumerate() {
        prop_assert_eq!(
            f.objectives(),
            s.objectives(),
            "member order diverged at slot {}",
            i
        );
        prop_assert_eq!(f.constraints(), s.constraints());
    }
    if let Err(e) = fast.check_invariants() {
        return Err(TestCaseError::fail(format!("invariant violation: {e}")));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Multi-objective streams over random ε vectors, with ties and
    /// occasional infeasibility.
    #[test]
    fn indexed_matches_linear_on_random_streams(
        m in 2usize..=4,
        eps_seed in prop::collection::vec(0.02f64..0.4, 4),
        stream in prop::collection::vec(
            (prop::collection::vec(objective_value(), 4), constraint_value()),
            1..120,
        ),
    ) {
        let epsilons: Vec<f64> = eps_seed[..m].to_vec();
        let stream: Vec<(Vec<f64>, Vec<f64>)> = stream
            .into_iter()
            .map(|(objs, c)| (objs[..m].to_vec(), vec![c]))
            .collect();
        drive_both(m, &epsilons, &stream)?;
    }

    /// The 1-D degenerate case: every box key is a single coordinate, so
    /// the staircase walks collapse to immediate neighbours.
    #[test]
    fn indexed_matches_linear_single_objective(
        epsilon in 0.02f64..0.3,
        stream in prop::collection::vec(objective_value(), 1..80),
    ) {
        let stream: Vec<(Vec<f64>, Vec<f64>)> = stream
            .into_iter()
            .map(|v| (vec![v], vec![]))
            .collect();
        drive_both(1, &[epsilon], &stream)?;
    }

    /// Re-ordering a fixed candidate pool: both implementations must agree
    /// under *every* order, not just the one the generator happened to
    /// produce first.
    #[test]
    fn indexed_matches_linear_under_shuffles(
        stream in Just((0..30u32).collect::<Vec<u32>>()).prop_shuffle(),
    ) {
        // A deterministic pool mixing front points, dominated points, and
        // exact duplicates; the shuffle chooses the insertion order.
        let pool: Vec<(Vec<f64>, Vec<f64>)> = stream
            .into_iter()
            .map(|i| {
                let t = f64::from(i % 10) / 10.0;
                let lift = f64::from(i / 10) * 0.15;
                (vec![t + lift, 1.0 - t + lift], vec![])
            })
            .collect();
        drive_both(2, &[0.07, 0.11], &pool)?;
    }
}
