//! The ε-dominance archive (Laumanns et al. 2002) with ε-progress tracking.
//!
//! The archive is the heart of the Borg MOEA: it stores the best solutions
//! found so far with guaranteed diversity (at most one solution per ε-box),
//! credits archive contributions back to variation operators (driving the
//! auto-adaptive ensemble), and tracks **ε-progress** — the number of
//! insertions that opened a *new* ε-box — which Borg uses to detect search
//! stagnation and trigger restarts.
//!
//! # The ε-grid index
//!
//! Insertion used to scan every resident's cached box key (O(n) per
//! candidate, the dominant term of the paper's `T_A`). The archive now keeps
//! a `BTreeMap<Vec<i64>, usize>` from ε-box key to member slot (a `BTreeMap`
//! rather than a `HashMap` so iteration order is deterministic, per
//! BORG-L010) and resolves a candidate in three steps:
//!
//! 1. **Same box** — one O(log n) lookup of the candidate's own key.
//! 2. **Dominating member** — a member box dominating the candidate's box is
//!    componentwise ≤ and therefore lexicographically *smaller*, so the
//!    search walks `range(..sbox)` backwards. When a visited key fails at
//!    coordinate `j` (its `j`-th index exceeds the candidate's), every key
//!    sharing that prefix also fails, and the walk re-seeks to
//!    `prefix ++ sbox[j] ++ [i64::MAX…]` — a "staircase" skip that jumps the
//!    whole failing subtree in one O(log n) seek.
//! 3. **Dominated members** — symmetric forward walk over `range(sbox..)`
//!    with `[i64::MIN…]` padding, collecting every member to evict.
//!
//! Because the residents form an antichain under box dominance (invariant 2
//! below), at most one of steps 1–3 can produce a result, so the decision is
//! independent of scan order and *bit-identical* to the linear scan — the
//! retained [`LinearScanArchive`] oracle and the differential property tests
//! hold the two implementations to the same decisions, eviction order, and
//! final member ordering. Keys visited by the walks are counted in
//! [`EpsilonArchive::box_probes`] (exported as `archive.box_probes`).
//!
//! Member objectives additionally mirror into a flat structure-of-arrays
//! [`ObjectiveMatrix`] so metrics consume contiguous rows without per-call
//! `Vec<Vec<f64>>` re-materialization.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::dominance::{constrained_dominance, epsilon_box, epsilon_box_into, Dominance};
use crate::matrix::{FlatMatrix, ObjectiveMatrix};
use crate::solution::Solution;

/// Outcome of attempting to add a solution to the archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveInsert {
    /// The solution entered a previously unoccupied ε-box (possibly evicting
    /// dominated boxes). This counts as ε-progress.
    AddedNewBox,
    /// The solution replaced the occupant of its own ε-box (closer to the
    /// box's ideal corner, or dominating within the box). Not ε-progress.
    ReplacedInBox,
    /// The solution was ε-box dominated (or same-box worse) and rejected.
    Rejected,
}

impl ArchiveInsert {
    /// Whether the archive accepted the solution in any form.
    pub fn accepted(self) -> bool {
        !matches!(self, ArchiveInsert::Rejected)
    }

    /// Whether the insertion counts as ε-progress.
    pub fn is_progress(self) -> bool {
        matches!(self, ArchiveInsert::AddedNewBox)
    }
}

/// What `decide` concluded about a candidate; `commit` applies it. Split so
/// [`EpsilonArchive::offer`] can reject borrowed candidates without cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    /// Rejected (feasibility, domination, or same-box loss).
    Reject,
    /// First feasible solution: evict all infeasible content, then insert.
    FirstFeasibleReset,
    /// Empty archive accepts a best-so-far infeasible placeholder.
    AddInfeasiblePlaceholder,
    /// Less-violating infeasible candidate replaces the placeholder (slot 0).
    ReplaceInfeasiblePlaceholder,
    /// Candidate wins its own box; replaces the member in this slot.
    ReplaceInBox(usize),
    /// Candidate opens a new box; `scratch_dominated` holds the slots to
    /// evict, sorted descending.
    AddNewBox,
}

/// Snapshot of the archive's content-mutation counters.
///
/// Two stamps tell an incremental consumer (e.g. an incremental hypervolume
/// tracker) whether the interval between them consisted *only* of appended
/// new-box members — the case where an O(new members) update is exact — or
/// whether evictions/replacements/clears force a full recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArchiveStamp {
    /// Member count at snapshot time.
    pub len: usize,
    /// Accepted insertions so far.
    pub accepts: u64,
    /// ε-progress (new-box) insertions so far.
    pub improvements: u64,
    /// Members evicted by dominating insertions (and feasibility resets).
    pub evictions: u64,
    /// Same-box (and placeholder) replacements so far.
    pub replacements: u64,
    /// Archive clears so far.
    pub clears: u64,
}

impl ArchiveStamp {
    /// If every mutation between `self` and `newer` appended a new member to
    /// the end of the archive (new boxes, no evictions / replacements /
    /// clears), returns how many rows were appended. `None` means the
    /// interval included removals or in-place edits.
    pub fn pure_append_to(&self, newer: &ArchiveStamp) -> Option<usize> {
        let untouched = newer.evictions == self.evictions
            && newer.replacements == self.replacements
            && newer.clears == self.clears
            && newer.len >= self.len;
        if !untouched {
            return None;
        }
        let appended = newer.len - self.len;
        (newer.improvements - self.improvements == appended as u64
            && newer.accepts - self.accepts == appended as u64)
            .then_some(appended)
    }
}

/// An ε-box dominance archive.
///
/// Invariants (checked by [`EpsilonArchive::check_invariants`] and the
/// property tests):
///
/// 1. No two members share an ε-box.
/// 2. No member's ε-box Pareto-dominates another member's ε-box.
/// 3. All members are mutually Pareto-nondominated... *per box*; exact
///    Pareto-nondominance of representatives follows from 1 + 2 only up to
///    the box discretization, which is the ε-dominance guarantee.
/// 4. The ε-grid index maps every member's box key to its slot, and nothing
///    else.
#[derive(Debug, Clone)]
pub struct EpsilonArchive {
    epsilons: Vec<f64>,
    solutions: Vec<Solution>,
    /// Cached ε-box key per member, row-parallel with `solutions`.
    boxes: FlatMatrix<i64>,
    /// Flat SoA mirror of member objective vectors, row-parallel with
    /// `solutions` (borrowed by metrics instead of cloning `Vec<Vec<f64>>`).
    objectives: ObjectiveMatrix,
    /// ε-grid spatial index: box key → slot in `solutions`.
    index: BTreeMap<Vec<i64>, usize>,
    /// Number of insertions that opened a new ε-box (ε-progress counter).
    improvements: u64,
    /// Total accepted insertions (new box + same-box replacements).
    accepts: u64,
    /// Total rejected insertions.
    rejects: u64,
    /// Times the archive content was cleared (restart truncation).
    clears: u64,
    /// Members evicted by dominating insertions or feasibility resets.
    evictions: u64,
    /// In-place replacements (same-box wins and placeholder upgrades).
    replacements: u64,
    /// Index keys consulted while deciding insertions (`archive.box_probes`).
    box_probes: u64,
    /// Archive contributions per operator index (drives operator adaptation).
    operator_credits: Vec<u64>,
    /// Reusable candidate box key (no `Vec<i64>` born per insertion).
    scratch_box: Vec<i64>,
    /// Reusable skip-scan re-seek bound.
    scratch_bound: Vec<i64>,
    /// Reusable eviction slot list.
    scratch_dominated: Vec<usize>,
}

impl EpsilonArchive {
    /// Creates an empty archive with per-objective ε values.
    ///
    /// # Panics
    /// If `epsilons` is empty or any ε is not strictly positive.
    pub fn new(epsilons: Vec<f64>) -> Self {
        assert!(!epsilons.is_empty(), "need at least one epsilon");
        assert!(
            epsilons.iter().all(|&e| e > 0.0 && e.is_finite()),
            "epsilons must be positive and finite"
        );
        let m = epsilons.len();
        Self {
            epsilons,
            solutions: Vec::new(),
            boxes: FlatMatrix::new(m),
            objectives: ObjectiveMatrix::new(m),
            index: BTreeMap::new(),
            improvements: 0,
            accepts: 0,
            rejects: 0,
            clears: 0,
            evictions: 0,
            replacements: 0,
            box_probes: 0,
            operator_credits: Vec::new(),
            scratch_box: vec![0; m],
            scratch_bound: vec![0; m],
            scratch_dominated: Vec::new(),
        }
    }

    /// Creates an archive with a uniform ε for `m` objectives.
    pub fn uniform(m: usize, epsilon: f64) -> Self {
        Self::new(vec![epsilon; m])
    }

    /// The ε vector.
    pub fn epsilons(&self) -> &[f64] {
        &self.epsilons
    }

    /// Current archive members.
    pub fn solutions(&self) -> &[Solution] {
        &self.solutions
    }

    /// Number of archive members.
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }

    /// ε-progress counter: insertions that opened a new ε-box.
    pub fn improvements(&self) -> u64 {
        self.improvements
    }

    /// Total accepted insertions.
    pub fn accepts(&self) -> u64 {
        self.accepts
    }

    /// Total rejected insertions.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Members evicted by dominating insertions or feasibility resets.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// In-place member replacements (same-box wins, placeholder upgrades).
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// ε-grid index keys consulted while deciding insertions. The linear
    /// scan this index replaced consulted every resident per candidate; the
    /// ratio `box_probes / (accepts + rejects)` is the measured per-candidate
    /// probe cost (exported in the metric catalogue as `archive.box_probes`).
    pub fn box_probes(&self) -> u64 {
        self.box_probes
    }

    /// Content generation counter: changes every time the archive's member
    /// set *may* have changed (any accepted insertion or a clear), and
    /// never changes otherwise. Callers computing expensive functions of
    /// the archive content (e.g. the hypervolume ratio in the experiment
    /// drivers) can cache keyed on this value and skip recomputation while
    /// the archive is unchanged.
    pub fn generation(&self) -> u64 {
        self.accepts + self.clears
    }

    /// Snapshot of the mutation counters, for incremental consumers (see
    /// [`ArchiveStamp::pure_append_to`]).
    pub fn stamp(&self) -> ArchiveStamp {
        ArchiveStamp {
            len: self.solutions.len(),
            accepts: self.accepts,
            improvements: self.improvements,
            evictions: self.evictions,
            replacements: self.replacements,
            clears: self.clears,
        }
    }

    /// Archive contributions per operator (index = operator id).
    pub fn operator_credits(&self) -> &[u64] {
        &self.operator_credits
    }

    /// Clears credit counters (Borg does this when recomputing operator
    /// probabilities from scratch after a restart, if configured).
    pub fn reset_operator_credits(&mut self) {
        self.operator_credits.iter_mut().for_each(|c| *c = 0);
    }

    /// Flat structure-of-arrays view of member objective vectors: row `i`
    /// holds member `i`'s objectives. Borrow this instead of
    /// [`objective_vectors`](Self::objective_vectors) on hot paths.
    pub fn objective_rows(&self) -> &ObjectiveMatrix {
        &self.objectives
    }

    /// Objective vectors of all members, copied row by row.
    ///
    /// Compatibility / test convenience: metrics hot paths use the borrowed
    /// [`objective_rows`](Self::objective_rows) accessor instead.
    pub fn objective_vectors(&self) -> Vec<Vec<f64>> {
        self.objectives.iter_rows().map(|r| r.to_vec()).collect()
    }

    fn credit(&mut self, op: Option<usize>) {
        if let Some(i) = op {
            if i >= self.operator_credits.len() {
                self.operator_credits.resize(i + 1, 0);
            }
            self.operator_credits[i] += 1;
        }
    }

    /// Attempts to insert a solution.
    ///
    /// Constrained solutions: an infeasible solution is accepted only while
    /// the archive holds no feasible solution, mirroring Borg's behaviour
    /// (the archive switches to feasible-only as soon as one exists).
    // borg-lint: hot-path
    pub fn add(&mut self, solution: Solution) -> ArchiveInsert {
        let decision = self.decide(&solution);
        self.commit(decision, solution)
    }

    /// Decides a borrowed candidate's fate, cloning it **only on accept**.
    ///
    /// Same decision procedure as [`add`](Self::add); the steady-state
    /// consume path offers every evaluated candidate, and most are rejected,
    /// so the borrow form removes three `Vec` clones per rejected candidate.
    // borg-lint: hot-path
    pub fn offer(&mut self, solution: &Solution) -> ArchiveInsert {
        match self.decide(solution) {
            Decision::Reject => {
                self.rejects += 1;
                ArchiveInsert::Rejected
            }
            decision => self.commit(decision, solution.clone()),
        }
    }

    /// Classifies `solution` against the archive without mutating members.
    /// Mutates only scratch buffers and the probe counter; `commit` must
    /// follow immediately (it consumes `scratch_dominated` for `AddNewBox`).
    // borg-lint: hot-path
    fn decide(&mut self, solution: &Solution) -> Decision {
        debug_assert_eq!(solution.num_objectives(), self.epsilons.len());

        // Constraint handling: compare feasibility against the archive state.
        if !self.solutions.is_empty() {
            let archive_feasible = self.solutions[0].is_feasible();
            let sol_feasible = solution.is_feasible();
            match (archive_feasible, sol_feasible) {
                (true, false) => return Decision::Reject,
                (false, true) => return Decision::FirstFeasibleReset,
                (false, false) => {
                    // Among infeasible solutions keep the single least
                    // violating one (Borg keeps a best-infeasible
                    // placeholder).
                    let cur = self.solutions[0].constraint_violation();
                    let new = solution.constraint_violation();
                    return if new < cur {
                        Decision::ReplaceInfeasiblePlaceholder
                    } else {
                        Decision::Reject
                    };
                }
                (true, true) => {}
            }
        } else if !solution.is_feasible() {
            // Empty archive accepts a best-so-far infeasible placeholder.
            return Decision::AddInfeasiblePlaceholder;
        }

        let Self {
            epsilons,
            solutions,
            index,
            box_probes,
            scratch_box,
            scratch_bound,
            scratch_dominated,
            ..
        } = self;
        epsilon_box_into(solution.objectives(), epsilons, scratch_box);
        let sbox: &[i64] = scratch_box;
        // In 2-D the resident antichain makes both staircase walks monotone:
        // keys sort by rising first coordinate, so the antichain invariant
        // (no resident box dominates another) forces the second coordinate
        // to fall strictly as the walk advances. The first key that fails a
        // walk therefore proves every remaining key fails the same way, and
        // the walk stops after one miss. In ≥3 dimensions no lex ordering
        // linearizes box dominance, so those walks re-seek instead.
        let biobjective = sbox.len() == 2;
        let mut probes = 1u64; // the same-box lookup below

        // Step 1: same box — one O(log n) lookup.
        if let Some(&slot) = index.get(sbox) {
            // Same box: prefer the dominating solution; if nondominated,
            // prefer the one closest to the box's ideal corner.
            let incumbent = &solutions[slot];
            let better = match constrained_dominance(solution, incumbent) {
                Dominance::Dominates => true,
                Dominance::DominatedBy => false,
                Dominance::NonDominated => {
                    let corner_dist = |objs: &[f64]| {
                        let mut d = 0.0;
                        for (j, &o) in objs.iter().enumerate() {
                            let corner = sbox[j] as f64 * epsilons[j];
                            d += (o - corner) * (o - corner);
                        }
                        d
                    };
                    corner_dist(solution.objectives()) < corner_dist(incumbent.objectives())
                }
            };
            *box_probes += probes;
            return if better {
                Decision::ReplaceInBox(slot)
            } else {
                Decision::Reject
            };
        }

        // Step 2: dominating member — backward staircase walk below `sbox`.
        // A dominating box is componentwise ≤ (and ≠), hence lex-smaller.
        let mut dominated_by_member = false;
        let mut down = index.range::<[i64], _>((Bound::Unbounded, Bound::Excluded(sbox)));
        while let Some((key, _)) = down.next_back() {
            probes += 1;
            match key.iter().zip(sbox).position(|(&k, &s)| k > s) {
                None => {
                    // Every coordinate ≤ and the key differs: dominator.
                    dominated_by_member = true;
                    break;
                }
                Some(j) => {
                    if biobjective {
                        // 2-D: this key has the smallest second coordinate
                        // of any resident at-or-left of the candidate (the
                        // antichain falls monotonically leftwards), and it
                        // is still too high — nothing below dominates.
                        break;
                    }
                    // All keys sharing `key[..j]` with j-th coordinate
                    // > sbox[j] fail the same way; re-seek past them to the
                    // greatest key ≤ prefix ++ sbox[j] ++ [MAX…].
                    scratch_bound[..j].copy_from_slice(&key[..j]);
                    scratch_bound[j] = sbox[j];
                    for b in &mut scratch_bound[j + 1..] {
                        *b = i64::MAX;
                    }
                    down = index
                        .range::<[i64], _>((Bound::Unbounded, Bound::Included(&scratch_bound[..])));
                }
            }
        }
        if dominated_by_member {
            *box_probes += probes;
            return Decision::Reject;
        }

        // Step 3: dominated members — forward staircase walk above `sbox`.
        // Dominated boxes are componentwise ≥ (and ≠), hence lex-greater.
        scratch_dominated.clear();
        let mut up = index.range::<[i64], _>((Bound::Excluded(sbox), Bound::Unbounded));
        while let Some((key, &slot)) = up.next() {
            probes += 1;
            match key.iter().zip(sbox).position(|(&k, &s)| k < s) {
                None => scratch_dominated.push(slot),
                Some(j) => {
                    if biobjective {
                        // 2-D: dominated residents form a contiguous lex
                        // run right after `sbox` (second coordinates fall
                        // strictly rightwards), so the first miss ends it.
                        break;
                    }
                    // Skip the failing subtree: smallest key ≥
                    // prefix ++ sbox[j] ++ [MIN…].
                    scratch_bound[..j].copy_from_slice(&key[..j]);
                    scratch_bound[j] = sbox[j];
                    for b in &mut scratch_bound[j + 1..] {
                        *b = i64::MIN;
                    }
                    up = index
                        .range::<[i64], _>((Bound::Included(&scratch_bound[..]), Bound::Unbounded));
                }
            }
        }
        // Evict in descending slot order so `swap_remove` leaves the same
        // final member ordering as the linear-scan reference.
        scratch_dominated.sort_unstable_by(|a, b| b.cmp(a));
        *box_probes += probes;
        Decision::AddNewBox
    }

    /// Applies a [`Decision`], taking ownership of the (possibly cloned)
    /// accepted solution and keeping all mirrors and the index in sync.
    // borg-lint: hot-path
    fn commit(&mut self, decision: Decision, solution: Solution) -> ArchiveInsert {
        match decision {
            Decision::Reject => {
                self.rejects += 1;
                ArchiveInsert::Rejected
            }
            Decision::FirstFeasibleReset => {
                // First feasible solution evicts all infeasible content.
                self.evictions += self.solutions.len() as u64;
                self.solutions.clear();
                self.boxes.clear();
                self.objectives.clear();
                self.index.clear();
                let op = solution.operator;
                self.push_member(solution);
                self.improvements += 1;
                self.accepts += 1;
                self.credit(op);
                ArchiveInsert::AddedNewBox
            }
            Decision::AddInfeasiblePlaceholder => {
                let op = solution.operator;
                self.push_member(solution);
                self.accepts += 1;
                self.credit(op);
                ArchiveInsert::AddedNewBox
            }
            Decision::ReplaceInfeasiblePlaceholder => {
                // Slot 0 is the only member; its box key may move.
                epsilon_box_into(solution.objectives(), &self.epsilons, &mut self.scratch_box);
                self.index.remove(self.boxes.row(0));
                self.index.insert(self.scratch_box.clone(), 0);
                self.boxes.set_row(0, &self.scratch_box);
                self.objectives.set_row(0, solution.objectives());
                self.solutions[0] = solution;
                self.accepts += 1;
                self.replacements += 1;
                ArchiveInsert::ReplacedInBox
            }
            Decision::ReplaceInBox(slot) => {
                // Same box key: the index and box row are already correct.
                let op = solution.operator;
                self.objectives.set_row(slot, solution.objectives());
                self.solutions[slot] = solution;
                self.accepts += 1;
                self.replacements += 1;
                self.credit(op);
                ArchiveInsert::ReplacedInBox
            }
            Decision::AddNewBox => {
                // Evict members in dominated boxes (slots pre-sorted
                // descending by `decide`), then insert.
                let dominated = std::mem::take(&mut self.scratch_dominated);
                self.evictions += dominated.len() as u64;
                for &slot in &dominated {
                    self.index.remove(self.boxes.row(slot));
                    let last = self.solutions.len() - 1;
                    self.solutions.swap_remove(slot);
                    self.boxes.swap_remove_row(slot);
                    self.objectives.swap_remove_row(slot);
                    if slot != last {
                        // The former tail member moved into `slot`; its key
                        // is indexed by invariant (every member's is).
                        let moved = self.index.get_mut(self.boxes.row(slot));
                        // borg-lint: allow(BORG-L001)
                        *moved.expect("moved member's box key must be indexed") = slot;
                    }
                }
                self.scratch_dominated = dominated;
                self.scratch_dominated.clear();
                let op = solution.operator;
                self.push_member(solution);
                self.improvements += 1;
                self.accepts += 1;
                self.credit(op);
                ArchiveInsert::AddedNewBox
            }
        }
    }

    /// Appends a member, refreshing every mirror and the index.
    // borg-lint: hot-path
    fn push_member(&mut self, solution: Solution) {
        epsilon_box_into(solution.objectives(), &self.epsilons, &mut self.scratch_box);
        let slot = self.solutions.len();
        self.boxes.push_row(&self.scratch_box);
        self.objectives.push_row(solution.objectives());
        self.index.insert(self.scratch_box.clone(), slot);
        self.solutions.push(solution);
    }

    /// Empties the archive content but keeps statistics and credits.
    pub fn clear_solutions(&mut self) {
        self.solutions.clear();
        self.boxes.clear();
        self.objectives.clear();
        self.index.clear();
        self.clears += 1;
    }

    /// Verifies the archive invariants; used in tests and `debug_assert!`s.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 0..self.boxes.rows() {
            for j in (i + 1)..self.boxes.rows() {
                let a = self.boxes.row(i);
                let b = self.boxes.row(j);
                if a == b {
                    return Err(format!("members {i} and {j} share box {a:?}"));
                }
                let mut a_better = false;
                let mut b_better = false;
                for (&x, &y) in a.iter().zip(b) {
                    if x < y {
                        a_better = true;
                    } else if y < x {
                        b_better = true;
                    }
                }
                if a_better != b_better {
                    return Err(format!(
                        "member boxes {i} ({a:?}) and {j} ({b:?}) are not mutually nondominating"
                    ));
                }
            }
        }
        for (i, s) in self.solutions.iter().enumerate() {
            let expect = epsilon_box(s.objectives(), &self.epsilons);
            if expect != self.boxes.row(i) {
                return Err(format!("cached box of member {i} is stale"));
            }
            // Mirror integrity is exact copy equality, not dominance.
            // borg-lint: allow(BORG-L005)
            if self.objectives.row(i) != s.objectives() {
                return Err(format!("objective mirror row {i} is stale"));
            }
        }
        if self.index.len() != self.solutions.len() {
            return Err(format!(
                "index holds {} keys for {} members",
                self.index.len(),
                self.solutions.len()
            ));
        }
        for (key, &slot) in &self.index {
            if slot >= self.solutions.len() {
                return Err(format!("index key {key:?} points past the members"));
            }
            if key.as_slice() != self.boxes.row(slot) {
                return Err(format!(
                    "index key {key:?} disagrees with member {slot}'s box"
                ));
            }
        }
        Ok(())
    }
}

/// The pre-index linear-scan ε-archive, retained as a reference oracle.
///
/// Byte-for-byte the decision procedure [`EpsilonArchive`] used before the
/// ε-grid index: every candidate compares against every resident's cached
/// box. The differential property tests drive both implementations with the
/// same insertion streams and require identical decisions, counters, and
/// final member ordering; the `core` bench group and the layout ablation use
/// it as the "before" arm.
#[derive(Debug, Clone)]
pub struct LinearScanArchive {
    epsilons: Vec<f64>,
    solutions: Vec<Solution>,
    boxes: Vec<Vec<i64>>,
    improvements: u64,
    accepts: u64,
    rejects: u64,
}

impl LinearScanArchive {
    /// Creates an empty linear-scan archive with per-objective ε values.
    pub fn new(epsilons: Vec<f64>) -> Self {
        assert!(!epsilons.is_empty(), "need at least one epsilon");
        assert!(
            epsilons.iter().all(|&e| e > 0.0 && e.is_finite()),
            "epsilons must be positive and finite"
        );
        Self {
            epsilons,
            solutions: Vec::new(),
            boxes: Vec::new(),
            improvements: 0,
            accepts: 0,
            rejects: 0,
        }
    }

    /// Creates an archive with a uniform ε for `m` objectives.
    pub fn uniform(m: usize, epsilon: f64) -> Self {
        Self::new(vec![epsilon; m])
    }

    /// Current archive members.
    pub fn solutions(&self) -> &[Solution] {
        &self.solutions
    }

    /// Number of archive members.
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }

    /// ε-progress counter.
    pub fn improvements(&self) -> u64 {
        self.improvements
    }

    /// Total accepted insertions.
    pub fn accepts(&self) -> u64 {
        self.accepts
    }

    /// Total rejected insertions.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Attempts to insert a solution (the original O(n)-scan procedure).
    pub fn add(&mut self, solution: Solution) -> ArchiveInsert {
        debug_assert_eq!(solution.num_objectives(), self.epsilons.len());

        if !self.solutions.is_empty() {
            let archive_feasible = self.solutions[0].is_feasible();
            let sol_feasible = solution.is_feasible();
            match (archive_feasible, sol_feasible) {
                (true, false) => {
                    self.rejects += 1;
                    return ArchiveInsert::Rejected;
                }
                (false, true) => {
                    self.solutions.clear();
                    self.boxes.clear();
                    self.boxes
                        .push(epsilon_box(solution.objectives(), &self.epsilons));
                    self.solutions.push(solution);
                    self.improvements += 1;
                    self.accepts += 1;
                    return ArchiveInsert::AddedNewBox;
                }
                (false, false) => {
                    let cur = self.solutions[0].constraint_violation();
                    let new = solution.constraint_violation();
                    if new < cur {
                        self.boxes[0] = epsilon_box(solution.objectives(), &self.epsilons);
                        self.solutions[0] = solution;
                        self.accepts += 1;
                        return ArchiveInsert::ReplacedInBox;
                    }
                    self.rejects += 1;
                    return ArchiveInsert::Rejected;
                }
                (true, true) => {}
            }
        } else if !solution.is_feasible() {
            self.boxes
                .push(epsilon_box(solution.objectives(), &self.epsilons));
            self.solutions.push(solution);
            self.accepts += 1;
            return ArchiveInsert::AddedNewBox;
        }

        let sbox = epsilon_box(solution.objectives(), &self.epsilons);

        // Pass 1: determine the solution's fate against every member.
        let mut same_box: Option<usize> = None;
        let mut dominated_members: Vec<usize> = Vec::new();
        for (i, mbox) in self.boxes.iter().enumerate() {
            let mut s_better = false;
            let mut m_better = false;
            for (&sb, &mb) in sbox.iter().zip(mbox) {
                if sb < mb {
                    s_better = true;
                } else if mb < sb {
                    m_better = true;
                }
            }
            match (s_better, m_better) {
                (false, false) => {
                    same_box = Some(i);
                    break;
                }
                (true, false) => dominated_members.push(i),
                (false, true) => {
                    self.rejects += 1;
                    return ArchiveInsert::Rejected;
                }
                (true, true) => {}
            }
        }

        if let Some(i) = same_box {
            let incumbent = &self.solutions[i];
            let better = match constrained_dominance(&solution, incumbent) {
                Dominance::Dominates => true,
                Dominance::DominatedBy => false,
                Dominance::NonDominated => {
                    let corner: Vec<f64> = sbox
                        .iter()
                        .zip(&self.epsilons)
                        .map(|(&b, &e)| b as f64 * e)
                        .collect();
                    let d = |s: &Solution| {
                        s.objectives()
                            .iter()
                            .zip(&corner)
                            .map(|(o, c)| (o - c) * (o - c))
                            .sum::<f64>()
                    };
                    d(&solution) < d(incumbent)
                }
            };
            if better {
                self.solutions[i] = solution;
                self.accepts += 1;
                ArchiveInsert::ReplacedInBox
            } else {
                self.rejects += 1;
                ArchiveInsert::Rejected
            }
        } else {
            for &i in dominated_members.iter().rev() {
                self.solutions.swap_remove(i);
                self.boxes.swap_remove(i);
            }
            self.solutions.push(solution);
            self.boxes.push(sbox);
            self.improvements += 1;
            self.accepts += 1;
            ArchiveInsert::AddedNewBox
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(objs: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), vec![])
    }

    fn op_sol(objs: &[f64], op: usize) -> Solution {
        let mut s = sol(objs);
        s.operator = Some(op);
        s
    }

    fn csol(objs: &[f64], cons: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), cons.to_vec())
    }

    #[test]
    fn first_solution_is_progress() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        assert_eq!(a.add(sol(&[0.5, 0.5])), ArchiveInsert::AddedNewBox);
        assert_eq!(a.len(), 1);
        assert_eq!(a.improvements(), 1);
    }

    #[test]
    fn dominated_box_is_evicted() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(sol(&[0.55, 0.55]));
        assert_eq!(a.add(sol(&[0.15, 0.15])), ArchiveInsert::AddedNewBox);
        assert_eq!(a.len(), 1);
        assert_eq!(a.solutions()[0].objectives(), &[0.15, 0.15]);
        assert_eq!(a.evictions(), 1);
        a.check_invariants().unwrap();
    }

    #[test]
    fn dominated_candidate_is_rejected() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(sol(&[0.15, 0.15]));
        assert_eq!(a.add(sol(&[0.55, 0.55])), ArchiveInsert::Rejected);
        assert_eq!(a.len(), 1);
        assert_eq!(a.rejects(), 1);
    }

    #[test]
    fn same_box_keeps_closer_to_corner() {
        let mut a = EpsilonArchive::uniform(2, 1.0);
        a.add(sol(&[0.9, 0.2]));
        // Same box (0,0); Pareto-nondominated with incumbent; closer to corner.
        assert_eq!(a.add(sol(&[0.3, 0.4])), ArchiveInsert::ReplacedInBox);
        assert_eq!(a.len(), 1);
        assert_eq!(a.solutions()[0].objectives(), &[0.3, 0.4]);
        // Same box, farther from corner: rejected.
        assert_eq!(a.add(sol(&[0.6, 0.7])), ArchiveInsert::Rejected);
        // ε-progress only counted once (the initial insertion).
        assert_eq!(a.improvements(), 1);
        assert_eq!(a.replacements(), 1);
    }

    #[test]
    fn same_box_dominating_solution_replaces() {
        let mut a = EpsilonArchive::uniform(2, 1.0);
        a.add(sol(&[0.5, 0.5]));
        assert_eq!(a.add(sol(&[0.4, 0.4])), ArchiveInsert::ReplacedInBox);
        assert_eq!(a.solutions()[0].objectives(), &[0.4, 0.4]);
    }

    #[test]
    fn nondominated_boxes_coexist() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(sol(&[0.05, 0.95]));
        a.add(sol(&[0.95, 0.05]));
        a.add(sol(&[0.45, 0.45]));
        assert_eq!(a.len(), 3);
        assert_eq!(a.improvements(), 3);
        a.check_invariants().unwrap();
    }

    #[test]
    fn operator_credit_tracking() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(op_sol(&[0.05, 0.95], 2));
        a.add(op_sol(&[0.95, 0.05], 0));
        a.add(op_sol(&[0.96, 0.06], 0)); // rejected, no credit
        assert_eq!(a.operator_credits(), &[1, 0, 1]);
        a.reset_operator_credits();
        assert_eq!(a.operator_credits(), &[0, 0, 0]);
    }

    #[test]
    fn infeasible_placeholder_until_feasible_arrives() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        assert!(a.add(csol(&[0.1, 0.1], &[5.0])).accepted());
        // Less-violating infeasible replaces.
        assert_eq!(
            a.add(csol(&[0.9, 0.9], &[2.0])),
            ArchiveInsert::ReplacedInBox
        );
        assert_eq!(a.len(), 1);
        // More-violating infeasible rejected.
        assert_eq!(a.add(csol(&[0.0, 0.0], &[3.0])), ArchiveInsert::Rejected);
        // Feasible solution evicts the placeholder even if Pareto-worse.
        assert_eq!(a.add(csol(&[1.5, 1.5], &[0.0])), ArchiveInsert::AddedNewBox);
        assert_eq!(a.len(), 1);
        assert!(a.solutions()[0].is_feasible());
        // Infeasible solutions now rejected outright.
        assert_eq!(a.add(csol(&[0.0, 0.0], &[0.1])), ArchiveInsert::Rejected);
        a.check_invariants().unwrap();
    }

    #[test]
    fn five_objective_inserts_hold_invariants() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut a = EpsilonArchive::uniform(5, 0.1);
        for _ in 0..500 {
            let objs: Vec<f64> = (0..5).map(|_| rng.gen::<f64>()).collect();
            a.add(Solution::from_parts(vec![], objs, vec![]));
        }
        a.check_invariants().unwrap();
        assert!(a.len() > 1);
        assert_eq!(a.accepts() + a.rejects(), 500);
    }

    #[test]
    fn generation_changes_iff_content_may_have_changed() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        let g0 = a.generation();
        a.add(sol(&[0.05, 0.95]));
        let g1 = a.generation();
        assert_ne!(g0, g1, "accepted insertion must bump the generation");
        // A rejected insertion leaves the content — and the generation —
        // untouched.
        a.add(sol(&[0.55, 0.95]));
        assert_eq!(a.generation(), g1);
        // Clearing empties the content, so the generation must move even
        // though nothing was accepted.
        a.clear_solutions();
        assert_ne!(a.generation(), g1);
    }

    #[test]
    #[should_panic(expected = "epsilons must be positive")]
    fn zero_epsilon_panics() {
        EpsilonArchive::new(vec![0.0]);
    }

    #[test]
    fn indexed_archive_matches_linear_scan_on_random_streams() {
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = 2 + (seed as usize % 3);
            let mut fast = EpsilonArchive::uniform(m, 0.07);
            let mut slow = LinearScanArchive::uniform(m, 0.07);
            for step in 0..600 {
                let objs: Vec<f64> = (0..m).map(|_| rng.gen::<f64>()).collect();
                let s = Solution::from_parts(vec![], objs, vec![]);
                let a = fast.offer(&s);
                let b = slow.add(s);
                assert_eq!(a, b, "decision diverged at step {step} (seed {seed})");
            }
            assert_eq!(fast.len(), slow.len());
            assert_eq!(fast.improvements(), slow.improvements());
            assert_eq!(fast.accepts(), slow.accepts());
            assert_eq!(fast.rejects(), slow.rejects());
            for (f, s) in fast.solutions().iter().zip(slow.solutions()) {
                assert_eq!(f.objectives(), s.objectives(), "member order diverged");
            }
            fast.check_invariants().unwrap();
        }
    }

    #[test]
    fn offer_matches_add_and_clones_only_on_accept() {
        let mut by_add = EpsilonArchive::uniform(2, 0.1);
        let mut by_offer = EpsilonArchive::uniform(2, 0.1);
        let stream = [
            [0.55, 0.55],
            [0.15, 0.15],
            [0.16, 0.14],
            [0.95, 0.05],
            [0.96, 0.06],
        ];
        for objs in stream {
            let s = sol(&objs);
            assert_eq!(by_offer.offer(&s), by_add.add(s.clone()));
        }
        assert_eq!(by_add.len(), by_offer.len());
        assert_eq!(by_add.box_probes(), by_offer.box_probes());
        by_offer.check_invariants().unwrap();
    }

    #[test]
    fn box_probes_stay_sublinear_on_a_spread_front() {
        // 1 000 candidates along a 2-D front: the index should consult far
        // fewer keys than the ~n/2 per candidate a linear scan averages.
        let n = 1_000usize;
        let mut a = EpsilonArchive::uniform(2, 1e-4);
        for i in 0..n {
            let t = i as f64 / n as f64;
            a.add(sol(&[t, 1.0 - t]));
        }
        let per_candidate = a.box_probes() as f64 / n as f64;
        assert!(
            per_candidate < 16.0,
            "expected a handful of probes per candidate, got {per_candidate:.1}"
        );
    }

    #[test]
    fn stamp_detects_pure_appends() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(sol(&[0.05, 0.95]));
        let s0 = a.stamp();
        a.add(sol(&[0.95, 0.05]));
        a.add(sol(&[0.45, 0.45]));
        assert_eq!(s0.pure_append_to(&a.stamp()), Some(2));
        // A same-box replacement breaks pure-append.
        let s1 = a.stamp();
        assert_eq!(a.add(sol(&[0.44, 0.44])), ArchiveInsert::ReplacedInBox);
        assert_eq!(s1.pure_append_to(&a.stamp()), None);
        // An eviction breaks pure-append.
        let s2 = a.stamp();
        assert_eq!(a.add(sol(&[0.01, 0.01])), ArchiveInsert::AddedNewBox);
        assert!(a.evictions() > 0);
        assert_eq!(s2.pure_append_to(&a.stamp()), None);
        // A clear breaks pure-append even though len could line up.
        let s3 = a.stamp();
        a.clear_solutions();
        a.add(sol(&[0.5, 0.5]));
        assert_eq!(s3.pure_append_to(&a.stamp()), None);
    }

    #[test]
    fn objective_rows_mirror_solutions() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(sol(&[0.05, 0.95]));
        a.add(sol(&[0.95, 0.05]));
        let rows = a.objective_rows();
        assert_eq!(rows.rows(), 2);
        for (i, s) in a.solutions().iter().enumerate() {
            assert_eq!(rows.row(i), s.objectives());
        }
        assert_eq!(a.objective_vectors().len(), 2);
    }
}
