//! The ε-dominance archive (Laumanns et al. 2002) with ε-progress tracking.
//!
//! The archive is the heart of the Borg MOEA: it stores the best solutions
//! found so far with guaranteed diversity (at most one solution per ε-box),
//! credits archive contributions back to variation operators (driving the
//! auto-adaptive ensemble), and tracks **ε-progress** — the number of
//! insertions that opened a *new* ε-box — which Borg uses to detect search
//! stagnation and trigger restarts.

use crate::dominance::{constrained_dominance, epsilon_box, Dominance};
use crate::solution::Solution;

/// Outcome of attempting to add a solution to the archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveInsert {
    /// The solution entered a previously unoccupied ε-box (possibly evicting
    /// dominated boxes). This counts as ε-progress.
    AddedNewBox,
    /// The solution replaced the occupant of its own ε-box (closer to the
    /// box's ideal corner, or dominating within the box). Not ε-progress.
    ReplacedInBox,
    /// The solution was ε-box dominated (or same-box worse) and rejected.
    Rejected,
}

impl ArchiveInsert {
    /// Whether the archive accepted the solution in any form.
    pub fn accepted(self) -> bool {
        !matches!(self, ArchiveInsert::Rejected)
    }

    /// Whether the insertion counts as ε-progress.
    pub fn is_progress(self) -> bool {
        matches!(self, ArchiveInsert::AddedNewBox)
    }
}

/// An ε-box dominance archive.
///
/// Invariants (checked by `debug_assert_invariants` and the property tests):
///
/// 1. No two members share an ε-box.
/// 2. No member's ε-box Pareto-dominates another member's ε-box.
/// 3. All members are mutually Pareto-nondominated... *per box*; exact
///    Pareto-nondominance of representatives follows from 1 + 2 only up to
///    the box discretization, which is the ε-dominance guarantee.
#[derive(Debug, Clone)]
pub struct EpsilonArchive {
    epsilons: Vec<f64>,
    solutions: Vec<Solution>,
    boxes: Vec<Vec<i64>>,
    /// Number of insertions that opened a new ε-box (ε-progress counter).
    improvements: u64,
    /// Total accepted insertions (new box + same-box replacements).
    accepts: u64,
    /// Total rejected insertions.
    rejects: u64,
    /// Times the archive content was cleared (restart truncation).
    clears: u64,
    /// Archive contributions per operator index (drives operator adaptation).
    operator_credits: Vec<u64>,
}

impl EpsilonArchive {
    /// Creates an empty archive with per-objective ε values.
    ///
    /// # Panics
    /// If `epsilons` is empty or any ε is not strictly positive.
    pub fn new(epsilons: Vec<f64>) -> Self {
        assert!(!epsilons.is_empty(), "need at least one epsilon");
        assert!(
            epsilons.iter().all(|&e| e > 0.0 && e.is_finite()),
            "epsilons must be positive and finite"
        );
        Self {
            epsilons,
            solutions: Vec::new(),
            boxes: Vec::new(),
            improvements: 0,
            accepts: 0,
            rejects: 0,
            clears: 0,
            operator_credits: Vec::new(),
        }
    }

    /// Creates an archive with a uniform ε for `m` objectives.
    pub fn uniform(m: usize, epsilon: f64) -> Self {
        Self::new(vec![epsilon; m])
    }

    /// The ε vector.
    pub fn epsilons(&self) -> &[f64] {
        &self.epsilons
    }

    /// Current archive members.
    pub fn solutions(&self) -> &[Solution] {
        &self.solutions
    }

    /// Number of archive members.
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }

    /// ε-progress counter: insertions that opened a new ε-box.
    pub fn improvements(&self) -> u64 {
        self.improvements
    }

    /// Total accepted insertions.
    pub fn accepts(&self) -> u64 {
        self.accepts
    }

    /// Total rejected insertions.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Content generation counter: changes every time the archive's member
    /// set *may* have changed (any accepted insertion or a clear), and
    /// never changes otherwise. Callers computing expensive functions of
    /// the archive content (e.g. the hypervolume ratio in the experiment
    /// drivers) can cache keyed on this value and skip recomputation while
    /// the archive is unchanged.
    pub fn generation(&self) -> u64 {
        self.accepts + self.clears
    }

    /// Archive contributions per operator (index = operator id).
    pub fn operator_credits(&self) -> &[u64] {
        &self.operator_credits
    }

    /// Clears credit counters (Borg does this when recomputing operator
    /// probabilities from scratch after a restart, if configured).
    pub fn reset_operator_credits(&mut self) {
        self.operator_credits.iter_mut().for_each(|c| *c = 0);
    }

    /// Objective vectors of all members (copied; for metrics).
    pub fn objective_vectors(&self) -> Vec<Vec<f64>> {
        self.solutions
            .iter()
            .map(|s| s.objectives().to_vec())
            .collect()
    }

    fn credit(&mut self, op: Option<usize>) {
        if let Some(i) = op {
            if i >= self.operator_credits.len() {
                self.operator_credits.resize(i + 1, 0);
            }
            self.operator_credits[i] += 1;
        }
    }

    /// Attempts to insert a solution.
    ///
    /// Constrained solutions: an infeasible solution is accepted only while
    /// the archive holds no feasible solution, mirroring Borg's behaviour
    /// (the archive switches to feasible-only as soon as one exists).
    pub fn add(&mut self, solution: Solution) -> ArchiveInsert {
        debug_assert_eq!(solution.num_objectives(), self.epsilons.len());

        // Constraint handling: compare feasibility against the archive state.
        if !self.solutions.is_empty() {
            let archive_feasible = self.solutions[0].is_feasible();
            let sol_feasible = solution.is_feasible();
            match (archive_feasible, sol_feasible) {
                (true, false) => {
                    self.rejects += 1;
                    return ArchiveInsert::Rejected;
                }
                (false, true) => {
                    // First feasible solution evicts all infeasible content.
                    self.solutions.clear();
                    self.boxes.clear();
                    let op = solution.operator;
                    self.boxes
                        .push(epsilon_box(solution.objectives(), &self.epsilons));
                    self.solutions.push(solution);
                    self.improvements += 1;
                    self.accepts += 1;
                    self.credit(op);
                    return ArchiveInsert::AddedNewBox;
                }
                (false, false) => {
                    // Among infeasible solutions keep the single least
                    // violating one (Borg keeps a best-infeasible placeholder).
                    let cur = self.solutions[0].constraint_violation();
                    let new = solution.constraint_violation();
                    if new < cur {
                        self.boxes[0] = epsilon_box(solution.objectives(), &self.epsilons);
                        self.solutions[0] = solution;
                        self.accepts += 1;
                        return ArchiveInsert::ReplacedInBox;
                    }
                    self.rejects += 1;
                    return ArchiveInsert::Rejected;
                }
                (true, true) => {}
            }
        } else if !solution.is_feasible() {
            // Empty archive accepts a best-so-far infeasible placeholder.
            let op = solution.operator;
            self.boxes
                .push(epsilon_box(solution.objectives(), &self.epsilons));
            self.solutions.push(solution);
            self.accepts += 1;
            self.credit(op);
            return ArchiveInsert::AddedNewBox;
        }

        let sbox = epsilon_box(solution.objectives(), &self.epsilons);

        // Pass 1: determine the solution's fate against every member.
        let mut same_box: Option<usize> = None;
        let mut dominated_members: Vec<usize> = Vec::new();
        for (i, mbox) in self.boxes.iter().enumerate() {
            let mut s_better = false;
            let mut m_better = false;
            for (&sb, &mb) in sbox.iter().zip(mbox) {
                if sb < mb {
                    s_better = true;
                } else if mb < sb {
                    m_better = true;
                }
            }
            match (s_better, m_better) {
                (false, false) => {
                    same_box = Some(i);
                    break;
                }
                (true, false) => dominated_members.push(i),
                (false, true) => {
                    self.rejects += 1;
                    return ArchiveInsert::Rejected;
                }
                (true, true) => {}
            }
        }

        if let Some(i) = same_box {
            // Same box: prefer the dominating solution; if nondominated,
            // prefer the one closest to the box's ideal corner.
            let incumbent = &self.solutions[i];
            let better = match constrained_dominance(&solution, incumbent) {
                Dominance::Dominates => true,
                Dominance::DominatedBy => false,
                Dominance::NonDominated => {
                    let corner: Vec<f64> = sbox
                        .iter()
                        .zip(&self.epsilons)
                        .map(|(&b, &e)| b as f64 * e)
                        .collect();
                    let d = |s: &Solution| {
                        s.objectives()
                            .iter()
                            .zip(&corner)
                            .map(|(o, c)| (o - c) * (o - c))
                            .sum::<f64>()
                    };
                    d(&solution) < d(incumbent)
                }
            };
            if better {
                let op = solution.operator;
                self.solutions[i] = solution;
                self.accepts += 1;
                self.credit(op);
                ArchiveInsert::ReplacedInBox
            } else {
                self.rejects += 1;
                ArchiveInsert::Rejected
            }
        } else {
            // New box: evict members in dominated boxes, then insert.
            for &i in dominated_members.iter().rev() {
                self.solutions.swap_remove(i);
                self.boxes.swap_remove(i);
            }
            let op = solution.operator;
            self.solutions.push(solution);
            self.boxes.push(sbox);
            self.improvements += 1;
            self.accepts += 1;
            self.credit(op);
            ArchiveInsert::AddedNewBox
        }
    }

    /// Empties the archive content but keeps statistics and credits.
    pub fn clear_solutions(&mut self) {
        self.solutions.clear();
        self.boxes.clear();
        self.clears += 1;
    }

    /// Verifies the archive invariants; used in tests and `debug_assert!`s.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 0..self.boxes.len() {
            for j in (i + 1)..self.boxes.len() {
                let a = &self.boxes[i];
                let b = &self.boxes[j];
                if a == b {
                    return Err(format!("members {i} and {j} share box {a:?}"));
                }
                let mut a_better = false;
                let mut b_better = false;
                for (&x, &y) in a.iter().zip(b) {
                    if x < y {
                        a_better = true;
                    } else if y < x {
                        b_better = true;
                    }
                }
                if a_better != b_better {
                    return Err(format!(
                        "member boxes {i} ({a:?}) and {j} ({b:?}) are not mutually nondominating"
                    ));
                }
            }
        }
        for (i, s) in self.solutions.iter().enumerate() {
            let expect = epsilon_box(s.objectives(), &self.epsilons);
            if expect != self.boxes[i] {
                return Err(format!("cached box of member {i} is stale"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(objs: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), vec![])
    }

    fn op_sol(objs: &[f64], op: usize) -> Solution {
        let mut s = sol(objs);
        s.operator = Some(op);
        s
    }

    fn csol(objs: &[f64], cons: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), cons.to_vec())
    }

    #[test]
    fn first_solution_is_progress() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        assert_eq!(a.add(sol(&[0.5, 0.5])), ArchiveInsert::AddedNewBox);
        assert_eq!(a.len(), 1);
        assert_eq!(a.improvements(), 1);
    }

    #[test]
    fn dominated_box_is_evicted() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(sol(&[0.55, 0.55]));
        assert_eq!(a.add(sol(&[0.15, 0.15])), ArchiveInsert::AddedNewBox);
        assert_eq!(a.len(), 1);
        assert_eq!(a.solutions()[0].objectives(), &[0.15, 0.15]);
        a.check_invariants().unwrap();
    }

    #[test]
    fn dominated_candidate_is_rejected() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(sol(&[0.15, 0.15]));
        assert_eq!(a.add(sol(&[0.55, 0.55])), ArchiveInsert::Rejected);
        assert_eq!(a.len(), 1);
        assert_eq!(a.rejects(), 1);
    }

    #[test]
    fn same_box_keeps_closer_to_corner() {
        let mut a = EpsilonArchive::uniform(2, 1.0);
        a.add(sol(&[0.9, 0.2]));
        // Same box (0,0); Pareto-nondominated with incumbent; closer to corner.
        assert_eq!(a.add(sol(&[0.3, 0.4])), ArchiveInsert::ReplacedInBox);
        assert_eq!(a.len(), 1);
        assert_eq!(a.solutions()[0].objectives(), &[0.3, 0.4]);
        // Same box, farther from corner: rejected.
        assert_eq!(a.add(sol(&[0.6, 0.7])), ArchiveInsert::Rejected);
        // ε-progress only counted once (the initial insertion).
        assert_eq!(a.improvements(), 1);
    }

    #[test]
    fn same_box_dominating_solution_replaces() {
        let mut a = EpsilonArchive::uniform(2, 1.0);
        a.add(sol(&[0.5, 0.5]));
        assert_eq!(a.add(sol(&[0.4, 0.4])), ArchiveInsert::ReplacedInBox);
        assert_eq!(a.solutions()[0].objectives(), &[0.4, 0.4]);
    }

    #[test]
    fn nondominated_boxes_coexist() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(sol(&[0.05, 0.95]));
        a.add(sol(&[0.95, 0.05]));
        a.add(sol(&[0.45, 0.45]));
        assert_eq!(a.len(), 3);
        assert_eq!(a.improvements(), 3);
        a.check_invariants().unwrap();
    }

    #[test]
    fn operator_credit_tracking() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        a.add(op_sol(&[0.05, 0.95], 2));
        a.add(op_sol(&[0.95, 0.05], 0));
        a.add(op_sol(&[0.96, 0.06], 0)); // rejected, no credit
        assert_eq!(a.operator_credits(), &[1, 0, 1]);
        a.reset_operator_credits();
        assert_eq!(a.operator_credits(), &[0, 0, 0]);
    }

    #[test]
    fn infeasible_placeholder_until_feasible_arrives() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        assert!(a.add(csol(&[0.1, 0.1], &[5.0])).accepted());
        // Less-violating infeasible replaces.
        assert_eq!(
            a.add(csol(&[0.9, 0.9], &[2.0])),
            ArchiveInsert::ReplacedInBox
        );
        assert_eq!(a.len(), 1);
        // More-violating infeasible rejected.
        assert_eq!(a.add(csol(&[0.0, 0.0], &[3.0])), ArchiveInsert::Rejected);
        // Feasible solution evicts the placeholder even if Pareto-worse.
        assert_eq!(a.add(csol(&[1.5, 1.5], &[0.0])), ArchiveInsert::AddedNewBox);
        assert_eq!(a.len(), 1);
        assert!(a.solutions()[0].is_feasible());
        // Infeasible solutions now rejected outright.
        assert_eq!(a.add(csol(&[0.0, 0.0], &[0.1])), ArchiveInsert::Rejected);
    }

    #[test]
    fn five_objective_inserts_hold_invariants() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut a = EpsilonArchive::uniform(5, 0.1);
        for _ in 0..500 {
            let objs: Vec<f64> = (0..5).map(|_| rng.gen::<f64>()).collect();
            a.add(Solution::from_parts(vec![], objs, vec![]));
        }
        a.check_invariants().unwrap();
        assert!(a.len() > 1);
        assert_eq!(a.accepts() + a.rejects(), 500);
    }

    #[test]
    fn generation_changes_iff_content_may_have_changed() {
        let mut a = EpsilonArchive::uniform(2, 0.1);
        let g0 = a.generation();
        a.add(sol(&[0.05, 0.95]));
        let g1 = a.generation();
        assert_ne!(g0, g1, "accepted insertion must bump the generation");
        // A rejected insertion leaves the content — and the generation —
        // untouched.
        a.add(sol(&[0.55, 0.95]));
        assert_eq!(a.generation(), g1);
        // Clearing empties the content, so the generation must move even
        // though nothing was accepted.
        a.clear_solutions();
        assert_ne!(a.generation(), g1);
    }

    #[test]
    #[should_panic(expected = "epsilons must be positive")]
    fn zero_epsilon_panics() {
        EpsilonArchive::new(vec![0.0]);
    }
}
