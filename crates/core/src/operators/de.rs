//! Differential evolution variation (Storn & Price 1997), `rand/1/bin`.
//!
//! Borg uses DE as a variation operator: the offspring starts from the first
//! parent and, per variable with probability `CR` (plus one forced index),
//! takes `a + F (b - c)` from three further distinct parents. Borg's
//! defaults are `CR = 0.1`, `F = 0.5`, with polynomial mutation applied
//! afterwards (the compound "DE+PM").

use super::{clamp_to_bounds, PolynomialMutation, Variation};
use crate::problem::Bounds;
use rand::{Rng, RngCore};

/// DE `rand/1/bin` variation, optionally chained with polynomial mutation.
#[derive(Debug, Clone)]
pub struct DifferentialEvolution {
    crossover_rate: f64,
    step_size: f64,
    mutation: Option<PolynomialMutation>,
}

impl DifferentialEvolution {
    /// Creates DE with binomial crossover rate `CR` and differential weight
    /// `F` (Borg default: 0.1, 0.5).
    pub fn new(crossover_rate: f64, step_size: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&crossover_rate),
            "crossover rate must be in [0,1]"
        );
        assert!(step_size > 0.0, "step size must be positive");
        Self {
            crossover_rate,
            step_size,
            mutation: None,
        }
    }

    /// Chains polynomial mutation after variation (forming DE+PM).
    pub fn with_mutation(mut self, pm: PolynomialMutation) -> Self {
        self.mutation = Some(pm);
        self
    }
}

impl Variation for DifferentialEvolution {
    fn name(&self) -> &str {
        if self.mutation.is_some() {
            "DE+PM"
        } else {
            "DE"
        }
    }

    fn arity(&self) -> usize {
        4
    }

    fn evolve(&self, parents: &[&[f64]], bounds: &[Bounds], rng: &mut dyn RngCore) -> Vec<f64> {
        let mut child = Vec::with_capacity(parents[0].len());
        self.evolve_into(parents, bounds, rng, &mut child);
        child
    }

    // borg-lint: hot-path
    fn evolve_into(
        &self,
        parents: &[&[f64]],
        bounds: &[Bounds],
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(parents.len(), 4);
        let base = parents[0];
        let a = parents[1];
        let b = parents[2];
        let c = parents[3];
        let l = base.len();
        let forced = rng.gen_range(0..l);
        out.clear();
        out.extend((0..l).map(|j| {
            if j == forced || rng.gen::<f64>() <= self.crossover_rate {
                a[j] + self.step_size * (b[j] - c[j])
            } else {
                base[j]
            }
        }));
        if let Some(pm) = &self.mutation {
            pm.mutate(out, bounds, rng);
        }
        clamp_to_bounds(out, bounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::check_operator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_bounds() {
        check_operator(&DifferentialEvolution::new(0.1, 0.5), 6, 500, 1);
        check_operator(
            &DifferentialEvolution::new(0.9, 0.5).with_mutation(PolynomialMutation::new(0.1, 20.0)),
            6,
            500,
            2,
        );
    }

    #[test]
    fn always_changes_at_least_one_variable() {
        // The forced index guarantees >= 1 differential component whenever
        // b != c there.
        let de = DifferentialEvolution::new(0.0, 0.5);
        let bounds = [Bounds::new(-10.0, 10.0); 5];
        let mut rng = StdRng::seed_from_u64(3);
        let base = [0.0; 5];
        let a = [0.0; 5];
        let b = [2.0; 5];
        let c = [1.0; 5];
        for _ in 0..100 {
            let child = de.evolve(&[&base[..], &a[..], &b[..], &c[..]], &bounds, &mut rng);
            let changed = child.iter().filter(|&&x| x != 0.0).count();
            assert_eq!(changed, 1, "CR=0 must change exactly the forced index");
            assert!(child.iter().any(|&x| (x - 0.5).abs() < 1e-12));
        }
    }

    #[test]
    fn full_crossover_rate_applies_differential_everywhere() {
        let de = DifferentialEvolution::new(1.0, 0.5);
        let bounds = [Bounds::new(-10.0, 10.0); 3];
        let mut rng = StdRng::seed_from_u64(4);
        let base = [9.0; 3];
        let a = [1.0; 3];
        let b = [4.0; 3];
        let c = [2.0; 3];
        let child = de.evolve(&[&base[..], &a[..], &b[..], &c[..]], &bounds, &mut rng);
        // a + F (b - c) = 1 + 0.5 * 2 = 2 in every coordinate.
        assert_eq!(child, vec![2.0; 3]);
    }

    #[test]
    fn identical_donors_reduce_to_first_donor() {
        let de = DifferentialEvolution::new(1.0, 0.5);
        let bounds = [Bounds::new(-10.0, 10.0); 2];
        let mut rng = StdRng::seed_from_u64(5);
        let base = [5.0, 5.0];
        let a = [1.0, -1.0];
        let same = [3.0, 3.0];
        let child = de.evolve(
            &[&base[..], &a[..], &same[..], &same[..]],
            &bounds,
            &mut rng,
        );
        assert_eq!(child, a);
    }
}
