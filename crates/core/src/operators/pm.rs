//! Polynomial mutation (Deb & Goyal 1996).
//!
//! Borg applies PM after SBX and DE (forming the compound SBX+PM and DE+PM
//! operators). PM perturbs each variable with a given probability by a
//! polynomially-distributed offset whose spread is controlled by the
//! distribution index `η_m` (larger = more local).

use super::{clamp_to_bounds, Variation};
use crate::problem::Bounds;
use rand::{Rng, RngCore};

/// Polynomial mutation operator.
#[derive(Debug, Clone)]
pub struct PolynomialMutation {
    rate: f64,
    distribution_index: f64,
}

impl PolynomialMutation {
    /// Creates PM with per-variable mutation probability `rate` and
    /// distribution index `η_m` (Borg default: `1/L`, 20).
    pub fn new(rate: f64, distribution_index: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "mutation rate must be in [0,1]"
        );
        assert!(distribution_index >= 0.0, "distribution index must be >= 0");
        Self {
            rate,
            distribution_index,
        }
    }

    /// Mutates a variable vector in place.
    pub fn mutate(&self, vars: &mut [f64], bounds: &[Bounds], rng: &mut dyn RngCore) {
        for (x, b) in vars.iter_mut().zip(bounds) {
            if rng.gen::<f64>() >= self.rate {
                continue;
            }
            let range = b.range();
            if range <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen();
            let mexp = 1.0 / (self.distribution_index + 1.0);
            // The bounded PM formulation from Deb's NSGA-II code: the
            // perturbation shrinks near the active bound so offspring remain
            // in range without clipping bias.
            let delta = if u < 0.5 {
                let d = (*x - b.lower) / range;
                let val = 2.0 * u + (1.0 - 2.0 * u) * (1.0 - d).powf(self.distribution_index + 1.0);
                val.powf(mexp) - 1.0
            } else {
                let d = (b.upper - *x) / range;
                let val = 2.0 * (1.0 - u)
                    + (2.0 * u - 1.0) * (1.0 - d).powf(self.distribution_index + 1.0);
                1.0 - val.powf(mexp)
            };
            *x += delta * range;
        }
        clamp_to_bounds(vars, bounds);
    }
}

impl Variation for PolynomialMutation {
    fn name(&self) -> &str {
        "PM"
    }

    fn arity(&self) -> usize {
        1
    }

    fn evolve(&self, parents: &[&[f64]], bounds: &[Bounds], rng: &mut dyn RngCore) -> Vec<f64> {
        let mut child = parents[0].to_vec();
        self.mutate(&mut child, bounds, rng);
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::{change_rate, check_operator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_bounds() {
        let pm = PolynomialMutation::new(1.0, 20.0);
        check_operator(&pm, 6, 500, 1);
    }

    #[test]
    fn zero_rate_is_identity() {
        let pm = PolynomialMutation::new(0.0, 20.0);
        assert_eq!(change_rate(&pm, 10, 200, 2), 0.0);
    }

    #[test]
    fn full_rate_changes_most_offspring() {
        let pm = PolynomialMutation::new(1.0, 20.0);
        assert!(change_rate(&pm, 10, 200, 3) > 0.99);
    }

    #[test]
    fn rate_one_over_l_changes_roughly_that_fraction_of_variables() {
        let l = 20;
        let pm = PolynomialMutation::new(1.0 / l as f64, 20.0);
        let bounds: Vec<Bounds> = (0..l).map(|_| Bounds::unit()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let mut total_changed = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            let parent = vec![0.5; l];
            let mut child = parent.clone();
            pm.mutate(&mut child, &bounds, &mut rng);
            total_changed += child.iter().zip(&parent).filter(|(a, b)| a != b).count();
        }
        let per_offspring = total_changed as f64 / trials as f64;
        // Expected: 1 variable mutated per offspring on average.
        assert!((per_offspring - 1.0).abs() < 0.2, "got {per_offspring}");
    }

    #[test]
    fn higher_index_means_more_local_perturbation() {
        let bounds = [Bounds::unit()];
        let spread = |eta: f64, seed: u64| {
            let pm = PolynomialMutation::new(1.0, eta);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut acc = 0.0;
            for _ in 0..5000 {
                let mut v = [0.5];
                pm.mutate(&mut v, &bounds, &mut rng);
                acc += (v[0] - 0.5).abs();
            }
            acc / 5000.0
        };
        assert!(spread(5.0, 9) > spread(100.0, 9));
    }

    #[test]
    fn degenerate_bounds_are_untouched() {
        let pm = PolynomialMutation::new(1.0, 20.0);
        let bounds = [Bounds::new(0.3, 0.3)];
        let mut rng = StdRng::seed_from_u64(5);
        let mut v = [0.3];
        pm.mutate(&mut v, &bounds, &mut rng);
        assert_eq!(v, [0.3]);
    }

    #[test]
    #[should_panic(expected = "mutation rate")]
    fn invalid_rate_panics() {
        PolynomialMutation::new(1.5, 20.0);
    }
}
