//! Multiparent unimodal normal distribution crossover (Kita, Ono &
//! Kobayashi 1999).
//!
//! UNDX is mean-centric: the offspring is distributed normally around the
//! centroid of the first `k−1` parents, with *primary* components along the
//! parent difference vectors (scaled by `ζ`) and *secondary* components
//! along random orthogonal directions scaled by the distance `D` of the
//! final parent to the centroid (scaled by `η/√L`). Borg uses 10 parents
//! with `ζ = 0.5`, `η = 0.35`.

use super::vecmath::{centroid, norm, sub, try_extend_basis, EPS};
use super::{clamp_to_bounds, standard_normal, Variation};
use crate::problem::Bounds;
use rand::RngCore;

/// UNDX operator.
#[derive(Debug, Clone)]
pub struct UnimodalNormalDistributionCrossover {
    parents: usize,
    zeta: f64,
    eta: f64,
}

impl UnimodalNormalDistributionCrossover {
    /// Creates UNDX with `parents` parents and spread parameters `ζ`
    /// (primary) and `η` (secondary). Borg default: 10 parents, 0.5, 0.35.
    pub fn new(parents: usize, zeta: f64, eta: f64) -> Self {
        assert!(parents >= 3, "UNDX needs at least three parents");
        assert!(zeta >= 0.0 && eta >= 0.0, "spreads must be non-negative");
        Self { parents, zeta, eta }
    }
}

impl Variation for UnimodalNormalDistributionCrossover {
    fn name(&self) -> &str {
        "UNDX"
    }

    fn arity(&self) -> usize {
        self.parents
    }

    fn evolve(&self, parents: &[&[f64]], bounds: &[Bounds], rng: &mut dyn RngCore) -> Vec<f64> {
        let mut child = Vec::with_capacity(parents[0].len());
        self.evolve_into(parents, bounds, rng, &mut child);
        child
    }

    // The child buffer is reused via `out`; the orthonormal-basis
    // temporaries are inherent to the construction and still allocate.
    fn evolve_into(
        &self,
        parents: &[&[f64]],
        bounds: &[Bounds],
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        let k = parents.len();
        let l = parents[0].len();

        // Centroid of the first k−1 parents defines the offspring center.
        let g = centroid(&parents[..k - 1]);

        // Primary directions: orthogonalized parent differences, each
        // remembered with its original magnitude so steps scale with the
        // parent spread.
        let mut basis: Vec<Vec<f64>> = Vec::new();
        let mut magnitudes: Vec<f64> = Vec::new();
        for p in &parents[..k - 1] {
            let v = sub(p, &g);
            let m = norm(&v);
            if m > EPS {
                let before = basis.len();
                if try_extend_basis(v, &mut basis) {
                    debug_assert_eq!(basis.len(), before + 1);
                    magnitudes.push(m);
                }
            }
        }

        // Secondary scale: distance of the final parent to the centroid.
        let d_vec = sub(parents[k - 1], &g);
        let dd = norm(&d_vec);

        out.clear();
        out.extend_from_slice(&g);
        let child = out;

        // Primary steps along parent-spanned directions.
        for (e, &m) in basis.iter().zip(&magnitudes) {
            let w = self.zeta * m * standard_normal(rng);
            for (c, &ex) in child.iter_mut().zip(e) {
                *c += w * ex;
            }
        }

        // Secondary steps along random directions orthogonal to the parent
        // span, filling the remaining L − |basis| dimensions.
        if dd > EPS {
            let primary = basis.len();
            let sigma = self.eta * dd / (l as f64).sqrt();
            let mut remaining = l.saturating_sub(primary);
            let mut attempts = 0;
            while remaining > 0 && attempts < 2 * l + 10 {
                attempts += 1;
                let v: Vec<f64> = (0..l).map(|_| standard_normal(rng)).collect();
                let before = basis.len();
                if try_extend_basis(v, &mut basis) {
                    let w = sigma * standard_normal(rng);
                    let e = &basis[before];
                    for (c, &ex) in child.iter_mut().zip(e) {
                        *c += w * ex;
                    }
                    remaining -= 1;
                }
            }
        }

        clamp_to_bounds(child, bounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::check_operator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_bounds() {
        check_operator(
            &UnimodalNormalDistributionCrossover::new(10, 0.5, 0.35),
            6,
            300,
            1,
        );
        check_operator(
            &UnimodalNormalDistributionCrossover::new(3, 0.5, 0.35),
            4,
            300,
            2,
        );
        check_operator(
            &UnimodalNormalDistributionCrossover::new(4, 0.5, 0.35),
            1,
            300,
            3,
        );
    }

    #[test]
    fn coincident_parents_yield_that_point() {
        let undx = UnimodalNormalDistributionCrossover::new(4, 0.5, 0.35);
        let bounds = [Bounds::unit(); 3];
        let p = [0.4, 0.5, 0.6];
        let parents = [&p[..], &p[..], &p[..], &p[..]];
        let mut rng = StdRng::seed_from_u64(4);
        let child = undx.evolve(&parents, &bounds, &mut rng);
        for (c, e) in child.iter().zip(&p) {
            assert!((c - e).abs() < 1e-9);
        }
    }

    #[test]
    fn offspring_center_on_centroid_of_primary_parents() {
        let undx = UnimodalNormalDistributionCrossover::new(3, 0.5, 0.35);
        let bounds = [Bounds::new(-10.0, 10.0); 2];
        let p1 = [0.0, 0.0];
        let p2 = [2.0, 0.0];
        let p3 = [1.0, 2.0]; // scaling parent
        let parents = [&p1[..], &p2[..], &p3[..]];
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut mean = [0.0; 2];
        for _ in 0..n {
            let c = undx.evolve(&parents, &bounds, &mut rng);
            mean[0] += c[0];
            mean[1] += c[1];
        }
        mean[0] /= n as f64;
        mean[1] /= n as f64;
        // Centroid of the first two parents is (1, 0).
        assert!((mean[0] - 1.0).abs() < 0.05, "mean = {mean:?}");
        assert!((mean[1]).abs() < 0.05, "mean = {mean:?}");
    }

    #[test]
    fn secondary_spread_scales_with_last_parent_distance() {
        // With parents spanning only the x-axis, the y component of the
        // offspring comes purely from secondary directions whose scale is
        // set by the last parent's distance to the centroid.
        let spread_y = |d: f64, seed: u64| {
            let undx = UnimodalNormalDistributionCrossover::new(3, 0.5, 0.35);
            let bounds = [Bounds::new(-100.0, 100.0); 2];
            let p1 = [-1.0, 0.0];
            let p2 = [1.0, 0.0];
            let p3 = [0.0, d];
            let parents = [&p1[..], &p2[..], &p3[..]];
            let mut rng = StdRng::seed_from_u64(seed);
            let mut acc = 0.0;
            for _ in 0..4000 {
                let c = undx.evolve(&parents, &bounds, &mut rng);
                acc += c[1].abs();
            }
            acc / 4000.0
        };
        assert!(spread_y(4.0, 6) > 2.0 * spread_y(0.5, 6));
    }
}
