//! Small dense vector helpers shared by the multiparent operators.
//!
//! PCX and UNDX need centroids, projections, and incremental Gram-Schmidt
//! orthogonalization over at most `min(parents, L)` directions; for the
//! decision-space sizes used by MOEA test suites (L ≲ 100) plain `Vec<f64>`
//! arithmetic is both the fastest and the clearest choice.

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `a - b` into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a += s * b` in place.
pub fn axpy(a: &mut [f64], s: f64, b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += s * y;
    }
}

/// Centroid of a set of equal-length vectors.
pub fn centroid(points: &[&[f64]]) -> Vec<f64> {
    assert!(!points.is_empty());
    let l = points[0].len();
    let mut g = vec![0.0; l];
    for p in points {
        axpy(&mut g, 1.0, p);
    }
    let inv = 1.0 / points.len() as f64;
    for x in &mut g {
        *x *= inv;
    }
    g
}

/// Removes from `v` (in place) its components along each unit vector in
/// `basis`, then returns the residual norm.
pub fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) -> f64 {
    for e in basis {
        let c = dot(v, e);
        axpy(v, -c, e);
    }
    norm(v)
}

/// Tolerance below which a residual is treated as numerically zero.
pub const EPS: f64 = 1e-10;

/// Attempts to extend an orthonormal `basis` with the direction of `v`.
/// Returns `true` if `v` contributed a new direction.
pub fn try_extend_basis(mut v: Vec<f64>, basis: &mut Vec<Vec<f64>>) -> bool {
    let n = orthogonalize(&mut v, basis);
    if n > EPS {
        for x in &mut v {
            *x /= n;
        }
        basis.push(v);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_sub_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 1.0]), vec![2.0, 3.0]);
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, 2.0, &[1.0, -1.0]);
        assert_eq!(a, vec![3.0, -1.0]);
    }

    #[test]
    fn centroid_of_triangle() {
        let p1 = [0.0, 0.0];
        let p2 = [3.0, 0.0];
        let p3 = [0.0, 3.0];
        assert_eq!(centroid(&[&p1, &p2, &p3]), vec![1.0, 1.0]);
    }

    #[test]
    fn gram_schmidt_builds_orthonormal_basis() {
        let mut basis = Vec::new();
        assert!(try_extend_basis(vec![2.0, 0.0, 0.0], &mut basis));
        assert!(try_extend_basis(vec![1.0, 1.0, 0.0], &mut basis));
        assert!(try_extend_basis(vec![1.0, 1.0, 1.0], &mut basis));
        // Fourth vector in 3-space must be dependent.
        assert!(!try_extend_basis(vec![0.3, -0.2, 0.9], &mut basis));
        assert_eq!(basis.len(), 3);
        for i in 0..3 {
            assert!((norm(&basis[i]) - 1.0).abs() < 1e-12);
            for j in (i + 1)..3 {
                assert!(dot(&basis[i], &basis[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn orthogonalize_removes_projection() {
        let basis = vec![vec![1.0, 0.0]];
        let mut v = vec![3.0, 4.0];
        let r = orthogonalize(&mut v, &basis);
        assert!((r - 4.0).abs() < 1e-12);
        assert!((v[0]).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_does_not_extend_basis() {
        let mut basis = vec![vec![1.0, 0.0]];
        assert!(!try_extend_basis(vec![0.0, 0.0], &mut basis));
        assert_eq!(basis.len(), 1);
    }
}
