//! Variation operators.
//!
//! Borg evolves its population with an auto-adapted ensemble of six
//! real-valued operators (Hadka & Reed 2012, §3.3; this paper §II):
//!
//! | Operator | Source | Default configuration |
//! |---|---|---|
//! | SBX + PM | Deb & Agrawal 1994 | rate 1.0, η_c = 15; PM rate 1/L, η_m = 20 |
//! | DE + PM  | Storn & Price 1997 | CR = 0.1, F = 0.5 |
//! | PCX      | Deb, Joshi & Anand 2002 | 10 parents, η = ζ = 0.1 |
//! | SPX      | Tsutsui, Yamamura & Higuchi 1999 | 10 parents, expansion 3 |
//! | UNDX     | Kita, Ono & Kobayashi 1999 | 10 parents, ζ = 0.5, η = 0.35 |
//! | UM       | uniform mutation | rate 1/L |
//!
//! Each operator consumes `arity()` parent variable vectors and produces one
//! offspring variable vector, clamped to the problem bounds.

mod adaptive;
mod de;
mod pcx;
mod pm;
mod sbx;
mod spx;
mod um;
mod undx;
mod vecmath;

pub use adaptive::{AdaptiveEnsemble, EnsembleConfig};
pub use de::DifferentialEvolution;
pub use pcx::ParentCentricCrossover;
pub use pm::PolynomialMutation;
pub use sbx::SimulatedBinaryCrossover;
pub use spx::SimplexCrossover;
pub use um::UniformMutation;
pub use undx::UnimodalNormalDistributionCrossover;

use crate::problem::Bounds;
use rand::RngCore;

/// A variation operator: maps `arity()` parents to one offspring.
pub trait Variation: Send + Sync {
    /// Short name used in reports (e.g. `"SBX"`).
    fn name(&self) -> &str;

    /// Number of parents required.
    fn arity(&self) -> usize;

    /// Produces one offspring variable vector. Implementations must return a
    /// vector of the same length as each parent, with every component inside
    /// its [`Bounds`].
    fn evolve(&self, parents: &[&[f64]], bounds: &[Bounds], rng: &mut dyn RngCore) -> Vec<f64>;

    /// As [`evolve`](Variation::evolve), writing the offspring into `out`
    /// (cleared first) so the steady-state loop can reuse one buffer per
    /// candidate. Implementations must draw the identical RNG stream and
    /// produce the identical child as `evolve`; the default delegates.
    fn evolve_into(
        &self,
        parents: &[&[f64]],
        bounds: &[Bounds],
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        let child = self.evolve(parents, bounds, rng);
        out.clear();
        out.extend_from_slice(&child);
    }
}

/// Clamps every component of `vars` into its bounds (shared helper).
pub(crate) fn clamp_to_bounds(vars: &mut [f64], bounds: &[Bounds]) {
    for (v, b) in vars.iter_mut().zip(bounds) {
        if !v.is_finite() {
            // Degenerate numerics (e.g. Gram-Schmidt breakdown) fall back to
            // the interval midpoint rather than propagating NaN.
            *v = 0.5 * (b.lower + b.upper);
        } else {
            *v = b.clamp(*v);
        }
    }
}

/// Samples a standard normal deviate via the Marsaglia polar method.
///
/// Implemented in-tree (rather than pulling in `rand_distr`) because the
/// models crate also needs pdf/CDF machinery we hand-roll; see DESIGN.md §6.
pub(crate) fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    use rand::Rng;
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Builds the standard Borg operator ensemble for a problem with `l`
/// decision variables.
///
/// Returns the six operators in the canonical order used throughout the
/// reports: SBX+PM, DE+PM, PCX, SPX, UNDX, UM.
pub fn standard_borg_operators(l: usize) -> Vec<Box<dyn Variation>> {
    let pm = PolynomialMutation::new(1.0 / l.max(1) as f64, 20.0);
    vec![
        Box::new(SimulatedBinaryCrossover::new(1.0, 15.0).with_mutation(pm.clone())),
        Box::new(DifferentialEvolution::new(0.1, 0.5).with_mutation(pm)),
        Box::new(ParentCentricCrossover::new(10, 0.1, 0.1)),
        Box::new(SimplexCrossover::new(10, 3.0)),
        Box::new(UnimodalNormalDistributionCrossover::new(10, 0.5, 0.35)),
        Box::new(UniformMutation::new(1.0 / l.max(1) as f64)),
    ]
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exercises an operator on random parents and checks offspring sanity.
    pub fn check_operator(op: &dyn Variation, l: usize, trials: usize, seed: u64) {
        let bounds: Vec<Bounds> = (0..l).map(|_| Bounds::new(-2.0, 3.0)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..trials {
            let parents: Vec<Vec<f64>> = (0..op.arity())
                .map(|_| {
                    (0..l)
                        .map(|i| rng.gen_range(bounds[i].lower..bounds[i].upper))
                        .collect()
                })
                .collect();
            let refs: Vec<&[f64]> = parents.iter().map(|p| p.as_slice()).collect();
            // `evolve_into` must draw the same stream and produce the same
            // child as `evolve` (the engine relies on this for bit-identical
            // determinism), so run both from a cloned RNG and compare.
            let mut rng_into = rng.clone();
            let child = op.evolve(&refs, &bounds, &mut rng);
            let mut reused = vec![42.0; 3]; // stale content must be discarded
            op.evolve_into(&refs, &bounds, &mut rng_into, &mut reused);
            assert_eq!(
                child,
                reused,
                "{} evolve_into diverged from evolve",
                op.name()
            );
            assert_eq!(rng.gen::<u64>(), rng_into.gen::<u64>());
            assert_eq!(child.len(), l, "{} produced wrong arity", op.name());
            for (j, (&c, b)) in child.iter().zip(&bounds).enumerate() {
                assert!(
                    c.is_finite() && b.contains(c),
                    "{} produced out-of-bounds component {} = {}",
                    op.name(),
                    j,
                    c
                );
            }
        }
    }

    /// Measures how often the offspring differs from the first parent.
    pub fn change_rate(op: &dyn Variation, l: usize, trials: usize, seed: u64) -> f64 {
        let bounds: Vec<Bounds> = (0..l).map(|_| Bounds::unit()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut changed = 0usize;
        for _ in 0..trials {
            let parents: Vec<Vec<f64>> = (0..op.arity())
                .map(|_| (0..l).map(|_| rng.gen::<f64>()).collect())
                .collect();
            let refs: Vec<&[f64]> = parents.iter().map(|p| p.as_slice()).collect();
            let child = op.evolve(&refs, &bounds, &mut rng);
            if child != parents[0] {
                changed += 1;
            }
        }
        changed as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clamp_fixes_nan_and_out_of_range() {
        let bounds = [Bounds::new(0.0, 1.0), Bounds::new(-1.0, 1.0)];
        let mut v = [f64::NAN, 5.0];
        clamp_to_bounds(&mut v, &bounds);
        assert_eq!(v, [0.5, 1.0]);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn standard_ensemble_has_six_operators() {
        let ops = standard_borg_operators(10);
        let names: Vec<&str> = ops.iter().map(|o| o.name()).collect();
        assert_eq!(names, ["SBX+PM", "DE+PM", "PCX", "SPX", "UNDX", "UM"]);
    }

    #[test]
    fn all_standard_operators_respect_bounds() {
        for op in standard_borg_operators(8) {
            test_support::check_operator(op.as_ref(), 8, 200, 42);
        }
    }

    #[test]
    fn all_standard_operators_work_on_one_variable() {
        for op in standard_borg_operators(1) {
            test_support::check_operator(op.as_ref(), 1, 100, 7);
        }
    }
}
