//! The auto-adaptive operator ensemble.
//!
//! Borg selects among its variation operators with probabilities
//! proportional to each operator's recent contribution to the ε-dominance
//! archive (Hadka & Reed 2012, §3.3):
//!
//! ```text
//! p_i = (c_i + ζ) / (Σ_j c_j + K ζ)
//! ```
//!
//! where `c_i` counts archive members produced by operator `i` and `ζ = 1`
//! guarantees every operator keeps a nonzero chance of selection (so a
//! currently-unproductive operator can recover when the search landscape
//! changes). Probabilities are recomputed every `update_frequency` accepted
//! evaluations.

use super::Variation;
use rand::{Rng, RngCore};

/// Configuration for the adaptive ensemble.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleConfig {
    /// Smoothing constant ζ in the probability update (Borg default 1.0).
    pub zeta: f64,
    /// Recompute probabilities every this many evaluations (default 100).
    pub update_frequency: u64,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        Self {
            zeta: 1.0,
            update_frequency: 100,
        }
    }
}

/// The operator ensemble with adaptive selection probabilities.
pub struct AdaptiveEnsemble {
    operators: Vec<Box<dyn Variation>>,
    probabilities: Vec<f64>,
    config: EnsembleConfig,
    evaluations_since_update: u64,
    selections: Vec<u64>,
}

impl AdaptiveEnsemble {
    /// Creates an ensemble with uniform initial probabilities.
    ///
    /// # Panics
    /// If `operators` is empty or ζ is not positive.
    pub fn new(operators: Vec<Box<dyn Variation>>, config: EnsembleConfig) -> Self {
        assert!(
            !operators.is_empty(),
            "ensemble needs at least one operator"
        );
        assert!(config.zeta > 0.0, "zeta must be positive");
        let k = operators.len();
        Self {
            operators,
            probabilities: vec![1.0 / k as f64; k],
            config,
            evaluations_since_update: 0,
            selections: vec![0; k],
        }
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// Whether the ensemble is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// Current selection probabilities (sums to 1).
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Operator accessor.
    pub fn operator(&self, i: usize) -> &dyn Variation {
        self.operators[i].as_ref()
    }

    /// Operator names in ensemble order.
    pub fn names(&self) -> Vec<&str> {
        self.operators.iter().map(|o| o.name()).collect()
    }

    /// How many times each operator has been selected.
    pub fn selection_counts(&self) -> &[u64] {
        &self.selections
    }

    /// Roulette-wheel selects an operator index.
    pub fn select(&mut self, rng: &mut dyn RngCore) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.probabilities.iter().enumerate() {
            acc += p;
            if u < acc {
                self.selections[i] += 1;
                return i;
            }
        }
        // Floating-point slack: fall back to the last operator.
        let last = self.probabilities.len() - 1;
        self.selections[last] += 1;
        last
    }

    /// Notifies the ensemble that one evaluation completed; recomputes
    /// probabilities from `credits` (archive contributions per operator)
    /// every `update_frequency` calls. Returns `true` when an update ran.
    pub fn on_evaluation(&mut self, credits: &[u64]) -> bool {
        self.evaluations_since_update += 1;
        if self.evaluations_since_update >= self.config.update_frequency {
            self.evaluations_since_update = 0;
            self.update_probabilities(credits);
            true
        } else {
            false
        }
    }

    /// Recomputes `p_i = (c_i + ζ) / (Σ c_j + K ζ)` immediately.
    pub fn update_probabilities(&mut self, credits: &[u64]) {
        let k = self.operators.len();
        let total: f64 = (0..k)
            .map(|i| credits.get(i).copied().unwrap_or(0) as f64)
            .sum::<f64>()
            + k as f64 * self.config.zeta;
        for (i, p) in self.probabilities.iter_mut().enumerate() {
            let c = credits.get(i).copied().unwrap_or(0) as f64;
            *p = (c + self.config.zeta) / total;
        }
    }
}

impl std::fmt::Debug for AdaptiveEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveEnsemble")
            .field("operators", &self.names())
            .field("probabilities", &self.probabilities)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::standard_borg_operators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ensemble() -> AdaptiveEnsemble {
        AdaptiveEnsemble::new(standard_borg_operators(10), EnsembleConfig::default())
    }

    #[test]
    fn initial_probabilities_are_uniform() {
        let e = ensemble();
        for &p in e.probabilities() {
            assert!((p - 1.0 / 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_always_sum_to_one() {
        let mut e = ensemble();
        e.update_probabilities(&[10, 0, 0, 5, 0, 1]);
        let sum: f64 = e.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn credited_operator_gains_probability() {
        let mut e = ensemble();
        e.update_probabilities(&[100, 0, 0, 0, 0, 0]);
        let p = e.probabilities();
        assert!(p[0] > 0.9, "p = {p:?}");
        for &q in &p[1..] {
            assert!(q > 0.0, "zeta must keep all operators alive");
            assert!(q < 0.02);
        }
    }

    #[test]
    fn update_fires_at_configured_frequency() {
        let mut e = AdaptiveEnsemble::new(
            standard_borg_operators(10),
            EnsembleConfig {
                zeta: 1.0,
                update_frequency: 3,
            },
        );
        assert!(!e.on_evaluation(&[5, 0, 0, 0, 0, 0]));
        assert!(!e.on_evaluation(&[5, 0, 0, 0, 0, 0]));
        assert!(e.on_evaluation(&[5, 0, 0, 0, 0, 0]));
        assert!(e.probabilities()[0] > e.probabilities()[1]);
    }

    #[test]
    fn selection_tracks_probabilities() {
        let mut e = ensemble();
        e.update_probabilities(&[1000, 0, 0, 0, 0, 0]);
        let mut rng = StdRng::seed_from_u64(8);
        let mut count0 = 0;
        for _ in 0..1000 {
            if e.select(&mut rng) == 0 {
                count0 += 1;
            }
        }
        assert!(count0 > 900, "operator 0 selected {count0}/1000");
        assert_eq!(e.selection_counts().iter().sum::<u64>(), 1000);
    }

    #[test]
    fn short_credit_slice_is_padded_with_zeros() {
        let mut e = ensemble();
        // Credits vector shorter than the operator count must not panic.
        e.update_probabilities(&[3]);
        let sum: f64 = e.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(e.probabilities()[0] > e.probabilities()[1]);
    }
}
