//! Simplex crossover (Tsutsui, Yamamura & Higuchi 1999).
//!
//! SPX samples offspring uniformly from a simplex formed by expanding the
//! parent simplex about its centroid by a factor `ε` (the *expansion rate*;
//! Tsutsui's recommendation is `√(n+1)` for `n+1` parents, Borg uses 3 with
//! 10 parents). It is a mean-centric multiparent operator: offspring are
//! distributed around the parent centroid.

use super::{clamp_to_bounds, Variation};
use crate::problem::Bounds;
use rand::{Rng, RngCore};

/// SPX operator.
#[derive(Debug, Clone)]
pub struct SimplexCrossover {
    parents: usize,
    expansion: f64,
}

impl SimplexCrossover {
    /// Creates SPX with `parents` parents and expansion rate `ε` (Borg
    /// default: 10, 3.0).
    pub fn new(parents: usize, expansion: f64) -> Self {
        assert!(parents >= 2, "SPX needs at least two parents");
        assert!(expansion > 0.0, "expansion rate must be positive");
        Self { parents, expansion }
    }
}

impl Variation for SimplexCrossover {
    fn name(&self) -> &str {
        "SPX"
    }

    fn arity(&self) -> usize {
        self.parents
    }

    fn evolve(&self, parents: &[&[f64]], bounds: &[Bounds], rng: &mut dyn RngCore) -> Vec<f64> {
        let mut child = Vec::with_capacity(parents[0].len());
        self.evolve_into(parents, bounds, rng, &mut child);
        child
    }

    // The child buffer is reused via `out`; the recursive construction's
    // centroid/offset temporaries are inherent and still allocate.
    fn evolve_into(
        &self,
        parents: &[&[f64]],
        bounds: &[Bounds],
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        let n = parents.len();
        let l = parents[0].len();

        // Centroid of the parent simplex.
        let mut centroid = vec![0.0; l];
        for p in parents {
            for (g, &x) in centroid.iter_mut().zip(*p) {
                *g += x;
            }
        }
        for g in &mut centroid {
            *g /= n as f64;
        }

        // Expanded vertices: z_k = O + ε (x_k − O).
        // The offspring is built with Tsutsui's recursive construction, which
        // samples uniformly from the expanded simplex.
        let z = |k: usize, j: usize| centroid[j] + self.expansion * (parents[k][j] - centroid[j]);

        let mut c_prev = vec![0.0; l]; // C_0 = 0
        for k in 1..n {
            // r_k = u^(1/k) makes the barycentric weights Dirichlet(1,…,1),
            // i.e. uniform over the expanded simplex (stick-breaking: the sum
            // of the first k weights of a uniform (k+1)-simplex point is
            // Beta(k, 1)-distributed, whose inverse CDF is u^(1/k)).
            let u: f64 = rng.gen();
            let r = u.powf(1.0 / k as f64);
            let mut c_k = vec![0.0; l];
            for j in 0..l {
                c_k[j] = r * (z(k - 1, j) - z(k, j) + c_prev[j]);
            }
            c_prev = c_k;
        }

        out.clear();
        out.extend((0..l).map(|j| z(n - 1, j) + c_prev[j]));
        clamp_to_bounds(out, bounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::check_operator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_bounds() {
        check_operator(&SimplexCrossover::new(10, 3.0), 6, 300, 1);
        check_operator(&SimplexCrossover::new(3, 1.5), 4, 300, 2);
        check_operator(&SimplexCrossover::new(2, 1.0), 1, 300, 3);
    }

    #[test]
    fn coincident_parents_yield_that_point() {
        let spx = SimplexCrossover::new(4, 3.0);
        let bounds = [Bounds::unit(); 3];
        let p = [0.4, 0.5, 0.6];
        let parents = [&p[..], &p[..], &p[..], &p[..]];
        let mut rng = StdRng::seed_from_u64(4);
        let child = spx.evolve(&parents, &bounds, &mut rng);
        for (c, e) in child.iter().zip(&p) {
            assert!((c - e).abs() < 1e-12);
        }
    }

    #[test]
    fn offspring_mean_is_parent_centroid() {
        // SPX is mean-centric: E[child] = centroid of parents.
        let spx = SimplexCrossover::new(3, 1.0);
        let bounds = [Bounds::new(-10.0, 10.0); 2];
        let p1 = [0.0, 0.0];
        let p2 = [3.0, 0.0];
        let p3 = [0.0, 3.0];
        let parents = [&p1[..], &p2[..], &p3[..]];
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut mean = [0.0; 2];
        for _ in 0..n {
            let c = spx.evolve(&parents, &bounds, &mut rng);
            mean[0] += c[0];
            mean[1] += c[1];
        }
        mean[0] /= n as f64;
        mean[1] /= n as f64;
        assert!((mean[0] - 1.0).abs() < 0.05, "mean = {mean:?}");
        assert!((mean[1] - 1.0).abs() < 0.05, "mean = {mean:?}");
    }

    #[test]
    fn expansion_one_stays_inside_parent_simplex() {
        // With ε = 1 the sampling simplex is the parent simplex itself, so
        // every barycentric coordinate of the child is in [0, 1].
        let spx = SimplexCrossover::new(3, 1.0);
        let bounds = [Bounds::new(-10.0, 10.0); 2];
        let p1 = [0.0, 0.0];
        let p2 = [1.0, 0.0];
        let p3 = [0.0, 1.0];
        let parents = [&p1[..], &p2[..], &p3[..]];
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..2000 {
            let c = spx.evolve(&parents, &bounds, &mut rng);
            // For this triangle, membership is x >= 0, y >= 0, x + y <= 1.
            assert!(c[0] >= -1e-9 && c[1] >= -1e-9 && c[0] + c[1] <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn larger_expansion_spreads_offspring_wider() {
        let spread = |eps: f64| {
            let spx = SimplexCrossover::new(3, eps);
            let bounds = [Bounds::new(-100.0, 100.0); 2];
            let p1 = [0.0, 0.0];
            let p2 = [1.0, 0.0];
            let p3 = [0.0, 1.0];
            let parents = [&p1[..], &p2[..], &p3[..]];
            let mut rng = StdRng::seed_from_u64(7);
            let mut acc = 0.0;
            for _ in 0..3000 {
                let c = spx.evolve(&parents, &bounds, &mut rng);
                let dx = c[0] - 1.0 / 3.0;
                let dy = c[1] - 1.0 / 3.0;
                acc += (dx * dx + dy * dy).sqrt();
            }
            acc / 3000.0
        };
        assert!(spread(3.0) > 2.0 * spread(1.0));
    }
}
