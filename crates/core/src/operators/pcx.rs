//! Parent-centric crossover (Deb, Joshi & Anand 2002).
//!
//! PCX centers the offspring distribution on one *index parent* rather than
//! on the parent centroid (contrast with SPX/UNDX): the offspring is the
//! index parent plus a zero-mean normal step along the parent-to-centroid
//! direction (`ζ`) and normal steps along an orthonormal complement scaled
//! by the mean perpendicular spread of the other parents (`η`). Borg uses
//! 10 parents with `η = ζ = 0.1`.

use super::vecmath::{centroid, dot, norm, orthogonalize, sub, try_extend_basis, EPS};
use super::{clamp_to_bounds, standard_normal, Variation};
use crate::problem::Bounds;
use rand::RngCore;

/// PCX operator.
#[derive(Debug, Clone)]
pub struct ParentCentricCrossover {
    parents: usize,
    eta: f64,
    zeta: f64,
}

impl ParentCentricCrossover {
    /// Creates PCX with `parents` parents and spread parameters `η`
    /// (orthogonal) and `ζ` (along the principal direction). Borg default:
    /// 10 parents, η = ζ = 0.1.
    pub fn new(parents: usize, eta: f64, zeta: f64) -> Self {
        assert!(parents >= 2, "PCX needs at least two parents");
        assert!(eta >= 0.0 && zeta >= 0.0, "spreads must be non-negative");
        Self { parents, eta, zeta }
    }
}

impl Variation for ParentCentricCrossover {
    fn name(&self) -> &str {
        "PCX"
    }

    fn arity(&self) -> usize {
        self.parents
    }

    fn evolve(&self, parents: &[&[f64]], bounds: &[Bounds], rng: &mut dyn RngCore) -> Vec<f64> {
        let mut child = Vec::with_capacity(parents[0].len());
        self.evolve_into(parents, bounds, rng, &mut child);
        child
    }

    // The child buffer is reused via `out`; the O(k·L) basis temporaries are
    // inherent to the Gram-Schmidt construction and still allocate.
    fn evolve_into(
        &self,
        parents: &[&[f64]],
        bounds: &[Bounds],
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        let k = parents.len();
        // The last parent is the index parent the offspring centers on (the
        // caller places the tournament-selected parent last).
        let index_parent = parents[k - 1];
        let g = centroid(parents);
        let d = sub(index_parent, &g);
        let d_norm = norm(&d);

        out.clear();
        out.extend_from_slice(index_parent);
        let child = out;

        if d_norm > EPS {
            // Unit principal direction.
            let d_hat: Vec<f64> = d.iter().map(|x| x / d_norm).collect();

            // Mean perpendicular distance of the other parents to the
            // principal axis, and an orthonormal basis of their span minus
            // the principal direction.
            let mut basis = vec![d_hat.clone()];
            let mut perp_sum = 0.0;
            let mut perp_count = 0usize;
            for p in &parents[..k - 1] {
                let v = sub(p, &g);
                let along = dot(&v, &d_hat);
                let perp_sq = dot(&v, &v) - along * along;
                if perp_sq > 0.0 {
                    perp_sum += perp_sq.sqrt();
                    perp_count += 1;
                }
                try_extend_basis(v, &mut basis);
            }
            let d_bar = if perp_count > 0 {
                perp_sum / perp_count as f64
            } else {
                0.0
            };

            // Step along the principal direction: w_ζ d (d unnormalized, as
            // in Deb's formulation: the step scales with |x_p − g|).
            let w_zeta = self.zeta * standard_normal(rng);
            for (c, &dx) in child.iter_mut().zip(&d) {
                *c += w_zeta * dx;
            }

            // Steps along the orthonormal complement directions (basis
            // entries after the principal one), scaled by the mean spread.
            for e in &basis[1..] {
                let w_eta = self.eta * d_bar * standard_normal(rng);
                for (c, &ex) in child.iter_mut().zip(e) {
                    *c += w_eta * ex;
                }
            }
        } else {
            // Index parent coincides with the centroid (e.g. all parents
            // equal): perturb isotropically using the parent spread.
            let mut spread = 0.0;
            for p in &parents[..k - 1] {
                let mut v = sub(p, &g);
                spread += orthogonalize(&mut v, &[]);
            }
            spread /= (k - 1).max(1) as f64;
            for c in child.iter_mut() {
                *c += self.eta * spread * standard_normal(rng);
            }
        }

        clamp_to_bounds(child, bounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::check_operator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_bounds() {
        check_operator(&ParentCentricCrossover::new(10, 0.1, 0.1), 6, 300, 1);
        check_operator(&ParentCentricCrossover::new(3, 0.5, 0.5), 4, 300, 2);
        check_operator(&ParentCentricCrossover::new(2, 0.1, 0.1), 1, 300, 3);
    }

    #[test]
    fn coincident_parents_yield_that_point() {
        let pcx = ParentCentricCrossover::new(4, 0.1, 0.1);
        let bounds = [Bounds::unit(); 3];
        let p = [0.4, 0.5, 0.6];
        let parents = [&p[..], &p[..], &p[..], &p[..]];
        let mut rng = StdRng::seed_from_u64(4);
        let child = pcx.evolve(&parents, &bounds, &mut rng);
        for (c, e) in child.iter().zip(&p) {
            assert!((c - e).abs() < 1e-9);
        }
    }

    #[test]
    fn offspring_center_on_index_parent() {
        // PCX is parent-centric: E[child] = index parent (the last one).
        let pcx = ParentCentricCrossover::new(3, 0.1, 0.1);
        let bounds = [Bounds::new(-10.0, 10.0); 2];
        let p1 = [0.0, 0.0];
        let p2 = [1.0, 0.0];
        let px = [0.0, 1.0]; // index parent
        let parents = [&p1[..], &p2[..], &px[..]];
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut mean = [0.0; 2];
        for _ in 0..n {
            let c = pcx.evolve(&parents, &bounds, &mut rng);
            mean[0] += c[0];
            mean[1] += c[1];
        }
        mean[0] /= n as f64;
        mean[1] /= n as f64;
        assert!((mean[0] - px[0]).abs() < 0.05, "mean = {mean:?}");
        assert!((mean[1] - px[1]).abs() < 0.05, "mean = {mean:?}");
    }

    #[test]
    fn larger_zeta_spreads_along_principal_direction() {
        let spread = |zeta: f64| {
            let pcx = ParentCentricCrossover::new(3, 0.0, zeta);
            let bounds = [Bounds::new(-100.0, 100.0); 2];
            let p1 = [-1.0, 0.0];
            let p2 = [1.0, 0.0];
            let px = [0.0, 3.0];
            let parents = [&p1[..], &p2[..], &px[..]];
            let mut rng = StdRng::seed_from_u64(6);
            let mut acc = 0.0;
            for _ in 0..3000 {
                let c = pcx.evolve(&parents, &bounds, &mut rng);
                acc += (c[1] - 3.0).abs();
            }
            acc / 3000.0
        };
        assert!(spread(0.5) > 2.0 * spread(0.05));
    }
}
