//! Simulated binary crossover (Deb & Agrawal 1994).
//!
//! SBX mimics single-point binary crossover on real variables: offspring are
//! distributed around the parents with a spread controlled by the
//! distribution index `η_c`. Borg uses SBX with rate 1.0 and `η_c = 15`,
//! followed by polynomial mutation (the compound operator "SBX+PM").

use super::{clamp_to_bounds, PolynomialMutation, Variation};
use crate::problem::Bounds;
use rand::{Rng, RngCore};

/// SBX operator, optionally chained with polynomial mutation.
#[derive(Debug, Clone)]
pub struct SimulatedBinaryCrossover {
    rate: f64,
    distribution_index: f64,
    mutation: Option<PolynomialMutation>,
}

impl SimulatedBinaryCrossover {
    /// Creates SBX with per-variable crossover probability `rate` and
    /// distribution index `η_c` (Borg default: 1.0, 15).
    pub fn new(rate: f64, distribution_index: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "crossover rate must be in [0,1]"
        );
        assert!(distribution_index >= 0.0, "distribution index must be >= 0");
        Self {
            rate,
            distribution_index,
            mutation: None,
        }
    }

    /// Chains polynomial mutation after crossover (forming SBX+PM).
    pub fn with_mutation(mut self, pm: PolynomialMutation) -> Self {
        self.mutation = Some(pm);
        self
    }

    /// The bounded SBX spread factor for one variable pair.
    fn crossover_pair(&self, x1: f64, x2: f64, b: Bounds, rng: &mut dyn RngCore) -> f64 {
        // Identical parents produce identical offspring.
        if (x2 - x1).abs() < 1e-14 {
            return x1;
        }
        let (lo, hi) = if x1 < x2 { (x1, x2) } else { (x2, x1) };
        let u: f64 = rng.gen();
        let exp = 1.0 / (self.distribution_index + 1.0);
        let beta = if u <= 0.5 {
            (2.0 * u).powf(exp)
        } else {
            (1.0 / (2.0 * (1.0 - u))).powf(exp)
        };
        // Pick one of the two symmetric offspring at random.
        let child = if rng.gen::<bool>() {
            0.5 * ((1.0 + beta) * lo + (1.0 - beta) * hi)
        } else {
            0.5 * ((1.0 - beta) * lo + (1.0 + beta) * hi)
        };
        b.clamp(child)
    }
}

impl Variation for SimulatedBinaryCrossover {
    fn name(&self) -> &str {
        if self.mutation.is_some() {
            "SBX+PM"
        } else {
            "SBX"
        }
    }

    fn arity(&self) -> usize {
        2
    }

    fn evolve(&self, parents: &[&[f64]], bounds: &[Bounds], rng: &mut dyn RngCore) -> Vec<f64> {
        let mut child = Vec::with_capacity(parents[0].len());
        self.evolve_into(parents, bounds, rng, &mut child);
        child
    }

    // borg-lint: hot-path
    fn evolve_into(
        &self,
        parents: &[&[f64]],
        bounds: &[Bounds],
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(parents.len(), 2);
        let p1 = parents[0];
        let p2 = parents[1];
        out.clear();
        out.extend(p1.iter().zip(p2).zip(bounds).map(|((&x1, &x2), &b)| {
            if rng.gen::<f64>() <= self.rate {
                self.crossover_pair(x1, x2, b, rng)
            } else {
                x1
            }
        }));
        if let Some(pm) = &self.mutation {
            pm.mutate(out, bounds, rng);
        }
        clamp_to_bounds(out, bounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::check_operator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_bounds() {
        check_operator(&SimulatedBinaryCrossover::new(1.0, 15.0), 6, 500, 1);
        check_operator(
            &SimulatedBinaryCrossover::new(1.0, 15.0)
                .with_mutation(PolynomialMutation::new(0.2, 20.0)),
            6,
            500,
            2,
        );
    }

    #[test]
    fn identical_parents_yield_identical_offspring() {
        let sbx = SimulatedBinaryCrossover::new(1.0, 15.0);
        let bounds = [Bounds::unit(); 4];
        let mut rng = StdRng::seed_from_u64(3);
        let p = [0.25, 0.5, 0.75, 0.1];
        let child = sbx.evolve(&[&p, &p], &bounds, &mut rng);
        assert_eq!(child, p);
    }

    #[test]
    fn offspring_mean_matches_parent_mean() {
        // SBX is mean-preserving in expectation (pick of c1/c2 is symmetric).
        let sbx = SimulatedBinaryCrossover::new(1.0, 15.0);
        let bounds = [Bounds::new(-10.0, 10.0)];
        let mut rng = StdRng::seed_from_u64(4);
        let p1 = [1.0];
        let p2 = [3.0];
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sbx.evolve(&[&p1[..], &p2[..]], &bounds, &mut rng)[0])
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn higher_index_concentrates_offspring_near_parents() {
        let near_parent_fraction = |eta: f64| {
            let sbx = SimulatedBinaryCrossover::new(1.0, eta);
            let bounds = [Bounds::new(-10.0, 10.0)];
            let mut rng = StdRng::seed_from_u64(5);
            let p1 = [1.0];
            let p2 = [3.0];
            let n = 5000;
            (0..n)
                .filter(|_| {
                    let c = sbx.evolve(&[&p1[..], &p2[..]], &bounds, &mut rng)[0];
                    (c - 1.0).abs() < 0.2 || (c - 3.0).abs() < 0.2
                })
                .count() as f64
                / n as f64
        };
        assert!(near_parent_fraction(50.0) > near_parent_fraction(2.0));
    }

    #[test]
    fn zero_rate_copies_first_parent() {
        let sbx = SimulatedBinaryCrossover::new(0.0, 15.0);
        let bounds = [Bounds::unit(); 3];
        let mut rng = StdRng::seed_from_u64(6);
        let p1 = [0.1, 0.2, 0.3];
        let p2 = [0.9, 0.8, 0.7];
        assert_eq!(sbx.evolve(&[&p1[..], &p2[..]], &bounds, &mut rng), p1);
    }
}
