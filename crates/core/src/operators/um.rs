//! Uniform mutation.
//!
//! Each variable is, with probability `rate` (Borg default `1/L`), resampled
//! uniformly from its bounds. Borg uses UM both as a member of the operator
//! ensemble and to inject diversity during restarts.

use super::Variation;
use crate::problem::Bounds;
use rand::{Rng, RngCore};

/// Uniform mutation operator.
#[derive(Debug, Clone)]
pub struct UniformMutation {
    rate: f64,
}

impl UniformMutation {
    /// Creates UM with per-variable resampling probability `rate`.
    pub fn new(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "mutation rate must be in [0,1]"
        );
        Self { rate }
    }

    /// Mutates a variable vector in place.
    pub fn mutate(&self, vars: &mut [f64], bounds: &[Bounds], rng: &mut dyn RngCore) {
        for (x, b) in vars.iter_mut().zip(bounds) {
            if rng.gen::<f64>() <= self.rate {
                *x = if b.range() > 0.0 {
                    rng.gen_range(b.lower..=b.upper)
                } else {
                    b.lower
                };
            }
        }
    }
}

impl Variation for UniformMutation {
    fn name(&self) -> &str {
        "UM"
    }

    fn arity(&self) -> usize {
        1
    }

    fn evolve(&self, parents: &[&[f64]], bounds: &[Bounds], rng: &mut dyn RngCore) -> Vec<f64> {
        let mut child = Vec::with_capacity(parents[0].len());
        self.evolve_into(parents, bounds, rng, &mut child);
        child
    }

    // borg-lint: hot-path
    fn evolve_into(
        &self,
        parents: &[&[f64]],
        bounds: &[Bounds],
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend_from_slice(parents[0]);
        self.mutate(out, bounds, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::{change_rate, check_operator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_bounds() {
        check_operator(&UniformMutation::new(0.5), 6, 500, 1);
    }

    #[test]
    fn zero_rate_is_identity() {
        assert_eq!(change_rate(&UniformMutation::new(0.0), 10, 200, 2), 0.0);
    }

    #[test]
    fn resampled_values_cover_the_range() {
        let um = UniformMutation::new(1.0);
        let bounds = [Bounds::new(10.0, 20.0)];
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let mut v = [15.0];
            um.mutate(&mut v, &bounds, &mut rng);
            assert!((10.0..=20.0).contains(&v[0]));
            if v[0] < 11.0 {
                lo_seen = true;
            }
            if v[0] > 19.0 {
                hi_seen = true;
            }
        }
        assert!(lo_seen && hi_seen, "samples did not cover the range");
    }

    #[test]
    fn mutation_count_matches_rate() {
        let l = 100;
        let um = UniformMutation::new(0.25);
        let bounds: Vec<Bounds> = (0..l).map(|_| Bounds::unit()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let mut changed = 0usize;
        let trials = 500;
        for _ in 0..trials {
            let mut v = vec![0.5; l];
            um.mutate(&mut v, &bounds, &mut rng);
            changed += v.iter().filter(|&&x| x != 0.5).count();
        }
        let frac = changed as f64 / (trials * l) as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed rate {frac}");
    }

    #[test]
    fn point_bounds_stay_fixed() {
        let um = UniformMutation::new(1.0);
        let bounds = [Bounds::new(0.7, 0.7)];
        let mut rng = StdRng::seed_from_u64(5);
        let mut v = [0.7];
        um.mutate(&mut v, &bounds, &mut rng);
        assert_eq!(v, [0.7]);
    }
}
