//! CSV import/export of solution sets.
//!
//! Downstream users need to persist Pareto approximations (for plotting,
//! post-hoc metrics, or warm-starting later runs) and to load reference
//! sets distributed as data files. The format is a plain CSV with a header
//! naming each column `var<i>`, `obj<i>`, `con<i>`.

use crate::solution::Solution;

/// Serializes a solution set to CSV (header + one row per solution).
pub fn solutions_to_csv(solutions: &[Solution]) -> String {
    if solutions.is_empty() {
        return String::new();
    }
    let (nv, no, nc) = (
        solutions[0].num_variables(),
        solutions[0].num_objectives(),
        solutions[0].constraints().len(),
    );
    let mut out = String::new();
    let mut header: Vec<String> = Vec::new();
    header.extend((0..nv).map(|i| format!("var{i}")));
    header.extend((0..no).map(|i| format!("obj{i}")));
    header.extend((0..nc).map(|i| format!("con{i}")));
    out.push_str(&header.join(","));
    out.push('\n');
    for s in solutions {
        assert_eq!(s.num_variables(), nv, "ragged solution set");
        assert_eq!(s.num_objectives(), no, "ragged solution set");
        assert_eq!(s.constraints().len(), nc, "ragged solution set");
        let row: Vec<String> = s
            .variables()
            .iter()
            .chain(s.objectives())
            .chain(s.constraints())
            .map(|x| format!("{x:.17e}"))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Error from [`solutions_from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header is missing or malformed.
    BadHeader(String),
    /// A data row has the wrong number of fields or a non-numeric field.
    BadRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader(h) => write!(f, "bad solution-CSV header: {h}"),
            CsvError::BadRow { line, reason } => write!(f, "bad row at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a solution set written by [`solutions_to_csv`].
pub fn solutions_from_csv(csv: &str) -> Result<Vec<Solution>, CsvError> {
    let mut lines = csv.lines();
    let header = match lines.next() {
        Some(h) if !h.trim().is_empty() => h,
        _ => return Ok(Vec::new()),
    };
    let mut nv = 0;
    let mut no = 0;
    let mut nc = 0;
    for col in header.split(',') {
        let col = col.trim();
        if let Some(rest) = col.strip_prefix("var") {
            rest.parse::<usize>()
                .map_err(|_| CsvError::BadHeader(header.into()))?;
            nv += 1;
        } else if let Some(rest) = col.strip_prefix("obj") {
            rest.parse::<usize>()
                .map_err(|_| CsvError::BadHeader(header.into()))?;
            no += 1;
        } else if let Some(rest) = col.strip_prefix("con") {
            rest.parse::<usize>()
                .map_err(|_| CsvError::BadHeader(header.into()))?;
            nc += 1;
        } else {
            return Err(CsvError::BadHeader(header.into()));
        }
    }
    let width = nv + no + nc;
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Result<Vec<f64>, _> =
            line.split(',').map(|f| f.trim().parse::<f64>()).collect();
        let fields = fields.map_err(|e| CsvError::BadRow {
            line: i + 2,
            reason: e.to_string(),
        })?;
        if fields.len() != width {
            return Err(CsvError::BadRow {
                line: i + 2,
                reason: format!("expected {width} fields, got {}", fields.len()),
            });
        }
        let vars = fields[..nv].to_vec();
        let objs = fields[nv..nv + no].to_vec();
        let cons = fields[nv + no..].to_vec();
        out.push(Solution::from_parts(vars, objs, cons));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> Vec<Solution> {
        vec![
            Solution::from_parts(vec![0.25, 0.5], vec![1.0, 2.0, 3.0], vec![-0.5]),
            Solution::from_parts(vec![1e-9, 0.999999999], vec![0.1, 0.2, 0.3], vec![0.0]),
        ]
    }

    #[test]
    fn roundtrip_preserves_everything_bitwise() {
        let set = sample_set();
        let csv = solutions_to_csv(&set);
        let back = solutions_from_csv(&csv).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn header_names_columns() {
        let csv = solutions_to_csv(&sample_set());
        assert!(csv.starts_with("var0,var1,obj0,obj1,obj2,con0\n"));
    }

    #[test]
    fn empty_set_and_empty_csv() {
        assert_eq!(solutions_to_csv(&[]), "");
        assert_eq!(solutions_from_csv("").unwrap(), Vec::new());
        assert_eq!(solutions_from_csv("\n\n").unwrap(), Vec::new());
    }

    #[test]
    fn no_constraints_roundtrip() {
        let set = vec![Solution::from_parts(vec![0.1], vec![0.9, 0.8], vec![])];
        let back = solutions_from_csv(&solutions_to_csv(&set)).unwrap();
        assert_eq!(set, back);
        assert!(back[0].is_feasible());
    }

    #[test]
    fn bad_header_is_reported() {
        let err = solutions_from_csv("x0,obj0\n1.0,2.0\n").unwrap_err();
        assert!(matches!(err, CsvError::BadHeader(_)));
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn bad_rows_are_reported_with_line_numbers() {
        let err = solutions_from_csv("var0,obj0\n1.0,2.0\n3.0\n").unwrap_err();
        match err {
            CsvError::BadRow { line, .. } => assert_eq!(line, 3),
            other => panic!("wrong error {other:?}"),
        }
        let err = solutions_from_csv("var0,obj0\n1.0,abc\n").unwrap_err();
        assert!(matches!(err, CsvError::BadRow { line: 2, .. }));
    }

    #[test]
    #[should_panic(expected = "ragged solution set")]
    fn ragged_sets_panic_on_write() {
        let set = vec![
            Solution::from_parts(vec![0.1], vec![1.0], vec![]),
            Solution::from_parts(vec![0.1, 0.2], vec![1.0], vec![]),
        ];
        solutions_to_csv(&set);
    }
}
