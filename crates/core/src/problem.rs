//! The optimization problem abstraction.
//!
//! A [`Problem`] is a real-valued, box-constrained, multiobjective
//! minimization problem, optionally with inequality constraints. All
//! objectives are minimized; constraints are satisfied when their value is
//! `<= 0` (the MOEA framework convention used by Borg).

use crate::matrix::ObjectiveMatrix;
use crate::solution::Solution;

/// Inclusive lower/upper bounds of one decision variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Inclusive lower bound.
    pub lower: f64,
    /// Inclusive upper bound.
    pub upper: f64,
}

impl Bounds {
    /// Creates a bounds pair, panicking on an inverted or non-finite range.
    pub fn new(lower: f64, upper: f64) -> Self {
        assert!(
            lower.is_finite() && upper.is_finite() && lower <= upper,
            "invalid variable bounds [{lower}, {upper}]"
        );
        Self { lower, upper }
    }

    /// The unit interval `[0, 1]`, the most common bound in test suites.
    pub fn unit() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Width of the interval.
    pub fn range(&self) -> f64 {
        self.upper - self.lower
    }

    /// Clamps `x` into the interval.
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lower, self.upper)
    }

    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower && x <= self.upper
    }
}

/// A real-valued multiobjective minimization problem.
///
/// Implementations must be `Send + Sync`: the parallel executors ship
/// references to worker threads. Evaluation writes objectives (and
/// constraints, if any) into the provided output slices so that hot loops
/// never allocate.
///
/// # Example
///
/// ```
/// use borg_core::problem::{Bounds, Problem};
///
/// /// Minimize (x^2, (x-2)^2): the classic Schaffer problem.
/// struct Schaffer;
///
/// impl Problem for Schaffer {
///     fn name(&self) -> &str { "Schaffer" }
///     fn num_variables(&self) -> usize { 1 }
///     fn num_objectives(&self) -> usize { 2 }
///     fn bounds(&self, _i: usize) -> Bounds { Bounds::new(-10.0, 10.0) }
///     fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
///         objs[0] = vars[0] * vars[0];
///         objs[1] = (vars[0] - 2.0) * (vars[0] - 2.0);
///     }
/// }
///
/// let p = Schaffer;
/// let mut objs = [0.0; 2];
/// p.evaluate(&[1.0], &mut objs, &mut []);
/// assert_eq!(objs, [1.0, 1.0]);
/// ```
pub trait Problem: Send + Sync {
    /// Human-readable problem name (used in reports).
    fn name(&self) -> &str;

    /// Number of decision variables `L`.
    fn num_variables(&self) -> usize;

    /// Number of objectives `M` (all minimized).
    fn num_objectives(&self) -> usize;

    /// Number of inequality constraints (feasible when `<= 0`). Defaults to 0.
    fn num_constraints(&self) -> usize {
        0
    }

    /// Bounds of decision variable `i`.
    fn bounds(&self, i: usize) -> Bounds;

    /// Evaluates a candidate. `vars.len() == num_variables()`,
    /// `objs.len() == num_objectives()`, `cons.len() == num_constraints()`.
    fn evaluate(&self, vars: &[f64], objs: &mut [f64], cons: &mut [f64]);

    /// Collects all bounds into a vector (convenience; not on the hot path).
    fn all_bounds(&self) -> Vec<Bounds> {
        (0..self.num_variables()).map(|i| self.bounds(i)).collect()
    }

    /// Evaluates a whole batch of candidates stored as rows of `vars`,
    /// appending one output row per candidate to `objs` and `cons` (which
    /// are cleared first and must carry strides `num_objectives()` /
    /// `num_constraints()`, or stride 0 to adopt them).
    ///
    /// The default loops over [`evaluate`](Problem::evaluate); test suites
    /// override it to run the whole batch behind a single virtual call so
    /// the per-row kernel can be inlined and stream over the contiguous
    /// row storage.
    fn evaluate_batch(
        &self,
        vars: &ObjectiveMatrix,
        objs: &mut ObjectiveMatrix,
        cons: &mut ObjectiveMatrix,
    ) {
        batch_eval_loop(self, vars, objs, cons, Self::evaluate);
    }
}

/// Shared skeleton for [`Problem::evaluate_batch`] implementations: stages
/// the output rows, then streams every input row through `kernel`.
///
/// Overriding implementations call this with their concrete `evaluate` so
/// the compiler monomorphizes and inlines the kernel into one loop — the
/// default trait method pays one dynamic dispatch per row instead.
pub fn batch_eval_loop<P: Problem + ?Sized>(
    problem: &P,
    vars: &ObjectiveMatrix,
    objs: &mut ObjectiveMatrix,
    cons: &mut ObjectiveMatrix,
    kernel: impl Fn(&P, &[f64], &mut [f64], &mut [f64]),
) {
    assert_eq!(
        vars.stride(),
        problem.num_variables(),
        "variable stride mismatch for problem {}",
        problem.name()
    );
    objs.clear();
    cons.clear();
    let n = vars.rows();
    if n == 0 {
        return;
    }
    // Adopt the output strides if the matrices are still unsized (push_row
    // panics on a genuine mismatch).
    if objs.stride() != problem.num_objectives() {
        objs.push_row(&vec![0.0; problem.num_objectives()]);
        objs.clear();
    }
    if cons.stride() != problem.num_constraints() {
        cons.push_row(&vec![0.0; problem.num_constraints()]);
        cons.clear();
    }
    objs.push_rows_filled(n, 0.0);
    cons.push_rows_filled(n, 0.0);
    for i in 0..n {
        kernel(problem, vars.row(i), objs.row_mut(i), cons.row_mut(i));
    }
}

/// Evaluates `vars` on `problem` into a fresh [`Solution`].
///
/// This is the allocation-friendly path used outside hot loops; executors
/// reuse buffers directly via [`Problem::evaluate`].
pub fn evaluate_into_solution<P: Problem + ?Sized>(problem: &P, vars: Vec<f64>) -> Solution {
    assert_eq!(
        vars.len(),
        problem.num_variables(),
        "variable count mismatch for problem {}",
        problem.name()
    );
    let mut objs = vec![0.0; problem.num_objectives()];
    let mut cons = vec![0.0; problem.num_constraints()];
    problem.evaluate(&vars, &mut objs, &mut cons);
    Solution::from_parts(vars, objs, cons)
}

/// Blanket impl so `&P`, `Box<P>`, `Arc<P>` are problems too.
impl<P: Problem + ?Sized> Problem for &P {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn num_constraints(&self) -> usize {
        (**self).num_constraints()
    }
    fn bounds(&self, i: usize) -> Bounds {
        (**self).bounds(i)
    }
    fn evaluate(&self, vars: &[f64], objs: &mut [f64], cons: &mut [f64]) {
        (**self).evaluate(vars, objs, cons)
    }
}

impl<P: Problem + ?Sized> Problem for std::sync::Arc<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn num_constraints(&self) -> usize {
        (**self).num_constraints()
    }
    fn bounds(&self, i: usize) -> Bounds {
        (**self).bounds(i)
    }
    fn evaluate(&self, vars: &[f64], objs: &mut [f64], cons: &mut [f64]) {
        (**self).evaluate(vars, objs, cons)
    }
}

impl<P: Problem + ?Sized> Problem for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn num_constraints(&self) -> usize {
        (**self).num_constraints()
    }
    fn bounds(&self, i: usize) -> Bounds {
        (**self).bounds(i)
    }
    fn evaluate(&self, vars: &[f64], objs: &mut [f64], cons: &mut [f64]) {
        (**self).evaluate(vars, objs, cons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sphere {
        n: usize,
    }

    impl Problem for Sphere {
        fn name(&self) -> &str {
            "Sphere"
        }
        fn num_variables(&self) -> usize {
            self.n
        }
        fn num_objectives(&self) -> usize {
            1
        }
        fn bounds(&self, _i: usize) -> Bounds {
            Bounds::new(-5.0, 5.0)
        }
        fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
            objs[0] = vars.iter().map(|x| x * x).sum();
        }
    }

    #[test]
    fn bounds_clamp_and_contains() {
        let b = Bounds::new(-1.0, 2.0);
        assert_eq!(b.range(), 3.0);
        assert_eq!(b.clamp(5.0), 2.0);
        assert_eq!(b.clamp(-5.0), -1.0);
        assert!(b.contains(0.0));
        assert!(!b.contains(2.1));
    }

    #[test]
    #[should_panic(expected = "invalid variable bounds")]
    fn inverted_bounds_panic() {
        Bounds::new(1.0, 0.0);
    }

    #[test]
    fn evaluate_into_solution_works() {
        let p = Sphere { n: 3 };
        let s = evaluate_into_solution(&p, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.objectives()[0], 14.0);
        assert_eq!(s.variables(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn blanket_impls_delegate() {
        let p = Sphere { n: 2 };
        let by_ref: &dyn Problem = &p;
        assert_eq!(by_ref.num_variables(), 2);
        let boxed: Box<dyn Problem> = Box::new(Sphere { n: 4 });
        assert_eq!(boxed.num_variables(), 4);
        assert_eq!(boxed.all_bounds().len(), 4);
        let arc = std::sync::Arc::new(Sphere { n: 5 });
        assert_eq!(arc.num_variables(), 5);
    }

    #[test]
    #[should_panic(expected = "variable count mismatch")]
    fn wrong_arity_panics() {
        let p = Sphere { n: 3 };
        evaluate_into_solution(&p, vec![0.0]);
    }
}
