//! Flat structure-of-arrays row matrices for hot-path numeric data.
//!
//! The steady-state hot paths (archive insertion, population replacement,
//! batch evaluation) spend their time streaming over per-solution numeric
//! rows: objective vectors, cached ε-box coordinates, decision variables.
//! Storing those rows in a `Vec<Vec<f64>>` costs one heap allocation and one
//! pointer chase per row; a [`FlatMatrix`] packs them into a single flat
//! buffer with a fixed stride so row scans are contiguous, cache-friendly,
//! and visible to the autovectorizer (the workspace forbids `unsafe`, so
//! contiguity is the only lever we have).
//!
//! [`ObjectiveMatrix`] is the `f64` instantiation used by
//! [`crate::population::Population`] and [`crate::archive::EpsilonArchive`];
//! the archive also uses an `i64` instantiation for its cached ε-box keys.

/// A dense row matrix backed by one flat `Vec<T>`.
///
/// All rows share the same `stride` (row length). An empty matrix adopts the
/// stride of the first row pushed, so containers that learn their row width
/// lazily (e.g. a population before its first member) need no special case.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMatrix<T> {
    data: Vec<T>,
    stride: usize,
    rows: usize,
}

impl<T: Copy> FlatMatrix<T> {
    /// Creates an empty matrix with the given row length.
    pub fn new(stride: usize) -> Self {
        Self {
            data: Vec::new(),
            stride,
            rows: 0,
        }
    }

    /// Creates an empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(stride: usize, rows: usize) -> Self {
        Self {
            data: Vec::with_capacity(stride * rows),
            stride,
            rows: 0,
        }
    }

    /// Row length. Zero until the first row is pushed into a `new(0)` matrix.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn row(&self, i: usize) -> &[T] {
        let start = i * self.stride;
        &self.data[start..start + self.stride]
    }

    /// Mutably borrows row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        let start = i * self.stride;
        &mut self.data[start..start + self.stride]
    }

    /// Appends a row. An empty matrix adopts `row.len()` as its stride.
    ///
    /// # Panics
    /// If a non-empty matrix receives a row of a different length.
    pub fn push_row(&mut self, row: &[T]) {
        if self.rows == 0 {
            self.stride = row.len();
        }
        assert_eq!(row.len(), self.stride, "row length must match stride");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends `n` rows filled with `value` and returns the index of the
    /// first new row (batch-evaluation output staging).
    pub fn push_rows_filled(&mut self, n: usize, value: T) -> usize {
        let first = self.rows;
        self.data.resize(self.data.len() + n * self.stride, value);
        self.rows += n;
        first
    }

    /// Overwrites row `i` in place.
    pub fn set_row(&mut self, i: usize, row: &[T]) {
        assert_eq!(row.len(), self.stride, "row length must match stride");
        self.row_mut(i).copy_from_slice(row);
    }

    /// Removes row `i` by moving the last row into its slot (O(stride)),
    /// mirroring `Vec::swap_remove` so parallel containers stay aligned.
    pub fn swap_remove_row(&mut self, i: usize) {
        let last = self.rows - 1;
        if i != last {
            let (head, tail) = self.data.split_at_mut(last * self.stride);
            head[i * self.stride..(i + 1) * self.stride].copy_from_slice(&tail[..self.stride]);
        }
        self.data.truncate(last * self.stride);
        self.rows = last;
    }

    /// Keeps the first `n` rows.
    pub fn truncate_rows(&mut self, n: usize) {
        if n < self.rows {
            self.data.truncate(n * self.stride);
            self.rows = n;
        }
    }

    /// Drops all rows, keeping the stride and allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// The flat backing slice (`rows * stride` elements, row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> + '_ {
        // `chunks_exact(0)` panics, so an unsized (stride-0) matrix yields
        // nothing — it also holds no data.
        self.data.chunks_exact(self.stride.max(1))
    }
}

/// Flat `f64` row matrix holding one objective vector per row.
pub type ObjectiveMatrix = FlatMatrix<f64>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = ObjectiveMatrix::new(3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.stride(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn empty_matrix_adopts_first_row_stride() {
        let mut m = ObjectiveMatrix::new(0);
        m.push_row(&[1.0, 2.0]);
        assert_eq!(m.stride(), 2);
        m.clear();
        // Stride survives a clear; the next epoch can push same-width rows.
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.row(0), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "row length must match stride")]
    fn mismatched_row_panics() {
        let mut m = ObjectiveMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[1.0]);
    }

    #[test]
    fn swap_remove_mirrors_vec_semantics() {
        let mut m = FlatMatrix::<i64>::new(2);
        m.push_row(&[0, 0]);
        m.push_row(&[1, 1]);
        m.push_row(&[2, 2]);
        m.swap_remove_row(0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[2, 2]);
        assert_eq!(m.row(1), &[1, 1]);
        m.swap_remove_row(1); // removing the last row is a plain pop
        assert_eq!(m.rows(), 1);
        assert_eq!(m.row(0), &[2, 2]);
    }

    #[test]
    fn set_row_overwrites_in_place() {
        let mut m = ObjectiveMatrix::new(2);
        m.push_row(&[1.0, 1.0]);
        m.set_row(0, &[9.0, 8.0]);
        assert_eq!(m.row(0), &[9.0, 8.0]);
    }

    #[test]
    fn push_rows_filled_stages_batch_output() {
        let mut m = ObjectiveMatrix::new(2);
        m.push_row(&[1.0, 1.0]);
        let first = m.push_rows_filled(2, 0.0);
        assert_eq!(first, 1);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[0.0, 0.0]);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn truncate_and_iter() {
        let mut m = FlatMatrix::<i64>::new(1);
        for i in 0..4 {
            m.push_row(&[i]);
        }
        m.truncate_rows(2);
        let rows: Vec<&[i64]> = m.iter_rows().collect();
        assert_eq!(rows, vec![&[0i64][..], &[1i64][..]]);
        m.truncate_rows(5); // no-op when larger
        assert_eq!(m.rows(), 2);
    }
}
