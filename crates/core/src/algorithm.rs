//! The Borg MOEA engine and serial runner.
//!
//! The engine is deliberately split into two halves:
//!
//! * [`BorgEngine::produce`] — generate the next candidate's decision
//!   variables (selection + variation, or random/injected solutions while
//!   the population is filling), and
//! * [`BorgEngine::consume`] — absorb an evaluated candidate (population
//!   replacement, archive insertion, operator-probability adaptation,
//!   stagnation detection, restarts).
//!
//! A serial run alternates `produce → evaluate → consume`; the
//! asynchronous master-slave executors in `borg-parallel` interleave many
//! outstanding candidates, calling `produce` whenever a worker goes idle and
//! `consume` whenever a result returns. The time spent inside
//! `produce`+`consume` is exactly the paper's `T_A`; the evaluation is
//! `T_F`.

use crate::archive::EpsilonArchive;
use crate::operators::{
    standard_borg_operators, AdaptiveEnsemble, EnsembleConfig, UniformMutation,
};
use crate::population::Population;
use crate::problem::{Bounds, Problem};
use crate::rng::SplitMix64;
use crate::solution::Solution;
use rand::rngs::StdRng;
use rand::Rng;

/// Borg MOEA configuration.
///
/// Defaults follow Hadka & Reed (2012) and the Borg C implementation.
#[derive(Debug, Clone)]
pub struct BorgConfig {
    /// Initial (and minimum) population size. Default 100.
    pub initial_population_size: usize,
    /// Per-objective ε values for the ε-dominance archive.
    pub epsilons: Vec<f64>,
    /// Injection rate γ: target population size = γ × archive size after a
    /// restart. Default 4.
    pub injection_rate: f64,
    /// Selection ratio τ: tournament size = max(2, ⌈τ × population size⌉).
    /// Default 0.02.
    pub selection_ratio: f64,
    /// Stagnation window: ε-progress is checked every this many consumed
    /// evaluations. Default 100 (matching the ensemble update cadence).
    pub window_size: u64,
    /// Tolerated relative deviation of the population/archive ratio from γ
    /// before a restart is forced. Default 0.25.
    pub injection_tolerance: f64,
    /// Operator-probability adaptation settings.
    pub ensemble: EnsembleConfig,
    /// Enable restart machinery (ablation switch; default true).
    pub restarts_enabled: bool,
    /// Enable operator auto-adaptation (ablation switch; default true).
    pub adaptation_enabled: bool,
    /// Collect a wall-clock breakdown of `T_A` by engine component
    /// (selection, variation, archive, population, adaptation, restarts).
    /// Adds two `Instant::now()` calls per component; default off.
    pub profile_ta: bool,
}

impl BorgConfig {
    /// Canonical configuration for a problem with `m` objectives using a
    /// uniform ε.
    pub fn new(m: usize, epsilon: f64) -> Self {
        Self {
            initial_population_size: 100,
            epsilons: vec![epsilon; m],
            injection_rate: 4.0,
            selection_ratio: 0.02,
            window_size: 100,
            injection_tolerance: 0.25,
            ensemble: EnsembleConfig::default(),
            restarts_enabled: true,
            adaptation_enabled: true,
            profile_ta: false,
        }
    }

    fn validate(&self) {
        assert!(self.initial_population_size >= 2, "population too small");
        assert!(!self.epsilons.is_empty(), "missing epsilons");
        assert!(self.injection_rate >= 1.0, "injection rate must be >= 1");
        assert!(
            self.selection_ratio > 0.0 && self.selection_ratio <= 1.0,
            "selection ratio must be in (0, 1]"
        );
        assert!(self.window_size > 0, "window size must be positive");
    }
}

/// A candidate produced by the engine, awaiting evaluation.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Decision variables to evaluate.
    pub variables: Vec<f64>,
    /// Producing operator index (None for random/injected candidates).
    pub operator: Option<usize>,
}

/// Recycling pool for the per-candidate heap buffers that circulate through
/// the steady-state loop.
///
/// Each consumed candidate displaces (or is itself rejected as) exactly one
/// [`Solution`], whose three buffers (variables, objectives, constraints)
/// are returned here and handed back out by the next `produce` /
/// `make_solution_recycled`, so a settled steady-state iteration performs
/// zero per-candidate heap allocation in the engine.
#[derive(Debug, Default, Clone)]
pub struct SolutionArena {
    buffers: Vec<Vec<f64>>,
    hits: u64,
    misses: u64,
}

impl SolutionArena {
    /// Pool-size cap; beyond it returned buffers are simply freed (bounds
    /// memory when many evaluations are in flight).
    const MAX_POOLED: usize = 256;

    /// Takes an empty buffer from the pool, or allocates a fresh one.
    pub fn take(&mut self) -> Vec<f64> {
        match self.buffers.pop() {
            Some(buf) => {
                self.hits += 1;
                buf
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool (cleared, allocation kept).
    pub fn give(&mut self, mut buf: Vec<f64>) {
        if self.buffers.len() < Self::MAX_POOLED {
            buf.clear();
            self.buffers.push(buf);
        }
    }

    /// Recycles all three buffers of a retired solution.
    pub fn recycle(&mut self, solution: Solution) {
        let (vars, objs, cons) = solution.into_parts();
        self.give(vars);
        self.give(objs);
        self.give(cons);
    }

    /// `(pool hits, pool misses)` across all [`take`](Self::take) calls.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Why the engine produced a candidate (exposed for instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Population below capacity: producing uniform-random candidates.
    InitialFill,
    /// Population below capacity after a restart: producing mutated archive
    /// members.
    InjectionFill,
    /// Normal steady-state variation.
    Steady,
}

/// Cumulative engine statistics.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Evaluated candidates consumed so far (the paper's running `N`).
    pub nfe: u64,
    /// Number of restarts triggered.
    pub restarts: u64,
    /// ε-progress (archive improvements) at the last stagnation check.
    pub improvements_at_last_check: u64,
    /// Candidates produced so far (≥ nfe when evaluations are in flight).
    pub produced: u64,
}

/// Cumulative wall-clock breakdown of the master's algorithm time `T_A`
/// by component (seconds; populated only when [`BorgConfig::profile_ta`]
/// is set). The dominant growth terms are `population` (the steady-state
/// replacement scan is O(population size)) and `archive` (O(archive
/// size) ε-box comparisons) — which is why the paper's measured `T_A`
/// grows with processor count and problem difficulty.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaProfile {
    /// Tournament selection + parent gathering.
    pub selection: f64,
    /// Variation-operator application.
    pub variation: f64,
    /// ε-archive insertion.
    pub archive: f64,
    /// Population replacement (offer/fill).
    pub population: f64,
    /// Operator-probability adaptation.
    pub adaptation: f64,
    /// Restart checks and execution.
    pub restarts: f64,
}

impl TaProfile {
    /// Total profiled seconds.
    pub fn total(&self) -> f64 {
        self.selection
            + self.variation
            + self.archive
            + self.population
            + self.adaptation
            + self.restarts
    }
}

/// The Borg MOEA engine (master-side state machine).
pub struct BorgEngine {
    bounds: Vec<Bounds>,
    num_objectives: usize,
    num_constraints: usize,
    config: BorgConfig,
    population: Population,
    archive: EpsilonArchive,
    ensemble: AdaptiveEnsemble,
    restart_mutation: UniformMutation,
    rng: StdRng,
    stats: EngineStats,
    tournament_size: usize,
    /// Candidates produced for filling (initial or injection) not yet
    /// consumed; prevents over-producing fill candidates under asynchrony.
    fill_in_flight: usize,
    phase: Phase,
    profile: TaProfile,
    /// Buffer pool recycling retired solutions back into new candidates.
    arena: SolutionArena,
    /// Reused parent-index buffer for steady-state selection.
    scratch_parents: Vec<usize>,
}

/// Maximum operator arity the engine's stack-allocated parent-slice buffer
/// supports (the standard ensemble tops out at 10 for PCX/SPX/UNDX).
const MAX_ARITY: usize = 16;

impl BorgEngine {
    /// Creates an engine for `problem` with the given config and seed.
    pub fn new<P: Problem + ?Sized>(problem: &P, config: BorgConfig, seed: u64) -> Self {
        config.validate();
        assert_eq!(
            config.epsilons.len(),
            problem.num_objectives(),
            "epsilon count must match objective count"
        );
        let bounds = problem.all_bounds();
        let l = bounds.len();
        let mut split = SplitMix64::new(seed);
        let rng = split.derive("borg-engine");
        let ensemble = AdaptiveEnsemble::new(standard_borg_operators(l), config.ensemble);
        let tournament_size =
            tournament_size(config.selection_ratio, config.initial_population_size);
        Self {
            bounds,
            num_objectives: problem.num_objectives(),
            num_constraints: problem.num_constraints(),
            population: Population::new(config.initial_population_size),
            archive: EpsilonArchive::new(config.epsilons.clone()),
            ensemble,
            restart_mutation: UniformMutation::new(1.0 / l.max(1) as f64),
            rng,
            config,
            stats: EngineStats::default(),
            tournament_size,
            fill_in_flight: 0,
            phase: Phase::InitialFill,
            profile: TaProfile::default(),
            arena: SolutionArena::default(),
            scratch_parents: Vec::with_capacity(MAX_ARITY),
        }
    }

    /// The ε-dominance archive (best solutions found).
    pub fn archive(&self) -> &EpsilonArchive {
        &self.archive
    }

    /// The current population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of consumed (fully evaluated) candidates.
    pub fn nfe(&self) -> u64 {
        self.stats.nfe
    }

    /// Current operator selection probabilities.
    pub fn operator_probabilities(&self) -> &[f64] {
        self.ensemble.probabilities()
    }

    /// Operator names, aligned with [`Self::operator_probabilities`].
    pub fn operator_names(&self) -> Vec<&str> {
        self.ensemble.names()
    }

    /// Current tournament size (selection pressure).
    pub fn tournament_size(&self) -> usize {
        self.tournament_size
    }

    /// The `T_A` component breakdown (all zeros unless
    /// [`BorgConfig::profile_ta`] was enabled).
    pub fn ta_profile(&self) -> &TaProfile {
        &self.profile
    }

    /// Produces the next candidate to evaluate.
    // borg-lint: hot-path
    pub fn produce(&mut self) -> Candidate {
        self.stats.produced += 1;
        let needed_fill = self
            .population
            .capacity()
            .saturating_sub(self.population.len() + self.fill_in_flight);
        if needed_fill > 0 {
            self.fill_in_flight += 1;
            let variables = match self.phase {
                Phase::InjectionFill if !self.archive.is_empty() => {
                    // Inject: mutate a random archive member with UM(1/L).
                    let i = self.rng.gen_range(0..self.archive.len());
                    let mut vars = self.arena.take();
                    vars.extend_from_slice(self.archive.solutions()[i].variables());
                    self.restart_mutation
                        .mutate(&mut vars, &self.bounds, &mut self.rng);
                    vars
                }
                _ => self.random_variables(),
            };
            return Candidate {
                variables,
                operator: None,
            };
        }

        if self.population.is_empty() {
            // More outstanding requests than the population can seat (e.g.
            // worker count exceeds the initial population size, or a
            // restart just emptied the population with many evaluations in
            // flight): hand out uniform-random candidates rather than
            // blocking — the asynchronous master never waits.
            return Candidate {
                variables: self.random_variables(),
                operator: None,
            };
        }

        // Steady state: adaptive operator selection + tournament parents.
        self.phase = Phase::Steady;
        let op_idx = if self.config.adaptation_enabled {
            self.ensemble.select(&mut self.rng)
        } else {
            0 // SBX+PM only (ablation mode)
        };
        let arity = self.ensemble.operator(op_idx).arity();
        debug_assert!(arity <= MAX_ARITY, "operator arity exceeds MAX_ARITY");
        let t0 = self.config.profile_ta.then(std::time::Instant::now);
        self.scratch_parents.clear();
        for _ in 0..arity {
            let idx = self
                .population
                .tournament_select(self.tournament_size, &mut self.rng);
            self.scratch_parents.push(idx);
        }
        // Parent slices live on the stack: borrows of the population, which
        // stays untouched until the offspring is consumed.
        let mut parent_refs: [&[f64]; MAX_ARITY] = [&[]; MAX_ARITY];
        for (slot, &i) in parent_refs.iter_mut().zip(&self.scratch_parents) {
            *slot = self.population.get(i).variables();
        }
        if let Some(t) = t0 {
            self.profile.selection += t.elapsed().as_secs_f64();
        }
        let t1 = self.config.profile_ta.then(std::time::Instant::now);
        let mut variables = self.arena.take();
        self.ensemble.operator(op_idx).evolve_into(
            &parent_refs[..arity],
            &self.bounds,
            &mut self.rng,
            &mut variables,
        );
        if let Some(t) = t1 {
            self.profile.variation += t.elapsed().as_secs_f64();
        }
        Candidate {
            variables,
            operator: Some(op_idx),
        }
    }

    /// Consumes an evaluated candidate.
    ///
    /// `solution.operator` should carry the candidate's operator tag so the
    /// archive can credit contributions (use [`Self::make_solution`]).
    // borg-lint: hot-path
    pub fn consume(&mut self, solution: Solution) {
        debug_assert_eq!(solution.num_objectives(), self.num_objectives);
        self.stats.nfe += 1;

        if self.fill_in_flight > 0 && !self.population.is_full() {
            // Initial or injected candidate: goes straight into the
            // population and the archive.
            self.fill_in_flight -= 1;
            let t0 = self.config.profile_ta.then(std::time::Instant::now);
            self.archive.offer(&solution);
            if let Some(t) = t0 {
                self.profile.archive += t.elapsed().as_secs_f64();
            }
            let t1 = self.config.profile_ta.then(std::time::Instant::now);
            self.population.fill(solution);
            if let Some(t) = t1 {
                self.profile.population += t.elapsed().as_secs_f64();
            }
        } else {
            if self.fill_in_flight > 0 {
                // A fill candidate arrived after the population filled up
                // (possible when a restart shrank capacity mid-flight).
                self.fill_in_flight -= 1;
            }
            let t0 = self.config.profile_ta.then(std::time::Instant::now);
            self.archive.offer(&solution);
            if let Some(t) = t0 {
                self.profile.archive += t.elapsed().as_secs_f64();
            }
            let t1 = self.config.profile_ta.then(std::time::Instant::now);
            let (_, retired) = self.population.offer_replacing(solution, &mut self.rng);
            if let Some(t) = t1 {
                self.profile.population += t.elapsed().as_secs_f64();
            }
            // The displaced member (or the rejected offspring) donates its
            // buffers to the next candidate.
            if let Some(retired) = retired {
                self.arena.recycle(retired);
            }
        }

        if self.config.adaptation_enabled {
            let t0 = self.config.profile_ta.then(std::time::Instant::now);
            self.ensemble.on_evaluation(self.archive.operator_credits());
            if let Some(t) = t0 {
                self.profile.adaptation += t.elapsed().as_secs_f64();
            }
        }

        if self.config.restarts_enabled && self.stats.nfe.is_multiple_of(self.config.window_size) {
            let t0 = self.config.profile_ta.then(std::time::Instant::now);
            self.check_restart();
            if let Some(t) = t0 {
                self.profile.restarts += t.elapsed().as_secs_f64();
            }
        }
    }

    /// Injects an externally evaluated solution (e.g. a migrant from
    /// another island in an island-model topology) into the archive and
    /// population without counting a function evaluation.
    pub fn inject(&mut self, solution: Solution) {
        debug_assert_eq!(solution.num_objectives(), self.num_objectives);
        self.archive.offer(&solution);
        if self.population.is_full() {
            let (_, retired) = self.population.offer_replacing(solution, &mut self.rng);
            if let Some(retired) = retired {
                self.arena.recycle(retired);
            }
        } else {
            self.population.fill(solution);
        }
    }

    /// Builds an evaluated [`Solution`] from a candidate and its objective /
    /// constraint values, preserving the operator tag.
    pub fn make_solution(
        &self,
        candidate: Candidate,
        objectives: Vec<f64>,
        constraints: Vec<f64>,
    ) -> Solution {
        debug_assert_eq!(objectives.len(), self.num_objectives);
        debug_assert_eq!(constraints.len(), self.num_constraints);
        let mut s = Solution::from_parts(candidate.variables, objectives, constraints);
        s.operator = candidate.operator;
        s
    }

    /// As [`Self::make_solution`], copying the objective / constraint values
    /// into arena-recycled buffers instead of taking freshly allocated ones
    /// (pairs with evaluators that reuse their own output buffers, e.g.
    /// [`run_serial`]).
    // borg-lint: hot-path
    pub fn make_solution_recycled(
        &mut self,
        candidate: Candidate,
        objectives: &[f64],
        constraints: &[f64],
    ) -> Solution {
        debug_assert_eq!(objectives.len(), self.num_objectives);
        debug_assert_eq!(constraints.len(), self.num_constraints);
        let mut objs = self.arena.take();
        objs.extend_from_slice(objectives);
        let mut cons = self.arena.take();
        cons.extend_from_slice(constraints);
        let mut s = Solution::from_parts(candidate.variables, objs, cons);
        s.operator = candidate.operator;
        s
    }

    /// Hands a retired externally held solution's buffers back to the
    /// engine's arena (asynchronous executors drop evaluated results they
    /// no longer need; recycling them keeps the pool primed).
    pub fn recycle(&mut self, solution: Solution) {
        self.arena.recycle(solution);
    }

    /// `(pool hits, pool misses)` of the candidate-buffer arena.
    pub fn arena_stats(&self) -> (u64, u64) {
        self.arena.stats()
    }

    // borg-lint: hot-path
    fn random_variables(&mut self) -> Vec<f64> {
        let mut vars = self.arena.take();
        for b in &self.bounds {
            vars.push(if b.range() > 0.0 {
                self.rng.gen_range(b.lower..=b.upper)
            } else {
                b.lower
            });
        }
        vars
    }

    /// Stagnation / ratio check; triggers a restart when needed.
    fn check_restart(&mut self) {
        let progressed = self.archive.improvements() > self.stats.improvements_at_last_check;
        self.stats.improvements_at_last_check = self.archive.improvements();

        let archive_len = self.archive.len().max(1);
        let ratio = self.population.capacity() as f64 / archive_len as f64;
        let gamma = self.config.injection_rate;
        let ratio_bad = ratio > gamma * (1.0 + self.config.injection_tolerance)
            || ratio < gamma * (1.0 - self.config.injection_tolerance);

        // Only the ratio being too *small* (archive outgrew the population)
        // or stagnation forces a restart; a too-large ratio right after
        // initialization is normal while the archive is still tiny, so Borg
        // additionally requires stagnation in that direction.
        let too_small = ratio < gamma * (1.0 - self.config.injection_tolerance);
        if !progressed || (ratio_bad && too_small) {
            self.restart();
        }
    }

    /// Executes a restart: resize population to γ×|archive|, refill with the
    /// archive, and stream mutated-archive injections via `produce`.
    fn restart(&mut self) {
        self.stats.restarts += 1;
        let target = ((self.config.injection_rate * self.archive.len() as f64).ceil() as usize)
            .max(self.config.initial_population_size);
        self.population.resize(target, &mut self.rng);
        self.population.clear();
        for i in 0..self.archive.len() {
            if self.population.is_full() {
                break;
            }
            let s = self.archive.solutions()[i].clone();
            self.population.fill(s);
        }
        self.tournament_size = tournament_size(self.config.selection_ratio, target);
        self.fill_in_flight = 0;
        self.phase = Phase::InjectionFill;
    }
}

impl std::fmt::Debug for BorgEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BorgEngine")
            .field("nfe", &self.stats.nfe)
            .field("population", &self.population.len())
            .field("archive", &self.archive.len())
            .field("restarts", &self.stats.restarts)
            .finish()
    }
}

fn tournament_size(ratio: f64, population: usize) -> usize {
    ((ratio * population as f64).ceil() as usize).max(2)
}

/// Runs the Borg MOEA serially for `max_nfe` evaluations.
///
/// `observer` is called after each consumed evaluation with the engine (use
/// it to record archive snapshots, hypervolume trajectories, etc.).
pub fn run_serial<P, F>(
    problem: &P,
    config: BorgConfig,
    seed: u64,
    max_nfe: u64,
    mut observer: F,
) -> BorgEngine
where
    P: Problem + ?Sized,
    F: FnMut(&BorgEngine),
{
    let mut engine = BorgEngine::new(problem, config, seed);
    let mut objs = vec![0.0; problem.num_objectives()];
    let mut cons = vec![0.0; problem.num_constraints()];
    while engine.nfe() < max_nfe {
        let cand = engine.produce();
        problem.evaluate(&cand.variables, &mut objs, &mut cons);
        let sol = engine.make_solution_recycled(cand, &objs, &cons);
        engine.consume(sol);
        observer(&engine);
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-objective DTLZ2-like toy used by the engine tests (the real DTLZ
    /// suite lives in `borg-problems`; core tests stay self-contained).
    struct TwoSphere;

    impl Problem for TwoSphere {
        fn name(&self) -> &str {
            "TwoSphere"
        }
        fn num_variables(&self) -> usize {
            6
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn bounds(&self, _i: usize) -> Bounds {
            Bounds::unit()
        }
        fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
            // Convex bi-objective: f1 = x0, f2 = g (1 - sqrt(x0/g)) with
            // g = 1 + sum of remaining vars (ZDT1 form).
            let g = 1.0 + 9.0 * vars[1..].iter().sum::<f64>() / (vars.len() - 1) as f64;
            objs[0] = vars[0];
            objs[1] = g * (1.0 - (vars[0] / g).sqrt());
        }
    }

    fn config() -> BorgConfig {
        BorgConfig::new(2, 0.01)
    }

    #[test]
    fn engine_counts_nfe() {
        let e = run_serial(&TwoSphere, config(), 1, 500, |_| {});
        assert_eq!(e.nfe(), 500);
        assert_eq!(e.stats().produced, 500);
    }

    #[test]
    fn engine_is_deterministic() {
        let a = run_serial(&TwoSphere, config(), 42, 2000, |_| {});
        let b = run_serial(&TwoSphere, config(), 42, 2000, |_| {});
        assert_eq!(a.archive().len(), b.archive().len());
        assert_eq!(
            a.archive().objective_vectors(),
            b.archive().objective_vectors()
        );
        assert_eq!(a.stats().restarts, b.stats().restarts);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_serial(&TwoSphere, config(), 1, 2000, |_| {});
        let b = run_serial(&TwoSphere, config(), 2, 2000, |_| {});
        assert_ne!(
            a.archive().objective_vectors(),
            b.archive().objective_vectors()
        );
    }

    #[test]
    fn engine_converges_toward_front() {
        // ZDT1's Pareto front has g = 1; after a few thousand evaluations
        // archive members should be near it.
        let e = run_serial(&TwoSphere, config(), 7, 10_000, |_| {});
        assert!(
            e.archive().len() >= 5,
            "archive too small: {}",
            e.archive().len()
        );
        let worst_sum = e
            .archive()
            .solutions()
            .iter()
            .map(|s| {
                let f1 = s.objectives()[0];
                let f2 = s.objectives()[1];
                // Distance above the true front f2* = 1 − sqrt(f1).
                f2 - (1.0 - f1.sqrt())
            })
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(worst_sum < 0.35, "archive far from front: {worst_sum}");
    }

    #[test]
    fn archive_invariants_hold_throughout() {
        let mut checks = 0;
        run_serial(&TwoSphere, config(), 3, 3000, |e| {
            if e.nfe() % 500 == 0 {
                e.archive().check_invariants().unwrap();
                checks += 1;
            }
        });
        assert!(checks >= 6);
    }

    #[test]
    fn asynchronous_interleaving_matches_contract() {
        // Emulate 8 in-flight candidates (what the master-slave executor
        // does) and check the engine never panics and counts correctly.
        let problem = TwoSphere;
        let mut engine = BorgEngine::new(&problem, config(), 9);
        let mut queue: std::collections::VecDeque<Candidate> =
            (0..8).map(|_| engine.produce()).collect();
        let mut objs = vec![0.0; 2];
        let mut cons = vec![];
        for _ in 0..5000 {
            let cand = queue.pop_front().unwrap();
            problem.evaluate(&cand.variables, &mut objs, &mut cons);
            let sol = engine.make_solution(cand, objs.clone(), cons.clone());
            engine.consume(sol);
            queue.push_back(engine.produce());
        }
        assert_eq!(engine.nfe(), 5000);
        assert_eq!(engine.stats().produced, 5008);
        engine.archive().check_invariants().unwrap();
    }

    #[test]
    fn steady_state_recycles_candidate_buffers() {
        // Once the population is full, every iteration's three buffer takes
        // (variables, objectives, constraints) are fed by the three buffers
        // the previous iteration retired, so pool hits dominate misses
        // (which mostly stem from the initial fill phase).
        let e = run_serial(&TwoSphere, config(), 13, 3000, |_| {});
        let (hits, misses) = e.arena_stats();
        assert!(
            hits > 3 * misses,
            "arena not recycling: hits={hits} misses={misses}"
        );
    }

    #[test]
    fn ta_profile_populates_only_when_enabled() {
        let off = run_serial(&TwoSphere, config(), 5, 2000, |_| {});
        assert_eq!(*off.ta_profile(), crate::algorithm::TaProfile::default());

        let mut cfg = config();
        cfg.profile_ta = true;
        let on = run_serial(&TwoSphere, cfg, 5, 2000, |_| {});
        let p = on.ta_profile();
        assert!(p.selection > 0.0, "{p:?}");
        assert!(p.variation > 0.0, "{p:?}");
        assert!(p.archive > 0.0, "{p:?}");
        assert!(p.population > 0.0, "{p:?}");
        assert!(p.adaptation > 0.0, "{p:?}");
        assert!(p.total() < 5.0, "profiled time implausible: {p:?}");
    }

    #[test]
    fn more_workers_than_population_capacity() {
        // P − 1 > initial population size: the master must keep producing
        // (random) candidates instead of panicking on an empty population.
        let problem = TwoSphere;
        let mut engine = BorgEngine::new(&problem, config(), 21);
        let in_flight = 350; // > initial population of 100
        let mut queue: std::collections::VecDeque<Candidate> =
            (0..in_flight).map(|_| engine.produce()).collect();
        let mut objs = vec![0.0; 2];
        let mut cons = vec![];
        for _ in 0..3000 {
            let cand = queue.pop_front().unwrap();
            problem.evaluate(&cand.variables, &mut objs, &mut cons);
            let sol = engine.make_solution(cand, objs.clone(), cons.clone());
            engine.consume(sol);
            queue.push_back(engine.produce());
        }
        assert_eq!(engine.nfe(), 3000);
        engine.archive().check_invariants().unwrap();
    }

    #[test]
    fn restarts_fire_on_stagnating_problem() {
        // A constant-objective problem can never make ε-progress after the
        // first box, so every window triggers a restart.
        struct Flat;
        impl Problem for Flat {
            fn name(&self) -> &str {
                "Flat"
            }
            fn num_variables(&self) -> usize {
                3
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn bounds(&self, _i: usize) -> Bounds {
                Bounds::unit()
            }
            fn evaluate(&self, _v: &[f64], objs: &mut [f64], _c: &mut [f64]) {
                objs[0] = 0.5;
                objs[1] = 0.5;
            }
        }
        let e = run_serial(&Flat, BorgConfig::new(2, 0.1), 5, 2000, |_| {});
        assert!(e.stats().restarts >= 5, "restarts = {}", e.stats().restarts);
    }

    #[test]
    fn restarts_can_be_disabled() {
        struct Flat;
        impl Problem for Flat {
            fn name(&self) -> &str {
                "Flat"
            }
            fn num_variables(&self) -> usize {
                3
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn bounds(&self, _i: usize) -> Bounds {
                Bounds::unit()
            }
            fn evaluate(&self, _v: &[f64], objs: &mut [f64], _c: &mut [f64]) {
                objs[0] = 0.5;
                objs[1] = 0.5;
            }
        }
        let mut cfg = BorgConfig::new(2, 0.1);
        cfg.restarts_enabled = false;
        let e = run_serial(&Flat, cfg, 5, 2000, |_| {});
        assert_eq!(e.stats().restarts, 0);
    }

    #[test]
    fn adaptation_shifts_operator_probabilities() {
        let e = run_serial(&TwoSphere, config(), 11, 10_000, |_| {});
        let p = e.operator_probabilities();
        let uniform = 1.0 / p.len() as f64;
        // After 10k NFE on a smooth problem the distribution must have
        // moved away from uniform.
        assert!(
            p.iter().any(|&x| (x - uniform).abs() > 0.05),
            "probabilities never adapted: {p:?}"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon count")]
    fn mismatched_epsilons_panic() {
        BorgEngine::new(&TwoSphere, BorgConfig::new(3, 0.1), 1);
    }
}
