//! Candidate solutions: decision variables plus evaluation results.

/// A fully- or not-yet-evaluated candidate solution.
///
/// Variables are always present; objectives/constraints are filled in by an
/// evaluator. The `operator` tag records which variation operator produced
/// the solution so the Borg MOEA can credit archive contributions back to
/// operators (the core of its auto-adaptive ensemble).
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    variables: Vec<f64>,
    objectives: Vec<f64>,
    constraints: Vec<f64>,
    /// Index of the variation operator that produced this solution, if any.
    pub operator: Option<usize>,
}

impl Solution {
    /// Creates an unevaluated solution with zeroed objectives/constraints.
    pub fn new(variables: Vec<f64>, num_objectives: usize, num_constraints: usize) -> Self {
        Self {
            variables,
            objectives: vec![0.0; num_objectives],
            constraints: vec![0.0; num_constraints],
            operator: None,
        }
    }

    /// Assembles a solution from already-evaluated parts.
    pub fn from_parts(variables: Vec<f64>, objectives: Vec<f64>, constraints: Vec<f64>) -> Self {
        Self {
            variables,
            objectives,
            constraints,
            operator: None,
        }
    }

    /// Decision-variable vector.
    pub fn variables(&self) -> &[f64] {
        &self.variables
    }

    /// Mutable decision-variable vector.
    pub fn variables_mut(&mut self) -> &mut [f64] {
        &mut self.variables
    }

    /// Objective vector (minimization).
    pub fn objectives(&self) -> &[f64] {
        &self.objectives
    }

    /// Mutable objective vector.
    pub fn objectives_mut(&mut self) -> &mut [f64] {
        &mut self.objectives
    }

    /// Constraint vector (`<= 0` is feasible).
    pub fn constraints(&self) -> &[f64] {
        &self.constraints
    }

    /// Mutable constraint vector.
    pub fn constraints_mut(&mut self) -> &mut [f64] {
        &mut self.constraints
    }

    /// Simultaneous mutable access to objectives and constraints.
    pub fn objectives_constraints_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.objectives, &mut self.constraints)
    }

    /// Sum of positive constraint values: 0.0 iff feasible.
    ///
    /// This is the aggregate used by Borg's constrained-dominance comparator:
    /// any solution with smaller total violation is preferred, and objectives
    /// are only compared between two feasible solutions.
    pub fn constraint_violation(&self) -> f64 {
        self.constraints.iter().filter(|&&c| c > 0.0).sum()
    }

    /// Whether all constraints are satisfied.
    pub fn is_feasible(&self) -> bool {
        self.constraints.iter().all(|&c| c <= 0.0)
    }

    /// Number of decision variables.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of objectives.
    pub fn num_objectives(&self) -> usize {
        self.objectives.len()
    }

    /// Decomposes the solution into its three owned buffers
    /// `(variables, objectives, constraints)` so a retired solution's
    /// allocations can be recycled through an arena instead of freed.
    pub fn into_parts(self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        (self.variables, self.objectives, self.constraints)
    }

    /// Euclidean distance between the objective vectors of two solutions.
    pub fn objective_distance(&self, other: &Self) -> f64 {
        debug_assert_eq!(self.objectives.len(), other.objectives.len());
        self.objectives
            .iter()
            .zip(&other.objectives)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_sums_only_positive_constraints() {
        let s = Solution::from_parts(vec![0.0], vec![0.0], vec![-1.0, 0.5, 0.0, 2.0]);
        assert!((s.constraint_violation() - 2.5).abs() < 1e-12);
        assert!(!s.is_feasible());
    }

    #[test]
    fn feasible_when_all_nonpositive() {
        let s = Solution::from_parts(vec![0.0], vec![0.0], vec![-1.0, 0.0]);
        assert_eq!(s.constraint_violation(), 0.0);
        assert!(s.is_feasible());
    }

    #[test]
    fn no_constraints_is_feasible() {
        let s = Solution::new(vec![1.0, 2.0], 2, 0);
        assert!(s.is_feasible());
        assert_eq!(s.num_variables(), 2);
        assert_eq!(s.num_objectives(), 2);
    }

    #[test]
    fn objective_distance_is_euclidean() {
        let a = Solution::from_parts(vec![], vec![0.0, 0.0], vec![]);
        let b = Solution::from_parts(vec![], vec![3.0, 4.0], vec![]);
        assert!((a.objective_distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn operator_tag_roundtrip() {
        let mut s = Solution::new(vec![0.0], 1, 0);
        assert_eq!(s.operator, None);
        s.operator = Some(3);
        let t = s.clone();
        assert_eq!(t.operator, Some(3));
    }
}
