//! The steady-state population with tournament selection.
//!
//! Borg maintains a fixed-size population evolved one offspring at a time.
//! Replacement follows Hadka & Reed (2012): an offspring that dominates one
//! or more population members replaces one of them at random; an offspring
//! dominated by no member but dominating none replaces a random member; an
//! offspring dominated by any member is rejected.

use crate::dominance::{constrained_dominance, Dominance};
use crate::solution::Solution;
use rand::seq::SliceRandom;
use rand::Rng;

/// Outcome of offering an offspring to the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulationInsert {
    /// Replaced a member it dominated.
    ReplacedDominated,
    /// Nondominated with the whole population; replaced a random member.
    ReplacedRandom,
    /// Dominated by at least one member; rejected.
    Rejected,
}

/// A bounded steady-state population.
#[derive(Debug, Clone)]
pub struct Population {
    members: Vec<Solution>,
    capacity: usize,
}

impl Population {
    /// Creates an empty population with the given capacity.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "population capacity must be positive");
        Self {
            members: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Current members.
    pub fn members(&self) -> &[Solution] {
        &self.members
    }

    /// Number of members currently held.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the population holds no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Capacity (target size).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the population is at capacity.
    pub fn is_full(&self) -> bool {
        self.members.len() >= self.capacity
    }

    /// Adds a member unconditionally while below capacity (initialization /
    /// restart refill). Returns `false` (and drops the solution) when full.
    pub fn fill(&mut self, solution: Solution) -> bool {
        if self.is_full() {
            return false;
        }
        self.members.push(solution);
        true
    }

    /// Empties the population, keeping capacity.
    pub fn clear(&mut self) {
        self.members.clear();
    }

    /// Changes the capacity; excess members (if shrinking) are dropped from
    /// the tail after a shuffle so no positional bias survives.
    pub fn resize<R: Rng>(&mut self, capacity: usize, rng: &mut R) {
        assert!(capacity > 0, "population capacity must be positive");
        self.capacity = capacity;
        if self.members.len() > capacity {
            self.members.shuffle(rng);
            self.members.truncate(capacity);
        }
    }

    /// Offers an offspring to a full population using Borg's steady-state
    /// replacement rule.
    pub fn offer<R: Rng>(&mut self, offspring: Solution, rng: &mut R) -> PopulationInsert {
        if !self.is_full() {
            self.members.push(offspring);
            return PopulationInsert::ReplacedRandom;
        }
        let mut dominated: Vec<usize> = Vec::new();
        for (i, m) in self.members.iter().enumerate() {
            match constrained_dominance(&offspring, m) {
                Dominance::Dominates => dominated.push(i),
                Dominance::DominatedBy => return PopulationInsert::Rejected,
                Dominance::NonDominated => {}
            }
        }
        if dominated.is_empty() {
            let i = rng.gen_range(0..self.members.len());
            self.members[i] = offspring;
            PopulationInsert::ReplacedRandom
        } else {
            let i = dominated[rng.gen_range(0..dominated.len())];
            self.members[i] = offspring;
            PopulationInsert::ReplacedDominated
        }
    }

    /// Tournament selection of one parent with tournament size `k`.
    ///
    /// Draws `k` members uniformly with replacement and returns the index of
    /// the best under constrained Pareto dominance (ties keep the earlier
    /// draw, which is an unbiased choice because draws are random).
    pub fn tournament_select<R: Rng>(&self, k: usize, rng: &mut R) -> usize {
        assert!(
            !self.members.is_empty(),
            "cannot select from empty population"
        );
        let k = k.max(1);
        let mut best = rng.gen_range(0..self.members.len());
        for _ in 1..k {
            let challenger = rng.gen_range(0..self.members.len());
            if constrained_dominance(&self.members[challenger], &self.members[best])
                == Dominance::Dominates
            {
                best = challenger;
            }
        }
        best
    }

    /// Selects `n` distinct member indices uniformly at random (used to build
    /// multiparent operator inputs around a tournament-selected pivot).
    ///
    /// If fewer than `n` members exist, indices repeat (sampling with
    /// replacement) so multiparent operators still receive full arity.
    pub fn sample_indices<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        assert!(!self.members.is_empty(), "cannot sample empty population");
        if self.members.len() >= n {
            rand::seq::index::sample(rng, self.members.len(), n).into_vec()
        } else {
            (0..n)
                .map(|_| rng.gen_range(0..self.members.len()))
                .collect()
        }
    }

    /// Member accessor.
    pub fn get(&self, i: usize) -> &Solution {
        &self.members[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sol(objs: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), vec![])
    }

    #[test]
    fn fill_until_capacity() {
        let mut p = Population::new(2);
        assert!(p.fill(sol(&[1.0, 1.0])));
        assert!(!p.is_full());
        assert!(p.fill(sol(&[2.0, 2.0])));
        assert!(p.is_full());
        assert!(!p.fill(sol(&[3.0, 3.0])));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn offer_replaces_dominated_member() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Population::new(2);
        p.fill(sol(&[5.0, 5.0]));
        p.fill(sol(&[0.0, 9.0]));
        let r = p.offer(sol(&[1.0, 1.0]), &mut rng);
        assert_eq!(r, PopulationInsert::ReplacedDominated);
        assert!(p.members().iter().any(|m| m.objectives() == [1.0, 1.0]));
        assert!(p.members().iter().any(|m| m.objectives() == [0.0, 9.0]));
    }

    #[test]
    fn offer_rejects_dominated_offspring() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Population::new(1);
        p.fill(sol(&[0.0, 0.0]));
        assert_eq!(
            p.offer(sol(&[1.0, 1.0]), &mut rng),
            PopulationInsert::Rejected
        );
        assert_eq!(p.members()[0].objectives(), &[0.0, 0.0]);
    }

    #[test]
    fn offer_nondominated_replaces_random() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Population::new(2);
        p.fill(sol(&[0.0, 1.0]));
        p.fill(sol(&[1.0, 0.0]));
        let r = p.offer(sol(&[0.5, 0.5]), &mut rng);
        assert_eq!(r, PopulationInsert::ReplacedRandom);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn tournament_prefers_dominating_member() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Population::new(10);
        for _ in 0..9 {
            p.fill(sol(&[9.0, 9.0]));
        }
        p.fill(sol(&[0.0, 0.0]));
        // With replacement, the dominant member enters a 10-way tournament
        // with probability 1 − 0.9^10 ≈ 0.65 and then always wins. Uniform
        // (broken) selection would win ~10% of the time; demand well above
        // that with enough trials to be insensitive to the RNG stream.
        let mut wins = 0;
        for _ in 0..400 {
            if p.tournament_select(10, &mut rng) == 9 {
                wins += 1;
            }
        }
        assert!(
            wins > 200,
            "dominant member won only {wins}/400 tournaments"
        );
    }

    #[test]
    fn tournament_size_one_is_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = Population::new(4);
        for i in 0..4 {
            p.fill(sol(&[i as f64, 4.0 - i as f64]));
        }
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[p.tournament_select(1, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 800, "selection badly skewed: {counts:?}");
        }
    }

    #[test]
    fn sample_indices_distinct_when_possible() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = Population::new(10);
        for i in 0..10 {
            p.fill(sol(&[i as f64, -(i as f64)]));
        }
        let idx = p.sample_indices(5, &mut rng);
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn sample_indices_with_replacement_when_small() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = Population::new(2);
        p.fill(sol(&[0.0, 1.0]));
        p.fill(sol(&[1.0, 0.0]));
        let idx = p.sample_indices(6, &mut rng);
        assert_eq!(idx.len(), 6);
        assert!(idx.iter().all(|&i| i < 2));
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = Population::new(4);
        for i in 0..4 {
            p.fill(sol(&[i as f64, -(i as f64)]));
        }
        p.resize(2, &mut rng);
        assert_eq!(p.len(), 2);
        assert_eq!(p.capacity(), 2);
        p.resize(8, &mut rng);
        assert_eq!(p.len(), 2);
        assert!(!p.is_full());
    }
}
