//! The steady-state population with tournament selection.
//!
//! Borg maintains a fixed-size population evolved one offspring at a time.
//! Replacement follows Hadka & Reed (2012): an offspring that dominates one
//! or more population members replaces one of them at random; an offspring
//! dominated by no member but dominating none replaces a random member; an
//! offspring dominated by any member is rejected.
//!
//! The replacement scan and tournament comparisons are the second-largest
//! `T_A` term after the archive, so the population mirrors its members'
//! objective vectors into a flat structure-of-arrays [`ObjectiveMatrix`] and
//! caches each member's aggregate constraint violation. The O(population)
//! scan in [`Population::offer`] then streams over contiguous rows instead
//! of chasing one `Vec` per member, and allocates nothing per offspring
//! (the dominated-index list is a reused scratch buffer).

use crate::dominance::{pareto_dominance_objectives, Dominance};
use crate::matrix::ObjectiveMatrix;
use crate::solution::Solution;
use rand::seq::SliceRandom;
use rand::Rng;

/// Outcome of offering an offspring to the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulationInsert {
    /// Replaced a member it dominated.
    ReplacedDominated,
    /// Nondominated with the whole population; replaced a random member.
    ReplacedRandom,
    /// Dominated by at least one member; rejected.
    Rejected,
}

/// A bounded steady-state population.
#[derive(Debug, Clone)]
pub struct Population {
    members: Vec<Solution>,
    /// Flat SoA mirror of member objective vectors, row-parallel with
    /// `members`.
    objectives: ObjectiveMatrix,
    /// Cached aggregate constraint violation per member, row-parallel with
    /// `members` (computed once at insertion instead of per comparison).
    violations: Vec<f64>,
    capacity: usize,
    /// Reused dominated-member index list for `offer`.
    scratch_dominated: Vec<usize>,
}

impl Population {
    /// Creates an empty population with the given capacity.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "population capacity must be positive");
        Self {
            members: Vec::with_capacity(capacity),
            objectives: ObjectiveMatrix::new(0),
            violations: Vec::with_capacity(capacity),
            capacity,
            scratch_dominated: Vec::new(),
        }
    }

    /// Current members.
    pub fn members(&self) -> &[Solution] {
        &self.members
    }

    /// Flat structure-of-arrays view of member objective vectors: row `i`
    /// holds member `i`'s objectives.
    pub fn objective_rows(&self) -> &ObjectiveMatrix {
        &self.objectives
    }

    /// Number of members currently held.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the population holds no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Capacity (target size).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the population is at capacity.
    pub fn is_full(&self) -> bool {
        self.members.len() >= self.capacity
    }

    /// Adds a member unconditionally while below capacity (initialization /
    /// restart refill). Returns `false` (and drops the solution) when full.
    pub fn fill(&mut self, solution: Solution) -> bool {
        if self.is_full() {
            return false;
        }
        self.push_member(solution);
        true
    }

    /// Empties the population, keeping capacity.
    pub fn clear(&mut self) {
        self.members.clear();
        self.objectives.clear();
        self.violations.clear();
    }

    /// Changes the capacity; excess members (if shrinking) are dropped from
    /// the tail after a shuffle so no positional bias survives.
    pub fn resize<R: Rng>(&mut self, capacity: usize, rng: &mut R) {
        assert!(capacity > 0, "population capacity must be positive");
        self.capacity = capacity;
        if self.members.len() > capacity {
            self.members.shuffle(rng);
            self.members.truncate(capacity);
            self.rebuild_mirrors();
        }
    }

    /// Offers an offspring to a full population using Borg's steady-state
    /// replacement rule.
    // borg-lint: hot-path
    pub fn offer<R: Rng>(&mut self, offspring: Solution, rng: &mut R) -> PopulationInsert {
        self.offer_replacing(offspring, rng).0
    }

    /// [`offer`](Self::offer), additionally returning the member the
    /// offspring displaced (if any) so callers can recycle its buffers
    /// through a solution arena instead of freeing them.
    // borg-lint: hot-path
    pub fn offer_replacing<R: Rng>(
        &mut self,
        offspring: Solution,
        rng: &mut R,
    ) -> (PopulationInsert, Option<Solution>) {
        if !self.is_full() {
            self.push_member(offspring);
            return (PopulationInsert::ReplacedRandom, None);
        }
        let off_violation = offspring.constraint_violation();
        let off_objectives = offspring.objectives();
        self.scratch_dominated.clear();
        for i in 0..self.members.len() {
            match self.row_dominance(off_objectives, off_violation, i) {
                Dominance::Dominates => self.scratch_dominated.push(i),
                Dominance::DominatedBy => return (PopulationInsert::Rejected, Some(offspring)),
                Dominance::NonDominated => {}
            }
        }
        if self.scratch_dominated.is_empty() {
            let i = rng.gen_range(0..self.members.len());
            let old = self.replace_member(i, offspring, off_violation);
            (PopulationInsert::ReplacedRandom, Some(old))
        } else {
            let i = self.scratch_dominated[rng.gen_range(0..self.scratch_dominated.len())];
            let old = self.replace_member(i, offspring, off_violation);
            (PopulationInsert::ReplacedDominated, Some(old))
        }
    }

    /// Constrained dominance of an offspring (given as a row) against member
    /// `i`, using the cached violation and the SoA objective row — the same
    /// comparator as [`crate::dominance::constrained_dominance`], fed from
    /// flat storage.
    // borg-lint: hot-path
    fn row_dominance(&self, objectives: &[f64], violation: f64, i: usize) -> Dominance {
        let vi = self.violations[i];
        if violation < vi {
            Dominance::Dominates
        } else if vi < violation {
            Dominance::DominatedBy
        } else {
            pareto_dominance_objectives(objectives, self.objectives.row(i))
        }
    }

    /// Tournament selection of one parent with tournament size `k`.
    ///
    /// Draws `k` members uniformly with replacement and returns the index of
    /// the best under constrained Pareto dominance (ties keep the earlier
    /// draw, which is an unbiased choice because draws are random).
    // borg-lint: hot-path
    pub fn tournament_select<R: Rng>(&self, k: usize, rng: &mut R) -> usize {
        assert!(
            !self.members.is_empty(),
            "cannot select from empty population"
        );
        let k = k.max(1);
        let mut best = rng.gen_range(0..self.members.len());
        for _ in 1..k {
            let challenger = rng.gen_range(0..self.members.len());
            if self.row_dominance(
                self.objectives.row(challenger),
                self.violations[challenger],
                best,
            ) == Dominance::Dominates
            {
                best = challenger;
            }
        }
        best
    }

    /// Selects `n` distinct member indices uniformly at random (used to build
    /// multiparent operator inputs around a tournament-selected pivot).
    ///
    /// If fewer than `n` members exist, indices repeat (sampling with
    /// replacement) so multiparent operators still receive full arity.
    pub fn sample_indices<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        assert!(!self.members.is_empty(), "cannot sample empty population");
        if self.members.len() >= n {
            rand::seq::index::sample(rng, self.members.len(), n).into_vec()
        } else {
            (0..n)
                .map(|_| rng.gen_range(0..self.members.len()))
                .collect()
        }
    }

    /// As [`sample_indices`](Self::sample_indices), writing into a reused
    /// buffer so the steady-state loop allocates nothing per candidate.
    ///
    /// Draws the **same RNG stream** as the allocating form: it simulates
    /// `rand::seq::index::sample`'s partial Fisher–Yates over a *virtual*
    /// `0..len` pool, tracking only the (≤ arity) slots a swap touched in a
    /// fixed stack array instead of materializing the whole pool.
    // borg-lint: hot-path
    pub fn sample_indices_into<R: Rng>(&self, n: usize, rng: &mut R, out: &mut Vec<usize>) {
        assert!(!self.members.is_empty(), "cannot sample empty population");
        out.clear();
        let len = self.members.len();
        if len < n {
            for _ in 0..n {
                out.push(rng.gen_range(0..len));
            }
            return;
        }
        // One touched slot per draw; operator arities are ≤ 10, so 32 gives
        // ample headroom. (A larger request falls back to the allocating
        // sampler, which draws the identical stream.)
        const MAX_STACK: usize = 32;
        if n > MAX_STACK {
            out.extend_from_slice(&rand::seq::index::sample(rng, len, n).into_vec());
            return;
        }
        let mut touched = [(usize::MAX, 0usize); MAX_STACK];
        let lookup = |touched: &[(usize, usize)], x: usize| -> usize {
            // Latest write wins; untouched slots hold their identity value.
            for &(slot, value) in touched.iter().rev() {
                if slot == x {
                    return value;
                }
            }
            x
        };
        for i in 0..n {
            let j = rng.gen_range(i..len);
            let vj = lookup(&touched[..i], j);
            let vi = lookup(&touched[..i], i);
            // `pool.swap(i, j)`: slot i is final after iteration i (future
            // draws satisfy j ≥ i+1), so its value goes straight to `out`;
            // slot j keeps the displaced value for future lookups.
            out.push(vj);
            touched[i] = (j, vi);
        }
    }

    /// Member accessor.
    pub fn get(&self, i: usize) -> &Solution {
        &self.members[i]
    }

    /// Appends a member and its mirror rows.
    fn push_member(&mut self, solution: Solution) {
        self.violations.push(solution.constraint_violation());
        self.objectives.push_row(solution.objectives());
        self.members.push(solution);
    }

    /// Replaces member `i`, refreshing its mirror rows; returns the old one.
    // borg-lint: hot-path
    fn replace_member(&mut self, i: usize, solution: Solution, violation: f64) -> Solution {
        self.violations[i] = violation;
        self.objectives.set_row(i, solution.objectives());
        std::mem::replace(&mut self.members[i], solution)
    }

    /// Recomputes both mirrors from `members` (after a shuffle/truncate).
    fn rebuild_mirrors(&mut self) {
        self.objectives.clear();
        self.violations.clear();
        for m in &self.members {
            self.objectives.push_row(m.objectives());
            self.violations.push(m.constraint_violation());
        }
    }

    /// Verifies that the SoA mirrors agree with the members (tests).
    pub fn check_mirrors(&self) -> Result<(), String> {
        // Row-count comparison, not an objective-value comparison.
        // borg-lint: allow(BORG-L005)
        if self.objectives.rows() != self.members.len()
            || self.violations.len() != self.members.len()
        {
            return Err(format!(
                "mirror rows {} / violations {} disagree with {} members",
                self.objectives.rows(),
                self.violations.len(),
                self.members.len()
            ));
        }
        for (i, m) in self.members.iter().enumerate() {
            // Mirror integrity is exact copy equality, not dominance.
            // borg-lint: allow(BORG-L005)
            if self.objectives.row(i) != m.objectives() {
                return Err(format!("objective mirror row {i} is stale"));
            }
            // borg-lint: allow(BORG-L005)
            if self.violations[i] != m.constraint_violation() {
                return Err(format!("violation cache entry {i} is stale"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sol(objs: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), vec![])
    }

    #[test]
    fn fill_until_capacity() {
        let mut p = Population::new(2);
        assert!(p.fill(sol(&[1.0, 1.0])));
        assert!(!p.is_full());
        assert!(p.fill(sol(&[2.0, 2.0])));
        assert!(p.is_full());
        assert!(!p.fill(sol(&[3.0, 3.0])));
        assert_eq!(p.len(), 2);
        p.check_mirrors().unwrap();
    }

    #[test]
    fn offer_replaces_dominated_member() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Population::new(2);
        p.fill(sol(&[5.0, 5.0]));
        p.fill(sol(&[0.0, 9.0]));
        let r = p.offer(sol(&[1.0, 1.0]), &mut rng);
        assert_eq!(r, PopulationInsert::ReplacedDominated);
        assert!(p.members().iter().any(|m| m.objectives() == [1.0, 1.0]));
        assert!(p.members().iter().any(|m| m.objectives() == [0.0, 9.0]));
        p.check_mirrors().unwrap();
    }

    #[test]
    fn offer_rejects_dominated_offspring() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Population::new(1);
        p.fill(sol(&[0.0, 0.0]));
        assert_eq!(
            p.offer(sol(&[1.0, 1.0]), &mut rng),
            PopulationInsert::Rejected
        );
        assert_eq!(p.members()[0].objectives(), &[0.0, 0.0]);
    }

    #[test]
    fn offer_nondominated_replaces_random() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Population::new(2);
        p.fill(sol(&[0.0, 1.0]));
        p.fill(sol(&[1.0, 0.0]));
        let r = p.offer(sol(&[0.5, 0.5]), &mut rng);
        assert_eq!(r, PopulationInsert::ReplacedRandom);
        assert_eq!(p.len(), 2);
        p.check_mirrors().unwrap();
    }

    #[test]
    fn offer_replacing_returns_the_displaced_member() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Population::new(2);
        p.fill(sol(&[5.0, 5.0]));
        p.fill(sol(&[0.0, 9.0]));
        let (r, old) = p.offer_replacing(sol(&[1.0, 1.0]), &mut rng);
        assert_eq!(r, PopulationInsert::ReplacedDominated);
        assert_eq!(old.expect("displaced").objectives(), &[5.0, 5.0]);
        // A rejected offspring comes back to the caller for recycling.
        let (r, back) = p.offer_replacing(sol(&[9.0, 9.0]), &mut rng);
        assert_eq!(r, PopulationInsert::Rejected);
        assert_eq!(back.expect("rejected offspring").objectives(), &[9.0, 9.0]);
        // Filling below capacity keeps the offspring: nothing to recycle.
        let mut q = Population::new(2);
        let (r, none) = q.offer_replacing(sol(&[1.0, 2.0]), &mut rng);
        assert_eq!(r, PopulationInsert::ReplacedRandom);
        assert!(none.is_none());
    }

    #[test]
    fn constrained_offspring_uses_cached_violations() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = Population::new(2);
        p.fill(Solution::from_parts(vec![], vec![0.0, 0.0], vec![2.0]));
        p.fill(Solution::from_parts(vec![], vec![1.0, 9.0], vec![0.0]));
        // Feasible offspring dominates the violating member regardless of
        // objectives.
        let off = Solution::from_parts(vec![], vec![5.0, 5.0], vec![0.0]);
        let r = p.offer(off, &mut rng);
        assert_eq!(r, PopulationInsert::ReplacedDominated);
        assert!(p.members().iter().all(|m| m.is_feasible()));
        p.check_mirrors().unwrap();
    }

    #[test]
    fn tournament_prefers_dominating_member() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Population::new(10);
        for _ in 0..9 {
            p.fill(sol(&[9.0, 9.0]));
        }
        p.fill(sol(&[0.0, 0.0]));
        // With replacement, the dominant member enters a 10-way tournament
        // with probability 1 − 0.9^10 ≈ 0.65 and then always wins. Uniform
        // (broken) selection would win ~10% of the time; demand well above
        // that with enough trials to be insensitive to the RNG stream.
        let mut wins = 0;
        for _ in 0..400 {
            if p.tournament_select(10, &mut rng) == 9 {
                wins += 1;
            }
        }
        assert!(
            wins > 200,
            "dominant member won only {wins}/400 tournaments"
        );
    }

    #[test]
    fn tournament_size_one_is_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = Population::new(4);
        for i in 0..4 {
            p.fill(sol(&[i as f64, 4.0 - i as f64]));
        }
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[p.tournament_select(1, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 800, "selection badly skewed: {counts:?}");
        }
    }

    #[test]
    fn sample_indices_distinct_when_possible() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = Population::new(10);
        for i in 0..10 {
            p.fill(sol(&[i as f64, -(i as f64)]));
        }
        let idx = p.sample_indices(5, &mut rng);
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn sample_indices_with_replacement_when_small() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = Population::new(2);
        p.fill(sol(&[0.0, 1.0]));
        p.fill(sol(&[1.0, 0.0]));
        let idx = p.sample_indices(6, &mut rng);
        assert_eq!(idx.len(), 6);
        assert!(idx.iter().all(|&i| i < 2));
    }

    #[test]
    fn sample_indices_into_matches_allocating_form() {
        // Same seed → the reused-buffer form must draw the same RNG stream
        // and produce the same indices as `sample_indices` (this is what
        // keeps the engine's candidate streams bit-identical).
        for n in [1usize, 2, 5, 9, 10] {
            let mut p = Population::new(10);
            for i in 0..10 {
                p.fill(sol(&[i as f64, -(i as f64)]));
            }
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            let alloc = p.sample_indices(n, &mut a);
            let mut reused = Vec::new();
            p.sample_indices_into(n, &mut b, &mut reused);
            assert_eq!(alloc, reused, "divergence at arity {n}");
            // And the RNG cursors must agree afterwards.
            use rand::Rng;
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // Small-population with-replacement path.
        let mut p = Population::new(2);
        p.fill(sol(&[0.0, 1.0]));
        p.fill(sol(&[1.0, 0.0]));
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let alloc = p.sample_indices(6, &mut a);
        let mut reused = Vec::new();
        p.sample_indices_into(6, &mut b, &mut reused);
        assert_eq!(alloc, reused);
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = Population::new(4);
        for i in 0..4 {
            p.fill(sol(&[i as f64, -(i as f64)]));
        }
        p.resize(2, &mut rng);
        assert_eq!(p.len(), 2);
        assert_eq!(p.capacity(), 2);
        p.check_mirrors().unwrap();
        p.resize(8, &mut rng);
        assert_eq!(p.len(), 2);
        assert!(!p.is_full());
    }
}
